//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of the rand 0.8 API this workspace uses: the
//! [`RngCore`]/[`SeedableRng`]/[`Rng`] traits, integer `gen_range` over
//! half-open and inclusive ranges, `gen_bool`, and [`seq::SliceRandom`]
//! (`shuffle`/`choose`). The sampling algorithms are deliberately simple —
//! reproducibility within this workspace matters, bit-compatibility with
//! upstream `rand` does not.

use std::ops::{Range, RangeInclusive};

/// Core random number generation: a source of raw random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with splitmix64 (the
    /// same construction upstream rand uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Samples a value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, exactly representable in an f64.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related extensions (`shuffle`, `choose`).

    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let index = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[index])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            // splitmix64 finalizer: decorrelates all 64 output bits.
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..200 {
            let a = rng.gen_range(0..10u8);
            assert!(a < 10);
            let b = rng.gen_range(2..=3usize);
            assert!((2..=3).contains(&b));
            let c = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&c));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = Counter(99);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn slice_helpers_work() {
        let mut rng = Counter(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let mut v: Vec<u32> = (0..20).collect();
        let original = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
    }
}
