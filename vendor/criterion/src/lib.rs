//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the group/bench/iter API surface the workspace's benches use
//! with a simple wall-clock measurement loop: a short warm-up, then samples
//! until the configured measurement time or sample count is exhausted, then a
//! `min / median / mean` report on stdout. No statistical analysis, HTML
//! reports or command-line filtering.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `function` with a parameter rendering.
    #[must_use]
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark identified only by its parameter.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => "bench".to_string(),
        }
    }
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            measurement_time,
        }
    }
}

/// A group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        body(&mut bencher, input);
        bencher.report(&self.name, &id.render());
        self
    }

    /// Runs an unparameterized benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        body(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Finishes the group (report output happens per benchmark).
    pub fn finish(self) {}
}

/// Runs and times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, collecting up to the group's sample count within the
    /// group's measurement-time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes caches and the lazy parts of the routine).
        black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{id}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / u32::try_from(sorted.len()).unwrap_or(1);
        println!(
            "  {group}/{id}: min {min:?}, median {median:?}, mean {mean:?} ({} samples)",
            sorted.len()
        );
    }
}

/// Declares a group of benchmark functions, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(50));
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * n));
        });
        group.bench_function("id-only", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_measurement_run() {
        benches();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).render(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").render(), "p");
    }
}
