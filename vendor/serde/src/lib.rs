//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Instead of serde's visitor-based zero-copy architecture, this stand-in
//! uses a miniserde-style self-describing tree: [`Serialize`] lowers a value
//! to a [`Content`] tree and [`Deserialize`] rebuilds a value from one. The
//! companion crates `serde_derive` (re-exported here) and `serde_json`
//! provide the derive macros and the JSON transport. The API intentionally
//! keeps the upstream *names* (`serde::Serialize`, `#[derive(Serialize)]`,
//! `#[serde(tag = "...", rename_all = "...")]`) so the workspace's sources
//! stay byte-compatible with real serde.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value: the intermediate representation every
/// format (currently only JSON) reads and writes.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A map with insertion-ordered string keys.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key` in a map, returning [`Content::Null`] when the key is
    /// absent (so optional fields deserialize to their "empty" form).
    #[must_use]
    pub fn get(&self, key: &str) -> &Content {
        const NULL: Content = Content::Null;
        match self {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map_or(&NULL, |(_, v)| v),
            _ => &NULL,
        }
    }

    /// A short human-readable description of the content's kind, for errors.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// A deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    #[must_use]
    pub fn message(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Creates an "expected X, found Y" error.
    #[must_use]
    pub fn expected(what: &str, found: &Content) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A value that can be lowered to a [`Content`] tree.
pub trait Serialize {
    /// Lowers `self` to content.
    fn to_content(&self) -> Content;
}

/// A value that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value from content.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the content's shape does not match.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---- primitive impls ----

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let raw = match content {
                    Content::I64(i) => *i,
                    Content::U64(u) => i64::try_from(*u)
                        .map_err(|_| DeError::message("integer out of range"))?,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(raw).map_err(|_| DeError::message("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                match i64::try_from(*self) {
                    Ok(i) => Content::I64(i),
                    Err(_) => Content::U64(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::I64(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::message("integer out of range")),
                    Content::U64(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::message("integer out of range")),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(f) => Ok(*f),
            Content::I64(i) => Ok(*i as f64),
            Content::U64(u) => Ok(*u as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(value) => value.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(u32::from_content(&7u32.to_content()), Ok(7));
        assert_eq!(i64::from_content(&(-3i64).to_content()), Ok(-3));
        assert_eq!(usize::from_content(&9usize.to_content()), Ok(9));
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Vec::<u8>::from_content(&vec![1u8, 2].to_content()),
            Ok(vec![1, 2])
        );
        assert_eq!(Option::<u8>::from_content(&Content::Null), Ok(None));
        assert_eq!(Option::<u8>::from_content(&Content::I64(4)), Ok(Some(4)));
    }

    #[test]
    fn errors_name_the_mismatch() {
        let err = u32::from_content(&Content::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected integer"));
        let err = u8::from_content(&Content::I64(300)).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn map_get_returns_null_for_missing_keys() {
        let map = Content::Map(vec![("a".into(), Content::I64(1))]);
        assert_eq!(map.get("a"), &Content::I64(1));
        assert_eq!(map.get("b"), &Content::Null);
        assert_eq!(map.kind(), "map");
    }
}
