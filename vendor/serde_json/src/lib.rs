//! Offline stand-in for the `serde_json` crate (see `vendor/README.md`).
//!
//! Serializes the vendored `serde` crate's [`Content`] tree to JSON text and
//! parses JSON text back. Supports exactly the documents this workspace
//! produces: objects, arrays, strings (with escapes), integers, floats,
//! booleans and null.

use serde::{Content, Deserialize, Serialize};

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(err: serde::DeError) -> Self {
        Error(err.to_string())
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Infallible for the supported data model; the `Result` mirrors upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the supported data model; the `Result` mirrors upstream.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax or shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let content = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_content(&content)?)
}

// ---- printer ----

fn write_content(content: &Content, indent: Option<usize>, depth: usize, out: &mut String) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::F64(f) => write_f64(*f, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(indent, depth + 1, out);
                write_content(item, indent, depth + 1, out);
            }
            write_newline_indent(indent, depth, out);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(indent, depth + 1, out);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(value, indent, depth + 1, out);
            }
            write_newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn write_newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_f64(value: f64, out: &mut String) {
    if value.is_finite() {
        let formatted = format!("{value}");
        out.push_str(&formatted);
        // Keep floats recognizably floats (upstream serde_json does too).
        if !formatted.contains('.') && !formatted.contains('e') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid keyword at offset {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_text() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<String>("\"a\\u0041\"").unwrap(), "aA");
        assert_eq!(from_str::<Vec<u8>>("[1, 2, 3]").unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<u32>("not json").is_err());
        assert!(from_str::<u32>("42 junk").is_err());
        assert!(from_str::<Vec<u8>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }

    #[test]
    fn pretty_printing_indents_nested_structures() {
        let value = Content::Map(vec![
            ("a".to_string(), Content::Seq(vec![Content::I64(1)])),
            ("b".to_string(), Content::Null),
        ]);
        struct Raw(Content);
        impl Serialize for Raw {
            fn to_content(&self) -> Content {
                self.0.clone()
            }
        }
        let pretty = to_string_pretty(&Raw(value)).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ],\n  \"b\": null\n}");
    }
}
