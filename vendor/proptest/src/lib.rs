//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Provides the subset this workspace's property tests use: the [`Strategy`]
//! trait (integer ranges, tuples, `Just`, `prop_map`, `any::<T>()`,
//! `collection::vec`), the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, and `prop_assert!`/`prop_assert_eq!`.
//! Cases are generated from a deterministic ChaCha stream; there is no
//! shrinking — a failing case reports its case number and seed instead.

use rand::RngCore;

pub mod test_runner {
    //! Configuration and the per-test deterministic RNG.

    use rand::SeedableRng;

    /// Mirror of proptest's `ProptestConfig`; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic per-case RNG.
    pub type TestRng = rand_chacha::ChaCha8Rng;

    /// Creates the RNG for case number `case`.
    #[must_use]
    pub fn case_rng(case: u64) -> TestRng {
        TestRng::seed_from_u64(0x9e37_79b9_7f4a_7c15 ^ (case.wrapping_mul(0xdead_beef_cafe_f00d)))
    }

    /// A failed property-test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        #[must_use]
        pub fn fail(message: String) -> Self {
            TestCaseError(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate<R: RngCore + ?Sized>(&self, _rng: &mut R) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate<RNG: RngCore + ?Sized>(&self, rng: &mut RNG) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy for [`Arbitrary`] booleans.
    #[derive(Debug, Clone, Default)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = RangeInclusive<$t>;
                fn arbitrary() -> RangeInclusive<$t> {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `T` (proptest's `any::<T>()`).
    #[must_use]
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::RngCore;
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, sizes)`: vectors of `element` with length in `sizes`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    pub mod prop {
        //! The `prop::` paths available from the prelude.
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_property(x in 0u32..10, flag in any::<bool>()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                for __case in 0..u64::from(__config.cases) {
                    let mut __rng = $crate::test_runner::case_rng(__case);
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__error) = __outcome {
                        panic!("property failed at case {}/{}: {}",
                               __case + 1, __config.cases, __error);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body, with an optional extra
/// formatted message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, ::std::format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vectors_respect_bounds(
            x in 1u8..5,
            flag in any::<bool>(),
            items in prop::collection::vec(0u32..10, 2..6),
        ) {
            prop_assert!((1..5).contains(&x));
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!((2..6).contains(&items.len()));
            prop_assert!(items.iter().all(|&i| i < 10));
        }

        #[test]
        fn tuples_and_just_work(pair in (0u16..3, Just(7u8))) {
            prop_assert_eq!(pair.1, 7u8);
            prop_assert!(pair.0 < 3);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let strategy = 0u64..1000;
        let a: Vec<u64> = (0..10)
            .map(|c| strategy.generate(&mut crate::test_runner::case_rng(c)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| strategy.generate(&mut crate::test_runner::case_rng(c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}
