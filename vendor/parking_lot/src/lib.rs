//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors minimal, API-compatible subsets of its external
//! dependencies (see `vendor/README.md`). This crate provides the
//! poison-free `Mutex`/`RwLock` surface the workspace uses, backed by the
//! standard library primitives.

/// A mutual-exclusion lock that never poisons: a panic while holding the
/// lock simply releases it for the next owner, like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike the standard
    /// library this never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed,
    /// the borrow checker guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader–writer lock with the poison-free `parking_lot` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_survives_a_panicking_owner() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
