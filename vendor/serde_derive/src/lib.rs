//! Offline stand-in for the `serde_derive` crate (see `vendor/README.md`).
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` crate's [`Content`] data model. Because `syn`/`quote` are
//! unavailable offline, the item is parsed by hand from the raw token stream;
//! the supported grammar is exactly what this workspace needs:
//!
//! * structs with named fields, tuple structs (newtype or seq),
//! * enums with unit, newtype and struct variants (externally tagged), and
//! * the `#[serde(tag = "...")]` and `#[serde(rename_all = "snake_case")]`
//!   item attributes (internally tagged struct/unit variants).
//!
//! Generics are not supported; deriving on a generic item is a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the item being derived.
enum Data {
    /// `struct S { a: T, b: U }`
    NamedStruct(Vec<String>),
    /// `struct S(T, U);` — one field serializes transparently (newtype).
    TupleStruct(usize),
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    tag: Option<String>,
    rename_all: Option<String>,
    data: Data,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---- parsing ----

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut index = 0;
    let mut tag = None;
    let mut rename_all = None;

    // Leading attributes and visibility.
    loop {
        match tokens.get(index) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(group)) = tokens.get(index + 1) {
                    parse_serde_attr(group.stream(), &mut tag, &mut rename_all);
                }
                index += 2;
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                index += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(index) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        index += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(index) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    index += 1;
    let name = match tokens.get(index) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    index += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(index) {
        assert!(
            p.as_char() != '<',
            "serde_derive (vendored): generic items are not supported"
        );
    }

    let data = match (kind.as_str(), tokens.get(index)) {
        ("struct", Some(TokenTree::Group(group))) if group.delimiter() == Delimiter::Brace => {
            Data::NamedStruct(parse_named_fields(group.stream()))
        }
        ("struct", Some(TokenTree::Group(group)))
            if group.delimiter() == Delimiter::Parenthesis =>
        {
            Data::TupleStruct(count_tuple_fields(group.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Data::TupleStruct(0),
        ("enum", Some(TokenTree::Group(group))) if group.delimiter() == Delimiter::Brace => {
            Data::Enum(parse_variants(group.stream()))
        }
        (kind, other) => panic!("serde_derive: unsupported {kind} body: {other:?}"),
    };

    Item {
        name,
        tag,
        rename_all,
        data,
    }
}

/// Extracts `tag` / `rename_all` from a `[serde(...)]` attribute body, if the
/// bracket group is a serde attribute at all.
fn parse_serde_attr(
    stream: TokenStream,
    tag: &mut Option<String>,
    rename_all: &mut Option<String>,
) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(ident)) if ident.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        let key = match &args[i] {
            TokenTree::Ident(ident) => ident.to_string(),
            _ => {
                i += 1;
                continue;
            }
        };
        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
            (args.get(i + 1), args.get(i + 2))
        {
            if eq.as_char() == '=' {
                let value = unquote(&lit.to_string());
                match key.as_str() {
                    "tag" => *tag = Some(value),
                    "rename_all" => *rename_all = Some(value),
                    other => {
                        panic!("serde_derive (vendored): unsupported serde attribute `{other}`")
                    }
                }
                i += 3;
                continue;
            }
        }
        panic!("serde_derive (vendored): unsupported serde attribute form near `{key}`");
    }
}

fn unquote(literal: &str) -> String {
    literal.trim_matches('"').to_string()
}

/// Splits a token stream on top-level commas, tracking `<...>` depth so that
/// generic argument lists do not split fields.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for token in stream {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                segments.push(Vec::new());
                continue;
            }
            _ => {}
        }
        segments.last_mut().expect("nonempty").push(token);
    }
    segments.retain(|segment| !segment.is_empty());
    segments
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|segment| {
            let mut i = 0;
            loop {
                match segment.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                    Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                        i += 1;
                        if let Some(TokenTree::Group(g)) = segment.get(i) {
                            if g.delimiter() == Delimiter::Parenthesis {
                                i += 1;
                            }
                        }
                    }
                    Some(TokenTree::Ident(ident)) => return ident.to_string(),
                    other => panic!("serde_derive: expected field name, found {other:?}"),
                }
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|segment| {
            let mut i = 0;
            while let Some(TokenTree::Punct(p)) = segment.get(i) {
                assert!(
                    p.as_char() == '#',
                    "serde_derive: unexpected token in variant"
                );
                i += 2; // skip `#[...]`
            }
            let name = match segment.get(i) {
                Some(TokenTree::Ident(ident)) => ident.to_string(),
                other => panic!("serde_derive: expected variant name, found {other:?}"),
            };
            let fields = match segment.get(i + 1) {
                Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                    VariantFields::Named(parse_named_fields(group.stream()))
                }
                Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                    VariantFields::Tuple(count_tuple_fields(group.stream()))
                }
                None => VariantFields::Unit,
                other => panic!("serde_derive: unsupported variant shape: {other:?}"),
            };
            Variant { name, fields }
        })
        .collect()
}

// ---- code generation ----

fn rename(variant: &str, rule: Option<&str>) -> String {
    match rule {
        None => variant.to_string(),
        Some("snake_case") => {
            let mut out = String::new();
            for (i, ch) in variant.chars().enumerate() {
                if ch.is_ascii_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.push(ch.to_ascii_lowercase());
                } else {
                    out.push(ch);
                }
            }
            out
        }
        Some(other) => panic!("serde_derive (vendored): unsupported rename_all rule `{other}`"),
    }
}

fn named_fields_to_map(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|field| {
            format!(
                "(::std::string::String::from(\"{field}\"), ::serde::Serialize::to_content({})),",
                access(field)
            )
        })
        .collect();
    format!("::serde::Content::Map(::std::vec![{}])", entries.join(""))
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => named_fields_to_map(fields, |f| format!("&self.{f}")),
        Data::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i}),"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(""))
        }
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|variant| gen_serialize_variant(item, variant))
                .collect();
            format!("match self {{ {} }}", arms.join(""))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_serialize_variant(item: &Item, variant: &Variant) -> String {
    let enum_name = &item.name;
    let variant_name = &variant.name;
    let wire_name = rename(variant_name, item.rename_all.as_deref());
    if let Some(tag) = &item.tag {
        // Internally tagged: `{ "<tag>": "<variant>", <fields...> }`.
        return match &variant.fields {
            VariantFields::Unit => format!(
                "{enum_name}::{variant_name} => ::serde::Content::Map(::std::vec![\
                 (::std::string::String::from(\"{tag}\"), \
                  ::serde::Content::Str(::std::string::String::from(\"{wire_name}\")))]),"
            ),
            VariantFields::Named(fields) => {
                let binders = fields.join(", ");
                let entries: Vec<String> = std::iter::once(format!(
                    "(::std::string::String::from(\"{tag}\"), \
                     ::serde::Content::Str(::std::string::String::from(\"{wire_name}\"))),"
                ))
                .chain(fields.iter().map(|field| {
                    format!(
                        "(::std::string::String::from(\"{field}\"), \
                         ::serde::Serialize::to_content({field})),"
                    )
                }))
                .collect();
                format!(
                    "{enum_name}::{variant_name} {{ {binders} }} => \
                     ::serde::Content::Map(::std::vec![{}]),",
                    entries.join("")
                )
            }
            VariantFields::Tuple(_) => {
                panic!("serde_derive (vendored): tuple variants are not supported with `tag`")
            }
        };
    }
    // Externally tagged (serde's default representation).
    match &variant.fields {
        VariantFields::Unit => format!(
            "{enum_name}::{variant_name} => \
             ::serde::Content::Str(::std::string::String::from(\"{wire_name}\")),"
        ),
        VariantFields::Tuple(1) => format!(
            "{enum_name}::{variant_name}(__f0) => ::serde::Content::Map(::std::vec![\
             (::std::string::String::from(\"{wire_name}\"), \
              ::serde::Serialize::to_content(__f0))]),"
        ),
        VariantFields::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let items: Vec<String> = binders
                .iter()
                .map(|b| format!("::serde::Serialize::to_content({b}),"))
                .collect();
            format!(
                "{enum_name}::{variant_name}({}) => ::serde::Content::Map(::std::vec![\
                 (::std::string::String::from(\"{wire_name}\"), \
                  ::serde::Content::Seq(::std::vec![{}]))]),",
                binders.join(", "),
                items.join("")
            )
        }
        VariantFields::Named(fields) => {
            let binders = fields.join(", ");
            let inner = named_fields_to_map(fields, |f| f.to_string());
            format!(
                "{enum_name}::{variant_name} {{ {binders} }} => \
                 ::serde::Content::Map(::std::vec![\
                 (::std::string::String::from(\"{wire_name}\"), {inner})]),"
            )
        }
    }
}

fn named_fields_from_map(fields: &[String], source: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|field| {
            format!("{field}: ::serde::Deserialize::from_content({source}.get(\"{field}\"))?,")
        })
        .collect();
    entries.join("")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => format!(
            "if __content.as_map().is_none() {{\n\
                 return ::std::result::Result::Err(::serde::DeError::expected(\"map\", __content));\n\
             }}\n\
             ::std::result::Result::Ok({name} {{ {} }})",
            named_fields_from_map(fields, "__content")
        ),
        Data::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__content)?))"
        ),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?,"))
                .collect();
            format!(
                "match __content {{\n\
                     ::serde::Content::Seq(__items) if __items.len() == {n} => \
                         ::std::result::Result::Ok({name}({})),\n\
                     __other => ::std::result::Result::Err(\
                         ::serde::DeError::expected(\"sequence of {n}\", __other)),\n\
                 }}",
                items.join("")
            )
        }
        Data::Enum(variants) => gen_deserialize_enum(item, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__content: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize_enum(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    if let Some(tag) = &item.tag {
        let arms: Vec<String> = variants
            .iter()
            .map(|variant| {
                let wire = rename(&variant.name, item.rename_all.as_deref());
                let variant_name = &variant.name;
                match &variant.fields {
                    VariantFields::Unit => {
                        format!("\"{wire}\" => ::std::result::Result::Ok({name}::{variant_name}),")
                    }
                    VariantFields::Named(fields) => format!(
                        "\"{wire}\" => ::std::result::Result::Ok({name}::{variant_name} {{ {} }}),",
                        named_fields_from_map(fields, "__content")
                    ),
                    VariantFields::Tuple(_) => panic!(
                        "serde_derive (vendored): tuple variants are not supported with `tag`"
                    ),
                }
            })
            .collect();
        return format!(
            "let __tag = __content.get(\"{tag}\");\n\
             let __tag = __tag.as_str().ok_or_else(|| \
                 ::serde::DeError::message(\"missing or non-string tag `{tag}`\"))?;\n\
             match __tag {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::message(\
                     ::std::format!(\"unknown variant `{{}}`\", __other))),\n\
             }}",
            arms.join("\n")
        );
    }

    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| {
            let wire = rename(&v.name, item.rename_all.as_deref());
            format!(
                "\"{wire}\" => ::std::result::Result::Ok({name}::{}),",
                v.name
            )
        })
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.fields, VariantFields::Unit))
        .map(|variant| {
            let wire = rename(&variant.name, item.rename_all.as_deref());
            let variant_name = &variant.name;
            match &variant.fields {
                VariantFields::Unit => unreachable!(),
                VariantFields::Tuple(1) => format!(
                    "\"{wire}\" => ::std::result::Result::Ok({name}::{variant_name}(\
                     ::serde::Deserialize::from_content(__value)?)),"
                ),
                VariantFields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?,"))
                        .collect();
                    format!(
                        "\"{wire}\" => match __value {{\n\
                             ::serde::Content::Seq(__items) if __items.len() == {n} => \
                                 ::std::result::Result::Ok({name}::{variant_name}({})),\n\
                             __other => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"sequence of {n}\", __other)),\n\
                         }},",
                        items.join("")
                    )
                }
                VariantFields::Named(fields) => format!(
                    "\"{wire}\" => ::std::result::Result::Ok({name}::{variant_name} {{ {} }}),",
                    named_fields_from_map(fields, "__value")
                ),
            }
        })
        .collect();

    format!(
        "match __content {{\n\
             ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::message(\
                     ::std::format!(\"unknown variant `{{}}`\", __other))),\n\
             }},\n\
             ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__key, __value) = &__entries[0];\n\
                 match __key.as_str() {{\n\
                     {}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::message(\
                         ::std::format!(\"unknown variant `{{}}`\", __other))),\n\
                 }}\n\
             }}\n\
             __other => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"enum variant\", __other)),\n\
         }}",
        unit_arms.join("\n"),
        data_arms.join("\n")
    )
}
