//! Offline stand-in for the `rand_chacha` crate (see `vendor/README.md`).
//!
//! Provides [`ChaCha8Rng`]: a genuine ChaCha stream cipher with 8 rounds used
//! as a deterministic random number generator. Streams are reproducible given
//! a seed, which is all the workspace relies on (it does not depend on
//! matching upstream `rand_chacha` byte-for-byte).

use rand::{RngCore, SeedableRng};

/// A deterministic RNG backed by the ChaCha block function with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input block: constants, 8 key words, counter, nonce.
    state: [u32; 16],
    /// The current output block.
    block: [u32; 16],
    /// Next word of `block` to emit; 16 means "generate a fresh block".
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12/13.
        let (low, carry) = self.state[12].overflowing_add(1);
        self.state[12] = low;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("chunk of 4"));
        }
        // counter (12, 13) and nonce (14, 15) start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let low = u64::from(self.next_u32());
        let high = u64::from(self.next_u32());
        (high << 32) | low
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_key_first_block_matches_chacha8_reference() {
        // RFC 7539 test-vector layout, 8-round variant, all-zero key/nonce:
        // first output word of the keystream.
        let mut rng = ChaCha8Rng::from_seed([0; 32]);
        let first = rng.next_u32();
        let second = rng.next_u32();
        // ECRYPT ChaCha8 vector: keystream starts 3e 00 ef 2f 89 5f 40 d6 …
        assert_eq!(first, 0x2fef_003e, "ChaCha8 keystream mismatch: {first:#x}");
        assert_eq!(
            second, 0xd640_5f89,
            "ChaCha8 keystream mismatch: {second:#x}"
        );
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
