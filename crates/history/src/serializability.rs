//! Deciding serializability of a concrete history.
//!
//! A history is serializable iff there exists a total commit order `co` that
//! contains `hb` and the arbitration order `ww` (Equation 1), where `ww`
//! itself depends on `co`. Deciding this is NP-hard in general (Biswas and
//! Enea), so the check is encoded propositionally: one boolean per ordered
//! transaction pair plus totality/antisymmetry/transitivity constraints, `hb`
//! edges as unit clauses, and one implication per arbitration instance.

use isopredict_sat::{Lit, SolveOutcome, Solver, Var};

use crate::history::History;
use crate::ids::TxnId;
use crate::relations::{hb_graph, ww_graph_for_commit_order};

/// Outcome of a serializability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerializabilityResult {
    /// The history is serializable; the witness lists every transaction
    /// (including `t0`) in one admissible serial order.
    Serializable {
        /// A total commit order witnessing serializability.
        witness: Vec<TxnId>,
    },
    /// The history is not serializable.
    Unserializable,
}

impl SerializabilityResult {
    /// Whether the history was found serializable.
    #[must_use]
    pub fn is_serializable(&self) -> bool {
        matches!(self, SerializabilityResult::Serializable { .. })
    }
}

/// Decides whether `history` is serializable.
#[must_use]
pub fn check(history: &History) -> SerializabilityResult {
    let n = history.len();
    if n <= 1 {
        return SerializabilityResult::Serializable {
            witness: vec![TxnId::INITIAL],
        };
    }

    let mut solver = Solver::new();
    // ord[a][b] for a < b: true means "a commits before b".
    let mut ord = vec![vec![None::<Var>; n]; n];
    for (a, row) in ord.iter_mut().enumerate() {
        for slot in row.iter_mut().skip(a + 1) {
            *slot = Some(solver.new_var());
        }
    }
    // co(a, b) as a literal, for any ordered pair of distinct transactions.
    let co = |ord: &Vec<Vec<Option<Var>>>, a: usize, b: usize| -> Lit {
        if a < b {
            Lit::positive(ord[a][b].expect("pair variable exists"))
        } else {
            Lit::negative(ord[b][a].expect("pair variable exists"))
        }
    };

    // Transitivity: co(a,b) ∧ co(b,c) ⇒ co(a,c).
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            for c in 0..n {
                if c == a || c == b {
                    continue;
                }
                solver.add_clause([
                    co(&ord, a, b).negate(),
                    co(&ord, b, c).negate(),
                    co(&ord, a, c),
                ]);
            }
        }
    }

    // hb ⊆ co.
    let hb = hb_graph(history);
    for (from, to) in hb.edge_list() {
        solver.add_clause([co(&ord, from.index(), to.index())]);
    }

    // Arbitration: for every key k, writers t1 ≠ t2 of k, and reader t3 of k
    // reading from t2 (t3 ∉ {t1, t2}): co(t1, t3) ⇒ co(t1, t2).
    for key in history.keys() {
        let writers = history.writers_of(key);
        for (t2, t3, wr_key, _pos) in history.wr_tuples() {
            if wr_key != key {
                continue;
            }
            for &t1 in &writers {
                if t1 == t2 || t1 == t3 {
                    continue;
                }
                solver.add_clause([
                    co(&ord, t1.index(), t3.index()).negate(),
                    co(&ord, t1.index(), t2.index()),
                ]);
            }
        }
    }

    match solver.solve() {
        SolveOutcome::Sat => {
            let model = solver.model().expect("sat outcome has a model");
            // Position of a transaction = number of transactions ordered before it.
            let mut order: Vec<TxnId> = (0..n).map(|i| TxnId(i as u32)).collect();
            order.sort_by_key(|&t| {
                (0..n)
                    .filter(|&other| other != t.index())
                    .filter(|&other| model.lit_value(co(&ord, other, t.index())))
                    .count()
            });
            debug_assert!(commit_order_is_valid(history, &order));
            SerializabilityResult::Serializable { witness: order }
        }
        SolveOutcome::Unsat => SerializabilityResult::Unserializable,
        SolveOutcome::Unknown => unreachable!("no conflict budget configured"),
    }
}

/// Verifies that a total order satisfies the serializability axioms — used as
/// an internal sanity check and by tests.
#[must_use]
pub fn commit_order_is_valid(history: &History, order: &[TxnId]) -> bool {
    let n = history.len();
    if order.len() != n {
        return false;
    }
    let mut positions = vec![usize::MAX; n];
    for (pos, &txn) in order.iter().enumerate() {
        positions[txn.index()] = pos;
    }
    if positions.contains(&usize::MAX) {
        return false;
    }
    // hb ⊆ co.
    let hb = hb_graph(history);
    for (from, to) in hb.edge_list() {
        if positions[from.index()] >= positions[to.index()] {
            return false;
        }
    }
    // ww (computed against this commit order) ⊆ co.
    let ww = ww_graph_for_commit_order(history, &positions);
    for (from, to) in ww.edge_list() {
        if positions[from.index()] >= positions[to.index()] {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistoryBuilder, TxnId};

    fn chained_deposits() -> History {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.read(t1, "acct", TxnId::INITIAL);
        b.write(t1, "acct");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "acct", t1);
        b.write(t2, "acct");
        b.commit(t2);
        b.finish()
    }

    fn racing_deposits() -> History {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.read(t1, "acct", TxnId::INITIAL);
        b.write(t1, "acct");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "acct", TxnId::INITIAL);
        b.write(t2, "acct");
        b.commit(t2);
        b.finish()
    }

    #[test]
    fn figure_2a_is_serializable_with_the_expected_witness() {
        let h = chained_deposits();
        let result = check(&h);
        match result {
            SerializabilityResult::Serializable { witness } => {
                assert!(commit_order_is_valid(&h, &witness));
                let pos = |t: TxnId| witness.iter().position(|&x| x == t).unwrap();
                assert!(pos(TxnId::INITIAL) < pos(TxnId(1)));
                assert!(pos(TxnId(1)) < pos(TxnId(2)));
            }
            SerializabilityResult::Unserializable => panic!("figure 2a must be serializable"),
        }
    }

    #[test]
    fn figure_3a_is_unserializable() {
        let h = racing_deposits();
        assert_eq!(check(&h), SerializabilityResult::Unserializable);
    }

    #[test]
    fn lost_update_is_unserializable_even_with_three_sessions() {
        // Two racing read-modify-writes plus an unrelated reader.
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let s3 = b.session("s3");
        let t1 = b.begin(s1);
        b.read(t1, "x", TxnId::INITIAL);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "x", TxnId::INITIAL);
        b.write(t2, "x");
        b.commit(t2);
        let t3 = b.begin(s3);
        b.read(t3, "y", TxnId::INITIAL);
        b.commit(t3);
        let h = b.finish();
        assert_eq!(check(&h), SerializabilityResult::Unserializable);
    }

    #[test]
    fn write_skew_is_unserializable() {
        // Classic write skew: t1 reads x writes y, t2 reads y writes x, both
        // reading the initial state.
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.read(t1, "x", TxnId::INITIAL);
        b.write(t1, "y");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "y", TxnId::INITIAL);
        b.write(t2, "x");
        b.commit(t2);
        let h = b.finish();
        // Write skew *is* serializable under the commit-order axioms only if
        // some order avoids the arbitration conflicts; here t1 reading x0 and
        // t2 reading y0 while writing each other's keys admits no such order?
        // In fact ⟨t1 before t2⟩ forces ww(t1 … ) — check the decision rather
        // than assert blindly: the axioms say this history is unserializable.
        assert_eq!(check(&h), SerializabilityResult::Unserializable);
    }

    #[test]
    fn read_only_transactions_are_always_serializable() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        for s in [s1, s2] {
            for _ in 0..3 {
                let t = b.begin(s);
                b.read(t, "x", TxnId::INITIAL);
                b.read(t, "y", TxnId::INITIAL);
                b.commit(t);
            }
        }
        let h = b.finish();
        assert!(check(&h).is_serializable());
    }

    #[test]
    fn empty_history_is_serializable() {
        let h = HistoryBuilder::new().finish();
        assert!(check(&h).is_serializable());
    }

    #[test]
    fn witness_validation_rejects_bad_orders() {
        let h = chained_deposits();
        // Reversed order violates hb.
        assert!(!commit_order_is_valid(
            &h,
            &[TxnId(2), TxnId(1), TxnId::INITIAL]
        ));
        // Wrong length.
        assert!(!commit_order_is_valid(&h, &[TxnId::INITIAL]));
        // Duplicates.
        assert!(!commit_order_is_valid(
            &h,
            &[TxnId::INITIAL, TxnId(1), TxnId(1)]
        ));
    }
}
