//! Execution histories of weakly isolated transactional data stores.
//!
//! This crate implements the formalism of Section 2 of the IsoPredict paper
//! (closely based on Biswas and Enea's axiomatic framework):
//!
//! * a [`History`] is `⟨T, so, wr⟩` — a set of committed transactions, the
//!   per-session order `so`, and the write–read relation `wr` recording which
//!   transaction's write each read observes (the special transaction `t0`
//!   represents the initial state);
//! * derived relations: happens-before `hb = (so ∪ wr)+`, the serializability
//!   arbitration order `ww`, the causal arbitration order `ww_causal`, the
//!   read-committed arbitration order `ww_rc`, and anti-dependencies `rw`
//!   (see [`relations`]);
//! * deciders for the isolation levels: [`serializability`] and [`si`]
//!   (via SAT encodings of the commit-order axioms, since both problems are
//!   NP-hard), [`causal`] and [`readcommitted`] (polynomial acyclicity
//!   checks) — bundled per level behind the [`isolation`] seam so that every
//!   other layer dispatches through [`IsolationLevel::semantics`];
//! * a serde-friendly [`trace`] format for recorded executions and a
//!   [`dot`] renderer for the paper-style history graphs.
//!
//! # Example
//!
//! The deposit example of Figure 1b/3a — both transactions read the initial
//! balance — is causally consistent but unserializable:
//!
//! ```
//! use isopredict_history::{HistoryBuilder, TxnId};
//!
//! let mut builder = HistoryBuilder::new();
//! let s1 = builder.session("client-1");
//! let s2 = builder.session("client-2");
//! let t1 = builder.begin(s1);
//! builder.read(t1, "acct", TxnId::INITIAL);
//! builder.write(t1, "acct");
//! builder.commit(t1);
//! let t2 = builder.begin(s2);
//! builder.read(t2, "acct", TxnId::INITIAL);
//! builder.write(t2, "acct");
//! builder.commit(t2);
//! let history = builder.finish();
//!
//! assert!(isopredict_history::causal::is_causal(&history));
//! assert!(!isopredict_history::serializability::check(&history).is_serializable());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod causal;
pub mod connectivity;
pub mod dot;
pub mod graph;
pub mod isolation;
pub mod readcommitted;
pub mod relations;
pub mod serializability;
pub mod si;
pub mod trace;

mod builder;
mod event;
mod history;
mod ids;

pub use builder::HistoryBuilder;
pub use connectivity::{KeyComponents, UnionFind};
pub use event::{Event, EventKind};
pub use history::{History, Transaction};
pub use ids::{KeyId, SessionId, TxnId};
pub use isolation::{IsolationLevel, IsolationSemantics, ParseIsolationLevelError};
pub use serializability::SerializabilityResult;
pub use trace::{OpTrace, SessionTrace, Trace, TraceError, TraceMeta, TxnTrace};

/// A key of the data store, by name. Keys are interned to [`KeyId`]s inside a
/// [`History`]; this alias documents intent at API boundaries that take names.
pub type KeyName = str;
