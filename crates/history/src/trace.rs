//! Serializable trace format for recorded executions.
//!
//! The paper's implementation exchanges "traces containing read and write
//! events and transaction and session identifiers, including the transaction
//! that each read reads from". [`Trace`] is that format: a JSON-friendly
//! mirror of a [`History`] that tools (the store recorder, the predictor, the
//! validator) can write to and read from disk.
//!
//! # Canonical serialization
//!
//! [`Trace::to_canonical_json`] is the trace's *canonical form*: compact
//! (no whitespace), with object keys in declaration order and sequences in
//! trace order. Two equal traces always canonicalize to the same bytes, on
//! every platform and on every run — the contract that lets a trace corpus
//! address traces by a hash of their canonical form. The byte layout is
//! pinned by a golden-file test (`tests/trace_canonical.rs`); changing it
//! invalidates every content address ever handed out, so treat the golden
//! file as an append-only compatibility promise.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::history::History;
use crate::ids::TxnId;
use crate::{EventKind, HistoryBuilder};

/// A single operation of a traced transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum OpTrace {
    /// A read of `key` observing the write of transaction `from`
    /// (`0` is the initial state `t0`).
    Read {
        /// Key read.
        key: String,
        /// Global identifier of the writer transaction.
        from: u32,
    },
    /// A write of `key`.
    Write {
        /// Key written.
        key: String,
    },
}

/// A traced transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnTrace {
    /// Globally unique identifier of the transaction within the trace
    /// (must not be 0, which denotes the initial state).
    pub id: u32,
    /// Whether the transaction committed. Aborted transactions are recorded
    /// for debugging but excluded from the resulting history.
    pub committed: bool,
    /// The transaction's operations in program order.
    pub ops: Vec<OpTrace>,
}

/// A traced session (client).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionTrace {
    /// Session name (for diagnostics).
    pub name: String,
    /// The session's transactions in session order.
    pub transactions: Vec<TxnTrace>,
}

/// Provenance metadata stamped on a trace by the recorder.
///
/// The first five identity fields — benchmark, seed, workload shape and the
/// recording mode — plus the recorder version form the corpus index key: a
/// trace store looks traces up by exactly this tuple, so the metadata must be
/// populated *at record time* rather than re-derived later. Traces ingested
/// from external systems may omit the metadata entirely (`Trace::meta` is
/// `None`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Benchmark (application) name, e.g. `"Smallbank"`.
    pub benchmark: String,
    /// Workload RNG seed.
    pub seed: u64,
    /// Number of client sessions in the workload configuration.
    pub sessions: usize,
    /// Transactions attempted per session.
    pub txns_per_session: usize,
    /// Workload data-size knob (accounts / contestants / items / pages).
    pub scale: usize,
    /// Label of the store mode the trace was recorded under, e.g.
    /// `"serializable-record"` or `"weak-random(causal)"`.
    pub isolation: String,
    /// Version of the store crate that recorded the trace.
    pub store_version: String,
    /// For each session, the plan indices of the transactions that committed,
    /// in session order — what a steered validation replay needs to map
    /// history transactions back to workload plan entries. `None` for traces
    /// that did not come from the workload runner (e.g. external imports).
    pub committed_plan_indices: Option<Vec<Vec<usize>>>,
}

/// A recorded execution trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// All sessions of the execution.
    pub sessions: Vec<SessionTrace>,
    /// Recorder-stamped provenance, if any (see [`TraceMeta`]).
    pub meta: Option<TraceMeta>,
}

/// Error converting a [`Trace`] into a [`History`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Two transactions share the same identifier.
    DuplicateTxnId(u32),
    /// A read references a writer transaction that is not in the trace.
    UnknownWriter {
        /// The missing writer id.
        writer: u32,
        /// The reading transaction id.
        reader: u32,
    },
    /// A transaction used the reserved identifier 0.
    ReservedId,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::DuplicateTxnId(id) => write!(f, "duplicate transaction id {id}"),
            TraceError::UnknownWriter { writer, reader } => {
                write!(
                    f,
                    "transaction {reader} reads from unknown transaction {writer}"
                )
            }
            TraceError::ReservedId => {
                write!(f, "transaction id 0 is reserved for the initial state")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// Converts the trace into a [`History`].
    ///
    /// The conversion runs in two passes — transactions are registered first
    /// and events resolved second — so that a read may observe a transaction
    /// that appears later in the trace (a forward reference across sessions).
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if transaction identifiers are duplicated or a
    /// read references an unknown writer. Reads from *aborted* transactions
    /// are retargeted to the initial state (mirroring what the store's
    /// recorder does when a writer rolls back).
    pub fn to_history(&self) -> Result<History, TraceError> {
        let mut builder = HistoryBuilder::new();
        let mut txn_of_trace_id: HashMap<u32, TxnId> = HashMap::new();
        let mut committed: HashMap<u32, bool> = HashMap::new();
        let mut handles: Vec<(TxnId, &TxnTrace)> = Vec::new();

        for session in &self.sessions {
            let sid = builder.session(session.name.clone());
            for txn in &session.transactions {
                if txn.id == 0 {
                    return Err(TraceError::ReservedId);
                }
                if committed.insert(txn.id, txn.committed).is_some() {
                    return Err(TraceError::DuplicateTxnId(txn.id));
                }
                let tid = builder.begin(sid);
                txn_of_trace_id.insert(txn.id, tid);
                handles.push((tid, txn));
            }
        }

        for (tid, txn) in handles {
            for op in &txn.ops {
                match op {
                    OpTrace::Read { key, from } => {
                        let writer = if *from == 0 {
                            TxnId::INITIAL
                        } else {
                            match committed.get(from) {
                                None => {
                                    return Err(TraceError::UnknownWriter {
                                        writer: *from,
                                        reader: txn.id,
                                    })
                                }
                                Some(false) => TxnId::INITIAL,
                                Some(true) => txn_of_trace_id[from],
                            }
                        };
                        builder.read(tid, key, writer);
                    }
                    OpTrace::Write { key } => builder.write(tid, key),
                }
            }
            if txn.committed {
                builder.commit(tid);
            } else {
                builder.abort(tid);
            }
        }

        Ok(builder.finish())
    }

    /// Builds a trace from a history (e.g. to persist a predicted execution).
    #[must_use]
    pub fn from_history(history: &History) -> Trace {
        let sessions = history
            .sessions()
            .map(|sid| SessionTrace {
                name: history.session_name(sid).to_string(),
                transactions: history
                    .session_transactions(sid)
                    .iter()
                    .map(|&tid| {
                        let txn = history.txn(tid);
                        TxnTrace {
                            id: tid.0,
                            committed: true,
                            ops: txn
                                .events
                                .iter()
                                .map(|e| match e.kind {
                                    EventKind::Read { from } => OpTrace::Read {
                                        key: history.key_name(e.key).to_string(),
                                        from: from.0,
                                    },
                                    EventKind::Write => OpTrace::Write {
                                        key: history.key_name(e.key).to_string(),
                                    },
                                })
                                .collect(),
                        }
                    })
                    .collect(),
            })
            .collect();
        Trace {
            sessions,
            meta: None,
        }
    }

    /// Serializes the trace to pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialization cannot fail")
    }

    /// Serializes the trace to its canonical form: compact JSON with keys in
    /// declaration order and sequences in trace order, byte-deterministic
    /// across runs and platforms (see the [module docs](self)). Content
    /// addresses must be computed over exactly these bytes.
    #[must_use]
    pub fn to_canonical_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Parses a trace from JSON text.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error message if the text is not a
    /// valid trace document.
    pub fn from_json(text: &str) -> Result<Trace, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            sessions: vec![
                SessionTrace {
                    name: "client-1".to_string(),
                    transactions: vec![TxnTrace {
                        id: 1,
                        committed: true,
                        ops: vec![
                            OpTrace::Read {
                                key: "acct".to_string(),
                                from: 0,
                            },
                            OpTrace::Write {
                                key: "acct".to_string(),
                            },
                        ],
                    }],
                },
                SessionTrace {
                    name: "client-2".to_string(),
                    transactions: vec![TxnTrace {
                        id: 2,
                        committed: true,
                        ops: vec![
                            OpTrace::Read {
                                key: "acct".to_string(),
                                from: 1,
                            },
                            OpTrace::Write {
                                key: "acct".to_string(),
                            },
                        ],
                    }],
                },
            ],
            meta: None,
        }
    }

    #[test]
    fn trace_round_trips_through_history() {
        let trace = sample_trace();
        let history = trace.to_history().expect("valid trace");
        assert_eq!(history.len(), 3);
        assert!(history.wr(TxnId(1), TxnId(2)));
        let back = Trace::from_history(&history);
        assert_eq!(back.sessions.len(), 2);
        assert_eq!(back.sessions[1].transactions[0].ops.len(), 2);
    }

    #[test]
    fn trace_round_trips_through_json() {
        let trace = sample_trace();
        let json = trace.to_json();
        let parsed = Trace::from_json(&json).expect("valid json");
        assert_eq!(trace, parsed);
        assert!(Trace::from_json("not json").is_err());
    }

    #[test]
    fn canonical_json_is_compact_and_round_trips() {
        let mut trace = sample_trace();
        trace.meta = Some(TraceMeta {
            benchmark: "Smallbank".to_string(),
            seed: 7,
            sessions: 2,
            txns_per_session: 1,
            scale: 4,
            isolation: "serializable-record".to_string(),
            store_version: "0.1.0".to_string(),
            committed_plan_indices: Some(vec![vec![0], vec![0]]),
        });
        let canonical = trace.to_canonical_json();
        assert!(!canonical.contains('\n'));
        assert!(!canonical.contains(": "));
        assert_eq!(Trace::from_json(&canonical).expect("valid json"), trace);
        // Pretty and canonical forms describe the same document.
        assert_eq!(Trace::from_json(&trace.to_json()).expect("pretty"), trace);
        // Canonicalization is a pure function of the value.
        assert_eq!(canonical, trace.clone().to_canonical_json());
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let mut trace = sample_trace();
        trace.sessions[1].transactions[0].id = 1;
        assert_eq!(trace.to_history(), Err(TraceError::DuplicateTxnId(1)));
    }

    #[test]
    fn reserved_id_is_rejected() {
        let mut trace = sample_trace();
        trace.sessions[0].transactions[0].id = 0;
        assert_eq!(trace.to_history(), Err(TraceError::ReservedId));
    }

    #[test]
    fn unknown_writer_is_rejected() {
        let mut trace = sample_trace();
        trace.sessions[1].transactions[0].ops[0] = OpTrace::Read {
            key: "acct".to_string(),
            from: 99,
        };
        assert_eq!(
            trace.to_history(),
            Err(TraceError::UnknownWriter {
                writer: 99,
                reader: 2
            })
        );
    }

    #[test]
    fn reads_from_aborted_writers_fall_back_to_initial() {
        let mut trace = sample_trace();
        trace.sessions[0].transactions[0].committed = false;
        let history = trace.to_history().expect("valid trace");
        // Only one committed transaction; its read falls back to t0.
        assert_eq!(history.len(), 2);
        let txn = history.txn(TxnId(1));
        assert_eq!(txn.events[0].read_from(), Some(TxnId::INITIAL));
    }

    #[test]
    fn forward_references_are_resolved_by_the_two_pass_path() {
        // Session 1's transaction reads from session 2's transaction, which
        // appears later in the trace.
        let trace = Trace {
            sessions: vec![
                SessionTrace {
                    name: "a".to_string(),
                    transactions: vec![TxnTrace {
                        id: 1,
                        committed: true,
                        ops: vec![OpTrace::Read {
                            key: "x".to_string(),
                            from: 2,
                        }],
                    }],
                },
                SessionTrace {
                    name: "b".to_string(),
                    transactions: vec![TxnTrace {
                        id: 2,
                        committed: true,
                        ops: vec![OpTrace::Write {
                            key: "x".to_string(),
                        }],
                    }],
                },
            ],
            meta: None,
        };
        let history = trace.to_history().expect("valid trace");
        // The reader is builder-id 1 (session a), the writer builder-id 2.
        assert!(history.wr(TxnId(2), TxnId(1)));
        let error_display = format!("{}", TraceError::DuplicateTxnId(7));
        assert!(error_display.contains('7'));
    }
}
