//! The `⟨T, so, wr⟩` execution-history type.

use std::collections::HashMap;

use crate::event::{Event, EventKind};
use crate::ids::{KeyId, SessionId, TxnId};

/// A committed transaction of a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// The transaction's identifier (its index in the history).
    pub id: TxnId,
    /// The session the transaction executed in; `None` for the initial-state
    /// transaction `t0`.
    pub session: Option<SessionId>,
    /// The transaction's events in program order.
    pub events: Vec<Event>,
}

impl Transaction {
    /// Positions (within the session) of this transaction's reads of `key` —
    /// the paper's `rdpos_k(t)`.
    #[must_use]
    pub fn read_positions_of_key(&self, key: KeyId) -> Vec<usize> {
        self.events
            .iter()
            .filter(|e| e.is_read() && e.key == key)
            .map(|e| e.pos)
            .collect()
    }

    /// Positions of all of this transaction's reads — the paper's `rdpos_*(t)`.
    #[must_use]
    pub fn read_positions(&self) -> Vec<usize> {
        self.events
            .iter()
            .filter(|e| e.is_read())
            .map(|e| e.pos)
            .collect()
    }

    /// Position of this transaction's (last) write to `key` — the paper's
    /// `wrpos_k(t)` — or `None` if it does not write `key`.
    #[must_use]
    pub fn write_position(&self, key: KeyId) -> Option<usize> {
        self.events
            .iter()
            .filter(|e| e.is_write() && e.key == key)
            .map(|e| e.pos)
            .next_back()
    }

    /// Keys written by this transaction.
    #[must_use]
    pub fn written_keys(&self) -> Vec<KeyId> {
        let mut keys: Vec<KeyId> = self
            .events
            .iter()
            .filter(|e| e.is_write())
            .map(|e| e.key)
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Keys read by this transaction.
    #[must_use]
    pub fn read_keys(&self) -> Vec<KeyId> {
        let mut keys: Vec<KeyId> = self
            .events
            .iter()
            .filter(|e| e.is_read())
            .map(|e| e.key)
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Whether the transaction performs no writes.
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        self.events.iter().all(|e| e.is_read())
    }

    /// The position of the transaction's last event within its session, or
    /// `None` if the transaction has no events.
    #[must_use]
    pub fn last_event_position(&self) -> Option<usize> {
        self.events.iter().map(|e| e.pos).max()
    }
}

/// An execution history `⟨T, so, wr⟩` of a data store application.
///
/// Construct histories with [`crate::HistoryBuilder`] or by converting a
/// recorded [`crate::Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct History {
    pub(crate) key_names: Vec<String>,
    pub(crate) key_index: HashMap<String, KeyId>,
    pub(crate) transactions: Vec<Transaction>,
    /// For each session, its transactions in session order.
    pub(crate) sessions: Vec<Vec<TxnId>>,
    pub(crate) session_names: Vec<String>,
}

impl History {
    /// All transactions including `t0` (always at index 0).
    #[must_use]
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// The transactions other than `t0`.
    pub fn committed_transactions(&self) -> impl Iterator<Item = &Transaction> {
        self.transactions.iter().skip(1)
    }

    /// Looks up a transaction.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this history.
    #[must_use]
    pub fn txn(&self, id: TxnId) -> &Transaction {
        &self.transactions[id.index()]
    }

    /// The initial-state transaction `t0`.
    #[must_use]
    pub fn initial(&self) -> &Transaction {
        &self.transactions[0]
    }

    /// Number of transactions, including `t0`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the history contains only `t0`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transactions.len() <= 1
    }

    /// Number of sessions.
    #[must_use]
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// The transactions of `session`, in session order.
    #[must_use]
    pub fn session_transactions(&self, session: SessionId) -> &[TxnId] {
        &self.sessions[session.index()]
    }

    /// The name given to `session` when it was created.
    #[must_use]
    pub fn session_name(&self, session: SessionId) -> &str {
        &self.session_names[session.index()]
    }

    /// All session identifiers.
    pub fn sessions(&self) -> impl Iterator<Item = SessionId> {
        (0..self.sessions.len() as u32).map(SessionId)
    }

    /// Number of interned keys.
    #[must_use]
    pub fn num_keys(&self) -> usize {
        self.key_names.len()
    }

    /// All key identifiers.
    pub fn keys(&self) -> impl Iterator<Item = KeyId> {
        (0..self.key_names.len() as u32).map(KeyId)
    }

    /// The name of a key.
    #[must_use]
    pub fn key_name(&self, key: KeyId) -> &str {
        &self.key_names[key.index()]
    }

    /// Looks a key up by name.
    #[must_use]
    pub fn key_id(&self, name: &str) -> Option<KeyId> {
        self.key_index.get(name).copied()
    }

    /// Session order: `so(t1, t2)` holds if both run in the same session and
    /// `t1` precedes `t2`, or if `t1` is `t0` and `t2` is not.
    #[must_use]
    pub fn so(&self, t1: TxnId, t2: TxnId) -> bool {
        if t1 == t2 {
            return false;
        }
        if t1.is_initial() {
            return !t2.is_initial();
        }
        if t2.is_initial() {
            return false;
        }
        match (self.txn(t1).session, self.txn(t2).session) {
            (Some(s1), Some(s2)) if s1 == s2 => {
                let order = &self.sessions[s1.index()];
                let p1 = order.iter().position(|&t| t == t1);
                let p2 = order.iter().position(|&t| t == t2);
                matches!((p1, p2), (Some(a), Some(b)) if a < b)
            }
            _ => false,
        }
    }

    /// Observed write–read relation restricted to `key`: `wr_k(t1, t2)` holds
    /// if some read of `key` in `t2` reads from `t1`.
    #[must_use]
    pub fn wr_on_key(&self, key: KeyId, t1: TxnId, t2: TxnId) -> bool {
        if t1 == t2 {
            return false;
        }
        self.txn(t2)
            .events
            .iter()
            .any(|e| e.key == key && e.kind == EventKind::Read { from: t1 })
    }

    /// Observed write–read relation (union over all keys).
    #[must_use]
    pub fn wr(&self, t1: TxnId, t2: TxnId) -> bool {
        if t1 == t2 {
            return false;
        }
        self.txn(t2)
            .events
            .iter()
            .any(|e| e.kind == EventKind::Read { from: t1 })
    }

    /// All `(writer, reader, key, reader position)` tuples of the observed
    /// write–read relation.
    #[must_use]
    pub fn wr_tuples(&self) -> Vec<(TxnId, TxnId, KeyId, usize)> {
        let mut tuples = Vec::new();
        for txn in &self.transactions {
            for event in &txn.events {
                if let EventKind::Read { from } = event.kind {
                    tuples.push((from, txn.id, event.key, event.pos));
                }
            }
        }
        tuples
    }

    /// Transactions whose last-write set contains `key` (including `t0`,
    /// which implicitly writes every key's initial value).
    #[must_use]
    pub fn writers_of(&self, key: KeyId) -> Vec<TxnId> {
        self.transactions
            .iter()
            .filter(|t| t.id.is_initial() || t.write_position(key).is_some())
            .map(|t| t.id)
            .collect()
    }

    /// Transactions that read `key`.
    #[must_use]
    pub fn readers_of(&self, key: KeyId) -> Vec<TxnId> {
        self.transactions
            .iter()
            .filter(|t| t.events.iter().any(|e| e.is_read() && e.key == key))
            .map(|t| t.id)
            .collect()
    }

    /// Total number of read events (excluding `t0`).
    #[must_use]
    pub fn num_reads(&self) -> usize {
        self.committed_transactions()
            .map(|t| t.events.iter().filter(|e| e.is_read()).count())
            .sum()
    }

    /// Total number of write events (excluding `t0`).
    #[must_use]
    pub fn num_writes(&self) -> usize {
        self.committed_transactions()
            .map(|t| t.events.iter().filter(|e| e.is_write()).count())
            .sum()
    }

    /// Number of committed transactions that perform no writes.
    #[must_use]
    pub fn num_read_only(&self) -> usize {
        self.committed_transactions()
            .filter(|t| t.is_read_only())
            .count()
    }

    /// The largest event position used in `session` (the "last event" that a
    /// relaxed prediction boundary may sit after), or `None` if the session
    /// has no events.
    #[must_use]
    pub fn last_position(&self, session: SessionId) -> Option<usize> {
        self.sessions[session.index()]
            .iter()
            .filter_map(|&t| self.txn(t).last_event_position())
            .max()
    }

    /// Returns a copy of the history in which every event has been transformed
    /// (or dropped) by `f`, preserving transaction identifiers, sessions, key
    /// interning and event positions. Used to derive *predicted* histories
    /// from an observed history: the caller rewrites each read's writer and
    /// drops events beyond the prediction boundary.
    #[must_use]
    pub fn map_events<F>(&self, mut f: F) -> History
    where
        F: FnMut(&Transaction, &Event) -> Option<Event>,
    {
        let transactions = self
            .transactions
            .iter()
            .map(|txn| Transaction {
                id: txn.id,
                session: txn.session,
                events: txn.events.iter().filter_map(|e| f(txn, e)).collect(),
            })
            .collect();
        History {
            key_names: self.key_names.clone(),
            key_index: self.key_index.clone(),
            transactions,
            sessions: self.sessions.clone(),
            session_names: self.session_names.clone(),
        }
    }

    /// Restricts the history to the given transactions (plus `t0`, which is
    /// always kept). Surviving transactions keep their identifiers so that
    /// relations computed before and after the restriction remain comparable;
    /// dropped transactions become *empty* transactions detached from their
    /// session (an empty transaction never affects serializability or the
    /// weak-isolation checks). Reads whose writer was dropped are retargeted
    /// to `t0` if `retarget_reads` is true; otherwise such read events are
    /// removed.
    #[must_use]
    pub fn restrict(&self, keep: &[TxnId], retarget_reads: bool) -> History {
        let keep_set: std::collections::HashSet<TxnId> = keep.iter().copied().collect();
        let mut transactions = Vec::with_capacity(self.transactions.len());
        for txn in &self.transactions {
            if !txn.id.is_initial() && !keep_set.contains(&txn.id) {
                transactions.push(Transaction {
                    id: txn.id,
                    session: None,
                    events: Vec::new(),
                });
                continue;
            }
            let mut events = Vec::new();
            for event in &txn.events {
                match event.kind {
                    EventKind::Read { from } if !from.is_initial() && !keep_set.contains(&from) => {
                        if retarget_reads {
                            events.push(Event {
                                key: event.key,
                                pos: event.pos,
                                kind: EventKind::Read {
                                    from: TxnId::INITIAL,
                                },
                            });
                        }
                    }
                    _ => events.push(*event),
                }
            }
            transactions.push(Transaction {
                id: txn.id,
                session: txn.session,
                events,
            });
        }
        let sessions = self
            .sessions
            .iter()
            .map(|txns| {
                txns.iter()
                    .copied()
                    .filter(|t| keep_set.contains(t))
                    .collect()
            })
            .collect();
        History {
            key_names: self.key_names.clone(),
            key_index: self.key_index.clone(),
            transactions,
            sessions,
            session_names: self.session_names.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryBuilder;

    fn two_txn_history() -> History {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.read(t1, "x", TxnId::INITIAL);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "x", t1);
        b.write(t2, "x");
        b.commit(t2);
        b.finish()
    }

    #[test]
    fn basic_accessors() {
        let h = two_txn_history();
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
        assert_eq!(h.num_sessions(), 2);
        assert_eq!(h.num_keys(), 1);
        assert_eq!(h.key_name(KeyId(0)), "x");
        assert_eq!(h.key_id("x"), Some(KeyId(0)));
        assert_eq!(h.key_id("missing"), None);
        assert_eq!(h.num_reads(), 2);
        assert_eq!(h.num_writes(), 2);
        assert_eq!(h.num_read_only(), 0);
        assert_eq!(h.session_name(SessionId(0)), "s1");
    }

    #[test]
    fn session_order_includes_initial_transaction() {
        let h = two_txn_history();
        let t1 = TxnId(1);
        let t2 = TxnId(2);
        assert!(h.so(TxnId::INITIAL, t1));
        assert!(h.so(TxnId::INITIAL, t2));
        assert!(!h.so(t1, TxnId::INITIAL));
        // Different sessions are not so-ordered.
        assert!(!h.so(t1, t2));
        assert!(!h.so(t2, t1));
        assert!(!h.so(t1, t1));
    }

    #[test]
    fn write_read_relation_matches_construction() {
        let h = two_txn_history();
        let x = KeyId(0);
        assert!(h.wr_on_key(x, TxnId::INITIAL, TxnId(1)));
        assert!(h.wr_on_key(x, TxnId(1), TxnId(2)));
        assert!(!h.wr_on_key(x, TxnId(2), TxnId(1)));
        assert!(h.wr(TxnId(1), TxnId(2)));
        assert_eq!(h.wr_tuples().len(), 2);
    }

    #[test]
    fn writers_and_readers_of_key() {
        let h = two_txn_history();
        let x = KeyId(0);
        let writers = h.writers_of(x);
        assert!(writers.contains(&TxnId::INITIAL));
        assert!(writers.contains(&TxnId(1)));
        assert!(writers.contains(&TxnId(2)));
        let readers = h.readers_of(x);
        assert_eq!(readers, vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn transaction_position_helpers() {
        let h = two_txn_history();
        let t1 = h.txn(TxnId(1));
        let x = KeyId(0);
        assert_eq!(t1.read_positions_of_key(x), vec![0]);
        assert_eq!(t1.read_positions(), vec![0]);
        assert_eq!(t1.write_position(x), Some(1));
        assert_eq!(t1.written_keys(), vec![x]);
        assert_eq!(t1.read_keys(), vec![x]);
        assert!(!t1.is_read_only());
        assert_eq!(t1.last_event_position(), Some(1));
        assert_eq!(h.last_position(SessionId(0)), Some(1));
    }

    #[test]
    fn restriction_drops_transactions_and_their_readers_edges() {
        let h = two_txn_history();
        // Keep only t2: its read of x from t1 must be either retargeted or dropped.
        let restricted = h.restrict(&[TxnId(2)], true);
        assert_eq!(restricted.len(), 3); // t0, an emptied t1, and t2
        assert!(restricted.txn(TxnId(1)).events.is_empty());
        assert!(restricted.txn(TxnId(1)).session.is_none());
        let t2 = restricted.txn(TxnId(2));
        assert_eq!(t2.events[0].read_from(), Some(TxnId::INITIAL));
        assert_eq!(
            restricted.session_transactions(SessionId(0)),
            &[] as &[TxnId]
        );

        let dropped = h.restrict(&[TxnId(2)], false);
        let t2 = dropped.txn(TxnId(2));
        assert_eq!(t2.events.iter().filter(|e| e.is_read()).count(), 0);
    }
}
