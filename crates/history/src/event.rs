//! Read and write events.

use serde::{Deserialize, Serialize};

use crate::ids::{KeyId, TxnId};

/// The kind of an event, together with kind-specific payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A read of a key; `from` is the transaction whose write the read
    /// observes ([`TxnId::INITIAL`] for the initial state).
    Read {
        /// The writer transaction this read reads from.
        from: TxnId,
    },
    /// A write of a key. Only the *last* write of a transaction to a key is
    /// kept as an event (earlier writes are shadowed and never observable by
    /// other transactions).
    Write,
}

/// An event inside a transaction.
///
/// `pos` is the event's position in its *session*: the paper numbers every
/// event of a session with monotonically increasing integers so that the
/// writer-choice function `φ_choice(s, i)` and the prediction boundary
/// `φ_boundary(s)` can refer to events by position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Event {
    /// The key this event reads or writes.
    pub key: KeyId,
    /// The event's position within its session (0-based, monotonically
    /// increasing across the session's transactions).
    pub pos: usize,
    /// Whether this is a read (and from whom) or a write.
    pub kind: EventKind,
}

impl Event {
    /// Whether this is a read event.
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(self.kind, EventKind::Read { .. })
    }

    /// Whether this is a write event.
    #[must_use]
    pub fn is_write(&self) -> bool {
        matches!(self.kind, EventKind::Write)
    }

    /// The writer this read observes, or `None` for a write event.
    #[must_use]
    pub fn read_from(&self) -> Option<TxnId> {
        match self.kind {
            EventKind::Read { from } => Some(from),
            EventKind::Write => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_accessors() {
        let read = Event {
            key: KeyId(0),
            pos: 3,
            kind: EventKind::Read { from: TxnId(2) },
        };
        let write = Event {
            key: KeyId(1),
            pos: 4,
            kind: EventKind::Write,
        };
        assert!(read.is_read() && !read.is_write());
        assert!(write.is_write() && !write.is_read());
        assert_eq!(read.read_from(), Some(TxnId(2)));
        assert_eq!(write.read_from(), None);
    }
}
