//! Deciding causal consistency of a concrete history (Section 2.3).

use crate::graph::DiGraph;
use crate::history::History;
use crate::ids::TxnId;
use crate::relations::{hb_graph, ww_causal_graph};

/// The combined graph whose acyclicity characterizes causal consistency:
/// `hb ∪ ww_causal`.
#[must_use]
pub fn causal_graph(history: &History) -> DiGraph {
    let mut graph = hb_graph(history);
    graph.union_with(&ww_causal_graph(history));
    graph
}

/// Whether `history` is causally consistent: `(hb ∪ ww_causal)+` is acyclic.
#[must_use]
pub fn is_causal(history: &History) -> bool {
    !causal_graph(history).has_cycle()
}

/// A commit order witnessing causal consistency, or `None` if the history is
/// not causal.
#[must_use]
pub fn causal_commit_order(history: &History) -> Option<Vec<TxnId>> {
    causal_graph(history).topological_order()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistoryBuilder, TxnId};

    #[test]
    fn both_deposit_histories_are_causal() {
        for second_reads_initial in [false, true] {
            let mut b = HistoryBuilder::new();
            let s1 = b.session("s1");
            let s2 = b.session("s2");
            let t1 = b.begin(s1);
            b.read(t1, "acct", TxnId::INITIAL);
            b.write(t1, "acct");
            b.commit(t1);
            let t2 = b.begin(s2);
            let from = if second_reads_initial {
                TxnId::INITIAL
            } else {
                t1
            };
            b.read(t2, "acct", from);
            b.write(t2, "acct");
            b.commit(t2);
            let h = b.finish();
            assert!(is_causal(&h), "second_reads_initial={second_reads_initial}");
            assert!(causal_commit_order(&h).is_some());
        }
    }

    #[test]
    fn figure_7d_style_history_is_not_causal() {
        // Within one session, t1 writes x then t3 reads x from the *initial*
        // state although an hb-earlier transaction of the same session wrote
        // x and another transaction already observed the later write — the
        // concrete shape below forces a ww_causal cycle.
        //
        // Session A: t1 writes x; Session B: t2 reads x from t1 and writes x;
        // Session A again: t3 reads x from t0. Then ww_causal(t1, t0) via
        // t3? t1 and t0 both write x, wr_x(t0, t3) and hb(t1, t3) (so) ⇒
        // ww_causal(t1, t0); combined with hb(t0, t1) this is a cycle.
        let mut b = HistoryBuilder::new();
        let sa = b.session("A");
        let sb = b.session("B");
        let t1 = b.begin(sa);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(sb);
        b.read(t2, "x", t1);
        b.write(t2, "x");
        b.commit(t2);
        let t3 = b.begin(sa);
        b.read(t3, "x", TxnId::INITIAL);
        b.commit(t3);
        let h = b.finish();
        assert!(!is_causal(&h));
        assert!(causal_commit_order(&h).is_none());
    }

    #[test]
    fn reading_your_sessions_latest_write_is_causal() {
        let mut b = HistoryBuilder::new();
        let s = b.session("s");
        let t1 = b.begin(s);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(s);
        b.read(t2, "x", t1);
        b.commit(t2);
        let h = b.finish();
        assert!(is_causal(&h));
    }

    #[test]
    fn causal_commit_order_respects_happens_before() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "x", t1);
        b.commit(t2);
        let h = b.finish();
        let order = causal_commit_order(&h).unwrap();
        let pos = |t: TxnId| order.iter().position(|&x| x == t).unwrap();
        assert!(pos(TxnId::INITIAL) < pos(TxnId(1)));
        assert!(pos(TxnId(1)) < pos(TxnId(2)));
    }
}
