//! Derived relations over a concrete history: `so`, `wr`, `hb`, arbitration
//! orders and anti-dependencies (Section 2 of the paper).

use crate::graph::DiGraph;
use crate::history::History;
use crate::ids::TxnId;

/// Session-order graph: `t0 → t` for every committed `t`, plus consecutive
/// edges within each session (the transitive closure then recovers the full
/// `so` relation).
#[must_use]
pub fn so_graph(history: &History) -> DiGraph {
    let mut graph = DiGraph::new(history.len());
    for txn in history.committed_transactions() {
        graph.add_edge(TxnId::INITIAL, txn.id);
    }
    for session in history.sessions() {
        let txns = history.session_transactions(session);
        for pair in txns.windows(2) {
            graph.add_edge(pair[0], pair[1]);
        }
    }
    graph
}

/// Write–read graph: an edge `t1 → t2` whenever some read of `t2` reads from `t1`.
#[must_use]
pub fn wr_graph(history: &History) -> DiGraph {
    let mut graph = DiGraph::new(history.len());
    for (writer, reader, _key, _pos) in history.wr_tuples() {
        graph.add_edge(writer, reader);
    }
    graph
}

/// Happens-before: `hb = (so ∪ wr)+`.
#[must_use]
pub fn hb_graph(history: &History) -> DiGraph {
    let mut graph = so_graph(history);
    graph.union_with(&wr_graph(history));
    graph.transitive_closure()
}

/// Causal arbitration order (Equation 2 of the paper):
/// `ww_causal(t1, t2)` iff both write some key `k` and a third transaction
/// `t3` reads `k` from `t2` while `hb(t1, t3)`.
#[must_use]
pub fn ww_causal_graph(history: &History) -> DiGraph {
    let hb = hb_graph(history);
    let mut graph = DiGraph::new(history.len());
    for key in history.keys() {
        let writers = history.writers_of(key);
        for (writer, reader, wr_key, _pos) in history.wr_tuples() {
            if wr_key != key {
                continue;
            }
            // writer = t2, reader = t3; every other writer t1 of k with hb(t1, t3).
            for &t1 in &writers {
                if t1 == writer || t1 == reader {
                    continue;
                }
                if hb.has_edge(t1, reader) {
                    graph.add_edge(t1, writer);
                }
            }
        }
    }
    graph
}

/// Read-committed arbitration order (Equation 4 of the paper):
/// `ww_rc(t1, t2)` iff both write some key `k` and a third transaction `t3`
/// contains a read `β` (of any key, from `t1`) that precedes (in program
/// order) a read `α` of `k` from `t2`.
#[must_use]
pub fn ww_rc_graph(history: &History) -> DiGraph {
    let mut graph = DiGraph::new(history.len());
    for t3 in history.committed_transactions() {
        // For every ordered pair of reads (β at position i) < (α at position j).
        for beta in t3.events.iter().filter(|e| e.is_read()) {
            for alpha in t3.events.iter().filter(|e| e.is_read()) {
                if beta.pos >= alpha.pos {
                    continue;
                }
                let t1 = beta.read_from().expect("beta is a read");
                let t2 = alpha.read_from().expect("alpha is a read");
                if t1 == t2 || t1 == t3.id || t2 == t3.id {
                    continue;
                }
                // t1 and t2 must both write the key read by α.
                let k = alpha.key;
                let t1_writes_k = t1.is_initial() || history.txn(t1).write_position(k).is_some();
                if t1_writes_k {
                    graph.add_edge(t1, t2);
                }
            }
        }
    }
    graph
}

/// Serializability arbitration order computed against a *given commit order*
/// (Equation 1): `ww(t1, t2)` iff both write `k`, some `t3` reads `k` from
/// `t2`, and `co(t1, t3)`.
#[must_use]
pub fn ww_graph_for_commit_order(history: &History, commit_positions: &[usize]) -> DiGraph {
    let mut graph = DiGraph::new(history.len());
    for key in history.keys() {
        let writers = history.writers_of(key);
        for (writer, reader, wr_key, _pos) in history.wr_tuples() {
            if wr_key != key {
                continue;
            }
            for &t1 in &writers {
                if t1 == writer || t1 == reader {
                    continue;
                }
                if commit_positions[t1.index()] < commit_positions[reader.index()] {
                    graph.add_edge(t1, writer);
                }
            }
        }
    }
    graph
}

/// Anti-dependency order with respect to an order relation `before`
/// (used with `pco` or a concrete commit order):
/// `rw(t1, t2)` iff `t2` writes some key `k`, some `tw` is the writer `t1`
/// reads `k` from, and `before(tw, t2)`.
#[must_use]
pub fn rw_graph(history: &History, before: &DiGraph) -> DiGraph {
    let mut graph = DiGraph::new(history.len());
    for (tw, t1, key, _pos) in history.wr_tuples() {
        for t2 in history.writers_of(key) {
            if t2 == t1 || t2 == tw {
                continue;
            }
            if before.has_edge(tw, t2) {
                graph.add_edge(t1, t2);
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryBuilder;

    /// Figure 1a / 2a: t1 reads initial, writes; t2 reads t1, writes. Serializable.
    fn chained_deposits() -> History {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.read(t1, "acct", TxnId::INITIAL);
        b.write(t1, "acct");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "acct", t1);
        b.write(t2, "acct");
        b.commit(t2);
        b.finish()
    }

    /// Figure 1b / 3a: both read the initial state. Causal but unserializable.
    fn racing_deposits() -> History {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.read(t1, "acct", TxnId::INITIAL);
        b.write(t1, "acct");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "acct", TxnId::INITIAL);
        b.write(t2, "acct");
        b.commit(t2);
        b.finish()
    }

    #[test]
    fn so_graph_has_initial_edges_and_session_edges() {
        let h = chained_deposits();
        let so = so_graph(&h);
        assert!(so.has_edge(TxnId::INITIAL, TxnId(1)));
        assert!(so.has_edge(TxnId::INITIAL, TxnId(2)));
        assert!(!so.has_edge(TxnId(1), TxnId(2)));
    }

    #[test]
    fn hb_contains_wr_composition() {
        let h = chained_deposits();
        let hb = hb_graph(&h);
        assert!(hb.has_edge(TxnId::INITIAL, TxnId(2)));
        assert!(hb.has_edge(TxnId(1), TxnId(2)));
        assert!(!hb.has_edge(TxnId(2), TxnId(1)));
    }

    #[test]
    fn causal_arbitration_of_racing_deposits_orders_writers_before_initial_readers() {
        let h = racing_deposits();
        let ww = ww_causal_graph(&h);
        // t1 writes acct and hb(t1, t1)… no; the relevant instances:
        // t3 := t1 reads acct from t0 while t2 also writes acct and hb(t2, t1)
        // does not hold, so ww_causal should be empty here.
        assert!(ww.edge_list().is_empty());

        // In the chained history, t2 reads from t1 while t0 also writes acct
        // and hb(t0, t2) holds, so ww_causal(t0, t1).
        let chained = chained_deposits();
        let ww = ww_causal_graph(&chained);
        assert!(ww.has_edge(TxnId::INITIAL, TxnId(1)));
    }

    #[test]
    fn rc_arbitration_requires_two_reads_in_one_transaction() {
        // t3 reads x (from t1) at position i and y (from t2)… build a history
        // where a transaction reads two keys from different writers.
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(s1);
        b.write(t2, "x");
        b.write(t2, "y");
        b.commit(t2);
        let t3 = b.begin(s2);
        b.read(t3, "x", t1); // β: reads from t1
        b.read(t3, "y", t2); // α: reads y from t2; t1 writes x but not y
        b.commit(t3);
        let h = b.finish();
        let ww = ww_rc_graph(&h);
        // t1 does not write y, so no ww_rc edge from t1 to t2 via α on y.
        assert!(!ww.has_edge(TxnId(1), TxnId(2)));

        // Now make α a read of x instead: t3 reads x from t1 then x again from t2.
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(s1);
        b.write(t2, "x");
        b.commit(t2);
        let t3 = b.begin(s2);
        b.read(t3, "x", t1);
        b.read(t3, "x", t2);
        b.commit(t3);
        let h = b.finish();
        let ww = ww_rc_graph(&h);
        assert!(ww.has_edge(TxnId(1), TxnId(2)));
        assert!(!ww.has_edge(TxnId(2), TxnId(1)));
    }

    #[test]
    fn anti_dependencies_of_racing_deposits_form_a_cycle() {
        // Figure 5: including rw makes pco cyclic for the racing deposits.
        let h = racing_deposits();
        let mut pco = so_graph(&h);
        pco.union_with(&wr_graph(&h));
        let pco_closed = pco.transitive_closure();
        let rw = rw_graph(&h, &pco_closed);
        assert!(rw.has_edge(TxnId(1), TxnId(2)));
        assert!(rw.has_edge(TxnId(2), TxnId(1)));
        let mut combined = pco_closed.clone();
        combined.union_with(&rw);
        assert!(combined.has_cycle());
    }

    #[test]
    fn ww_for_commit_order_matches_equation_one() {
        let h = chained_deposits();
        // commit order t0 < t1 < t2.
        let positions = vec![0, 1, 2];
        let ww = ww_graph_for_commit_order(&h, &positions);
        // t0 and t1 both write acct; t2 reads acct from t1; co(t0, t2) holds ⇒ ww(t0, t1).
        assert!(ww.has_edge(TxnId::INITIAL, TxnId(1)));
        assert!(!ww.has_edge(TxnId(1), TxnId::INITIAL));
    }
}
