//! Graphviz DOT rendering of histories, in the style of the paper's figures.

use std::fmt::Write as _;

use crate::graph::DiGraph;
use crate::history::History;
use crate::ids::TxnId;

/// Additional edge sets to overlay on a history graph (e.g. the `rw` edges of
/// a predicted execution, or the `pco` cycle that shows unserializability).
#[derive(Debug, Default, Clone)]
pub struct Overlay {
    /// Extra labelled edges, drawn dashed.
    pub edges: Vec<(TxnId, TxnId, String)>,
    /// Caption printed under the graph.
    pub caption: Option<String>,
}

/// Renders `history` as a Graphviz DOT digraph. Each transaction becomes a
/// record-shaped node listing its events; `so` edges are solid, `wr` edges are
/// labelled with their key, and overlay edges are dashed.
#[must_use]
pub fn render(history: &History, overlay: &Overlay) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph history {{");
    let _ = writeln!(out, "  node [shape=record, fontname=\"monospace\"];");

    for txn in history.transactions() {
        let mut label = format!("{}", txn.id);
        if txn.id.is_initial() {
            label.push_str("\\n(initial state)");
        } else if let Some(session) = txn.session {
            let _ = write!(label, " [{}]", history.session_name(session));
        }
        for event in &txn.events {
            let key = history.key_name(event.key);
            match event.kind {
                crate::EventKind::Read { from } => {
                    let _ = write!(label, "\\nread({key}) ⟵ {from}");
                }
                crate::EventKind::Write => {
                    let _ = write!(label, "\\nwrite({key})");
                }
            }
        }
        let _ = writeln!(out, "  {} [label=\"{}\"];", node_name(txn.id), label);
    }

    // Session order edges: t0 to the first transaction of each session, then
    // consecutive transactions within each session.
    for session in history.sessions() {
        let txns = history.session_transactions(session);
        if let Some(&first) = txns.first() {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"so\"];",
                node_name(TxnId::INITIAL),
                node_name(first)
            );
        }
        for pair in txns.windows(2) {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"so\"];",
                node_name(pair[0]),
                node_name(pair[1])
            );
        }
    }

    // Write-read edges.
    for (writer, reader, key, _pos) in history.wr_tuples() {
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"wr[{}]\", color=blue];",
            node_name(writer),
            node_name(reader),
            history.key_name(key)
        );
    }

    for (from, to, label) in &overlay.edges {
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\", style=dashed, color=red];",
            node_name(*from),
            node_name(*to),
            label
        );
    }

    if let Some(caption) = &overlay.caption {
        let _ = writeln!(out, "  label=\"{caption}\";");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Builds an [`Overlay`] from a graph of extra edges, all sharing one label.
#[must_use]
pub fn overlay_from_graph(graph: &DiGraph, label: &str) -> Overlay {
    Overlay {
        edges: graph
            .edge_list()
            .into_iter()
            .map(|(a, b)| (a, b, label.to_string()))
            .collect(),
        caption: None,
    }
}

fn node_name(txn: TxnId) -> String {
    format!("txn{}", txn.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryBuilder;

    #[test]
    fn render_contains_transactions_events_and_edges() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("client-1");
        let t1 = b.begin(s1);
        b.read(t1, "acct", TxnId::INITIAL);
        b.write(t1, "acct");
        b.commit(t1);
        let h = b.finish();
        let dot = render(&h, &Overlay::default());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("read(acct)"));
        assert!(dot.contains("write(acct)"));
        assert!(dot.contains("wr[acct]"));
        assert!(dot.contains("label=\"so\""));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn overlay_edges_are_dashed_and_labelled() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "x", TxnId::INITIAL);
        b.write(t2, "x");
        b.commit(t2);
        let h = b.finish();
        let mut rw = DiGraph::new(h.len());
        rw.add_edge(TxnId(2), TxnId(1));
        let mut overlay = overlay_from_graph(&rw, "rw");
        overlay.caption = Some("predicted execution".to_string());
        let dot = render(&h, &overlay);
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("rw"));
        assert!(dot.contains("predicted execution"));
    }
}
