//! The pluggable isolation-level seam.
//!
//! Every layer of the pipeline that cares about a weak isolation level —
//! the store's legal-writer chooser, validation's controlled replay, the
//! history-level conformance deciders, campaign/report identity — goes
//! through [`IsolationSemantics`]: one table entry per level bundling the
//! level's identity (name, parse aliases) with its history conformance
//! checker and chooser behavior. The SMT axiom emitters live in the
//! `isopredict` (core) crate's encoder, keyed by the same [`IsolationLevel`],
//! because they operate on encoder internals; together the two tables are the
//! only level-dispatch sites in the workspace.
//!
//! Adding a level is a one-module change: implement a conformance checker
//! (see [`crate::si`] for the newest example), add a [`SEMANTICS`] row here,
//! and add the matching axiom emitter row in the core encoder.

use serde::{Deserialize, Serialize};

use crate::history::History;
use crate::ids::TxnId;
use crate::{causal, readcommitted, si};

/// The weak isolation levels supported by the analysis (Section 2 of the
/// paper plus the snapshot-isolation extension the paper names as the natural
/// next level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IsolationLevel {
    /// Causal consistency.
    Causal,
    /// Read committed.
    ReadCommitted,
    /// Snapshot isolation (first-committer-wins write conflicts).
    Snapshot,
}

/// One row of the isolation seam: everything the store, validator and
/// campaign layers need to know about a level, minus the SMT axiom emitter
/// (which lives with the encoder in the core crate).
#[derive(Debug, Clone, Copy)]
pub struct IsolationSemantics {
    /// The level this row describes.
    pub level: IsolationLevel,
    /// Canonical display name (also accepted by the parser).
    pub name: &'static str,
    /// Additional spellings accepted by the parser.
    pub aliases: &'static [&'static str],
    /// The conformance decider: a commit order witnessing that the history is
    /// valid under this level, or `None` if it is not.
    pub conformance: fn(&History) -> Option<Vec<TxnId>>,
    /// Whether the level constrains *write–write* conflicts (first-committer
    /// wins). When true, the store's legal-writer chooser must account for
    /// the open transaction's declared write set, not just its reads.
    pub write_conflicts: bool,
}

impl IsolationSemantics {
    /// Whether `history` is valid under this level.
    #[must_use]
    pub fn is_conformant(&self, history: &History) -> bool {
        (self.conformance)(history).is_some()
    }

    /// A commit order witnessing conformance, or `None`.
    #[must_use]
    pub fn commit_order(&self, history: &History) -> Option<Vec<TxnId>> {
        (self.conformance)(history)
    }
}

/// The seam table: one row per supported level, in [`IsolationLevel::ALL`]
/// order.
pub const SEMANTICS: [IsolationSemantics; 3] = [
    IsolationSemantics {
        level: IsolationLevel::Causal,
        name: "causal",
        aliases: &["cc", "causal-consistency"],
        conformance: causal::causal_commit_order,
        write_conflicts: false,
    },
    IsolationSemantics {
        level: IsolationLevel::ReadCommitted,
        name: "read committed",
        aliases: &["rc", "read-committed"],
        conformance: readcommitted::rc_commit_order,
        write_conflicts: false,
    },
    IsolationSemantics {
        level: IsolationLevel::Snapshot,
        name: "snapshot isolation",
        aliases: &["si", "snapshot", "snapshot-isolation"],
        conformance: si::si_commit_order,
        write_conflicts: true,
    },
];

impl IsolationLevel {
    /// All supported levels, in the order campaigns and tables list them.
    pub const ALL: [IsolationLevel; 3] = [
        IsolationLevel::Causal,
        IsolationLevel::ReadCommitted,
        IsolationLevel::Snapshot,
    ];

    /// This level's row of the seam table.
    ///
    /// # Panics
    ///
    /// Panics if the level has no [`SEMANTICS`] row, which would be a bug:
    /// the table is required to cover every variant.
    #[must_use]
    pub fn semantics(self) -> &'static IsolationSemantics {
        SEMANTICS
            .iter()
            .find(|semantics| semantics.level == self)
            .expect("every isolation level has a semantics row")
    }

    /// Whether `history` is valid under this level.
    #[must_use]
    pub fn is_conformant(self, history: &History) -> bool {
        self.semantics().is_conformant(history)
    }

    /// A commit order witnessing that `history` is valid under this level,
    /// or `None` if it is not.
    #[must_use]
    pub fn commit_order(self, history: &History) -> Option<Vec<TxnId>> {
        self.semantics().commit_order(history)
    }
}

impl std::fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.semantics().name)
    }
}

/// Error returned when parsing an [`IsolationLevel`] from an unknown name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIsolationLevelError {
    attempted: String,
}

impl std::fmt::Display for ParseIsolationLevelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown isolation level `{}`; accepted:", self.attempted)?;
        for semantics in &SEMANTICS {
            let dashed = semantics.name.replace(' ', "-");
            write!(f, " {dashed}")?;
            for alias in semantics.aliases {
                if *alias != dashed {
                    write!(f, "|{alias}")?;
                }
            }
        }
        Ok(())
    }
}

impl std::error::Error for ParseIsolationLevelError {}

impl std::str::FromStr for IsolationLevel {
    type Err = ParseIsolationLevelError;

    /// Parses a level by canonical name or alias, case-insensitively; spaces,
    /// dashes and underscores are interchangeable (`rc`, `read-committed`,
    /// `read committed`, `si`, `snapshot`, … all parse).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized = s.trim().to_lowercase().replace(['-', '_'], " ");
        SEMANTICS
            .iter()
            .find(|semantics| {
                semantics.name == normalized
                    || semantics
                        .aliases
                        .iter()
                        .any(|alias| alias.replace('-', " ") == normalized)
            })
            .map(|semantics| semantics.level)
            .ok_or_else(|| ParseIsolationLevelError {
                attempted: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryBuilder;

    #[test]
    fn display_uses_the_seam_names() {
        assert_eq!(IsolationLevel::Causal.to_string(), "causal");
        assert_eq!(IsolationLevel::ReadCommitted.to_string(), "read committed");
        assert_eq!(IsolationLevel::Snapshot.to_string(), "snapshot isolation");
    }

    #[test]
    fn display_and_parse_round_trip() {
        for level in IsolationLevel::ALL {
            let rendered = level.to_string();
            assert_eq!(rendered.parse::<IsolationLevel>(), Ok(level), "{rendered}");
        }
    }

    #[test]
    fn aliases_parse_to_their_level() {
        for (spelling, expected) in [
            ("causal", IsolationLevel::Causal),
            ("CAUSAL", IsolationLevel::Causal),
            ("rc", IsolationLevel::ReadCommitted),
            ("read-committed", IsolationLevel::ReadCommitted),
            ("read_committed", IsolationLevel::ReadCommitted),
            ("si", IsolationLevel::Snapshot),
            ("snapshot", IsolationLevel::Snapshot),
            ("snapshot-isolation", IsolationLevel::Snapshot),
        ] {
            assert_eq!(
                spelling.parse::<IsolationLevel>(),
                Ok(expected),
                "{spelling}"
            );
        }
        let err = "serializable".parse::<IsolationLevel>().unwrap_err();
        assert!(err.to_string().contains("serializable"), "{err}");
        assert!(err.to_string().contains("snapshot"), "{err}");
    }

    #[test]
    fn every_level_has_a_semantics_row() {
        for level in IsolationLevel::ALL {
            let semantics = level.semantics();
            assert_eq!(semantics.level, level);
            assert!(!semantics.name.is_empty());
        }
        assert_eq!(SEMANTICS.len(), IsolationLevel::ALL.len());
    }

    #[test]
    fn conformance_dispatches_to_the_level_checkers() {
        // Racing deposits: causal and rc, but a lost update — not SI.
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.read(t1, "acct", TxnId::INITIAL);
        b.write(t1, "acct");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "acct", TxnId::INITIAL);
        b.write(t2, "acct");
        b.commit(t2);
        let racing = b.finish();
        assert!(IsolationLevel::Causal.is_conformant(&racing));
        assert!(IsolationLevel::ReadCommitted.is_conformant(&racing));
        assert!(!IsolationLevel::Snapshot.is_conformant(&racing));
        assert!(IsolationLevel::Causal.commit_order(&racing).is_some());
        assert!(IsolationLevel::Snapshot.commit_order(&racing).is_none());
    }

    #[test]
    fn only_snapshot_constrains_write_conflicts() {
        assert!(!IsolationLevel::Causal.semantics().write_conflicts);
        assert!(!IsolationLevel::ReadCommitted.semantics().write_conflicts);
        assert!(IsolationLevel::Snapshot.semantics().write_conflicts);
    }
}
