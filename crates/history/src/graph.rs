//! A small directed-graph toolkit over transaction identifiers.

use crate::ids::TxnId;

/// A directed graph whose nodes are the transactions `0..n` of a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    n: usize,
    /// Adjacency matrix, row-major. `edges[a * n + b]` means `a → b`.
    edges: Vec<bool>,
}

impl DiGraph {
    /// Creates an edgeless graph over `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        DiGraph {
            n,
            edges: vec![false; n * n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has zero nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds the edge `from → to`. Self-loops are recorded as given.
    pub fn add_edge(&mut self, from: TxnId, to: TxnId) {
        self.edges[from.index() * self.n + to.index()] = true;
    }

    /// Whether the edge `from → to` is present.
    #[must_use]
    pub fn has_edge(&self, from: TxnId, to: TxnId) -> bool {
        self.edges[from.index() * self.n + to.index()]
    }

    /// All edges as `(from, to)` pairs.
    #[must_use]
    pub fn edge_list(&self) -> Vec<(TxnId, TxnId)> {
        let mut edges = Vec::new();
        for a in 0..self.n {
            for b in 0..self.n {
                if self.edges[a * self.n + b] {
                    edges.push((TxnId(a as u32), TxnId(b as u32)));
                }
            }
        }
        edges
    }

    /// Merges all edges of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the graphs have different node counts.
    pub fn union_with(&mut self, other: &DiGraph) {
        assert_eq!(self.n, other.n, "graphs must have the same node count");
        for (slot, &o) in self.edges.iter_mut().zip(other.edges.iter()) {
            *slot = *slot || o;
        }
    }

    /// Computes the transitive closure (Floyd–Warshall style; the graphs hold
    /// at most a few dozen transactions).
    #[must_use]
    pub fn transitive_closure(&self) -> DiGraph {
        let mut closure = self.clone();
        for k in 0..self.n {
            for i in 0..self.n {
                if !closure.edges[i * self.n + k] {
                    continue;
                }
                for j in 0..self.n {
                    if closure.edges[k * self.n + j] {
                        closure.edges[i * self.n + j] = true;
                    }
                }
            }
        }
        closure
    }

    /// Whether the graph contains a (directed) cycle. Self-loops count.
    #[must_use]
    pub fn has_cycle(&self) -> bool {
        let closure = self.transitive_closure();
        (0..self.n).any(|i| closure.edges[i * self.n + i])
    }

    /// A topological order of the nodes, or `None` if the graph is cyclic.
    #[must_use]
    pub fn topological_order(&self) -> Option<Vec<TxnId>> {
        let mut indegree = vec![0usize; self.n];
        for a in 0..self.n {
            for (b, degree) in indegree.iter_mut().enumerate() {
                if self.edges[a * self.n + b] {
                    *degree += 1;
                }
            }
        }
        let mut ready: Vec<usize> = (0..self.n).filter(|&i| indegree[i] == 0).collect();
        // Prefer smaller ids first for deterministic output.
        ready.sort_unstable_by(|a, b| b.cmp(a));
        let mut order = Vec::with_capacity(self.n);
        while let Some(node) = ready.pop() {
            order.push(TxnId(node as u32));
            for (b, degree) in indegree.iter_mut().enumerate() {
                if self.edges[node * self.n + b] {
                    *degree -= 1;
                    if *degree == 0 {
                        ready.push(b);
                        ready.sort_unstable_by(|a, b| b.cmp(a));
                    }
                }
            }
        }
        if order.len() == self.n {
            Some(order)
        } else {
            None
        }
    }

    /// One cycle of the graph as a list of nodes (each node's successor in the
    /// list is reachable by one edge, and the last node has an edge back to
    /// the first), or `None` if the graph is acyclic.
    #[must_use]
    pub fn find_cycle(&self) -> Option<Vec<TxnId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }

        fn visit(
            graph: &DiGraph,
            node: usize,
            color: &mut [Color],
            path: &mut Vec<usize>,
        ) -> Option<Vec<TxnId>> {
            color[node] = Color::Gray;
            path.push(node);
            for child in 0..graph.n {
                if !graph.edges[node * graph.n + child] {
                    continue;
                }
                match color[child] {
                    Color::Gray => {
                        // The cycle is the suffix of `path` starting at `child`.
                        let start = path
                            .iter()
                            .position(|&p| p == child)
                            .expect("gray node is on the DFS path");
                        return Some(path[start..].iter().map(|&p| TxnId(p as u32)).collect());
                    }
                    Color::White => {
                        if let Some(cycle) = visit(graph, child, color, path) {
                            return Some(cycle);
                        }
                    }
                    Color::Black => {}
                }
            }
            path.pop();
            color[node] = Color::Black;
            None
        }

        let mut color = vec![Color::White; self.n];
        let mut path = Vec::new();
        for start in 0..self.n {
            if color[start] == Color::White {
                if let Some(cycle) = visit(self, start, &mut color, &mut path) {
                    return Some(cycle);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TxnId {
        TxnId(i)
    }

    #[test]
    fn closure_and_cycles() {
        let mut g = DiGraph::new(4);
        g.add_edge(t(0), t(1));
        g.add_edge(t(1), t(2));
        let closure = g.transitive_closure();
        assert!(closure.has_edge(t(0), t(2)));
        assert!(!closure.has_edge(t(2), t(0)));
        assert!(!g.has_cycle());
        g.add_edge(t(2), t(0));
        assert!(g.has_cycle());
    }

    #[test]
    fn topological_order_respects_edges() {
        let mut g = DiGraph::new(4);
        g.add_edge(t(0), t(2));
        g.add_edge(t(2), t(1));
        g.add_edge(t(1), t(3));
        let order = g.topological_order().unwrap();
        let pos = |x: TxnId| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(t(0)) < pos(t(2)));
        assert!(pos(t(2)) < pos(t(1)));
        assert!(pos(t(1)) < pos(t(3)));

        g.add_edge(t(3), t(0));
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn find_cycle_returns_a_real_cycle() {
        let mut g = DiGraph::new(5);
        g.add_edge(t(0), t(1));
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(3));
        g.add_edge(t(3), t(1));
        let cycle = g.find_cycle().expect("graph has a cycle");
        assert!(cycle.len() >= 2);
        // Every consecutive pair (and the wrap-around) must be an edge.
        for i in 0..cycle.len() {
            let from = cycle[i];
            let to = cycle[(i + 1) % cycle.len()];
            assert!(g.has_edge(from, to), "missing edge {from} -> {to} in cycle");
        }
    }

    #[test]
    fn acyclic_graph_has_no_cycle_to_find() {
        let mut g = DiGraph::new(3);
        g.add_edge(t(0), t(1));
        g.add_edge(t(0), t(2));
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn union_merges_edges() {
        let mut g1 = DiGraph::new(3);
        g1.add_edge(t(0), t(1));
        let mut g2 = DiGraph::new(3);
        g2.add_edge(t(1), t(2));
        g1.union_with(&g2);
        assert!(g1.has_edge(t(0), t(1)));
        assert!(g1.has_edge(t(1), t(2)));
        assert_eq!(g1.edge_list().len(), 2);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = DiGraph::new(2);
        g.add_edge(t(1), t(1));
        assert!(g.has_cycle());
        assert!(g.topological_order().is_none());
    }
}
