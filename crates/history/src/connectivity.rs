//! Key-connectivity queries: decomposing a history into communication
//! components.
//!
//! Two committed transactions *communicate* if they access (read or write) a
//! common key, or run in the same session (session order relates them). The
//! transitive closure of communication partitions a history's committed
//! transactions into **components** with a crucial property: every relation
//! the predictive analysis constrains — `so`, `wr`, the arbitration orders
//! and anti-dependencies, and therefore every `pco`/commit-order cycle — only
//! ever links transactions of the *same* component. Key-disjoint components
//! can thus be analyzed independently and their verdicts merged losslessly,
//! which is what `isopredict-orchestrator`'s history sharding builds on.
//!
//! The initial-state transaction `t0` writes every key and is `so`-before
//! everything, so it is excluded from the union-find (it would otherwise glue
//! all components together) and implicitly belongs to every component.

use crate::history::History;
use crate::ids::{KeyId, SessionId, TxnId};

/// A disjoint-set forest over dense `u32` indices (path halving + union by
/// rank).
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..u32::try_from(n).expect("index fits u32")).collect(),
            rank: vec![0; n],
        }
    }

    /// Finds the representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            // Path halving: point every other node at its grandparent.
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (small, large) = if self.rank[ra as usize] < self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = large;
        if self.rank[small as usize] == self.rank[large as usize] {
            self.rank[large as usize] += 1;
        }
        true
    }
}

/// The key/session-connectivity decomposition of a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyComponents {
    /// The components, each a sorted list of committed transaction ids.
    /// Components are ordered by their smallest member, so the decomposition
    /// is deterministic for a given history.
    components: Vec<Vec<TxnId>>,
    /// Total committed transactions across all components.
    total: usize,
}

impl KeyComponents {
    /// Computes the communication components of `history`.
    ///
    /// Transactions are merged when they access a common key or belong to the
    /// same session; `t0` and emptied transactions (e.g. produced by
    /// [`History::restrict`]) are skipped.
    #[must_use]
    pub fn of(history: &History) -> KeyComponents {
        let len = history.len();
        let mut uf = UnionFind::new(len);

        // Last committed transaction seen accessing each key.
        let mut last_on_key: Vec<Option<u32>> = vec![None; history.num_keys()];
        // Last committed transaction seen in each session.
        let mut last_in_session: Vec<Option<u32>> = vec![None; history.num_sessions()];

        let mut total = 0usize;
        for txn in history.committed_transactions() {
            if txn.events.is_empty() && txn.session.is_none() {
                continue; // dropped by a restriction
            }
            total += 1;
            let index = txn.id.0;
            for event in &txn.events {
                let slot = &mut last_on_key[event.key.index()];
                if let Some(previous) = *slot {
                    uf.union(previous, index);
                }
                *slot = Some(index);
            }
            if let Some(session) = txn.session {
                let slot = &mut last_in_session[session.index()];
                if let Some(previous) = *slot {
                    uf.union(previous, index);
                }
                *slot = Some(index);
            }
        }

        // Group by representative, keyed by the smallest member for a
        // deterministic component order.
        let mut by_root: std::collections::HashMap<u32, Vec<TxnId>> =
            std::collections::HashMap::new();
        for txn in history.committed_transactions() {
            if txn.events.is_empty() && txn.session.is_none() {
                continue;
            }
            by_root.entry(uf.find(txn.id.0)).or_default().push(txn.id);
        }
        let mut components: Vec<Vec<TxnId>> = by_root.into_values().collect();
        for component in &mut components {
            component.sort_unstable();
        }
        components.sort_unstable_by_key(|component| component[0]);

        KeyComponents { components, total }
    }

    /// The components, ordered by smallest transaction id; each is sorted.
    #[must_use]
    pub fn components(&self) -> &[Vec<TxnId>] {
        &self.components
    }

    /// Number of components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the history has no committed transactions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Size of the largest component (0 for an empty history).
    #[must_use]
    pub fn largest(&self) -> usize {
        self.components.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Fraction of committed transactions in the largest component, in
    /// `[0, 1]`; `1.0` for an empty or single-component history.
    #[must_use]
    pub fn dominant_fraction(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.largest() as f64 / self.total as f64
        }
    }

    /// The keys accessed by component `index`.
    #[must_use]
    pub fn keys_of(&self, history: &History, index: usize) -> Vec<KeyId> {
        let mut keys: Vec<KeyId> = self.components[index]
            .iter()
            .flat_map(|&txn| history.txn(txn).events.iter().map(|event| event.key))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// The sessions whose transactions belong to component `index`.
    #[must_use]
    pub fn sessions_of(&self, history: &History, index: usize) -> Vec<SessionId> {
        let mut sessions: Vec<SessionId> = self.components[index]
            .iter()
            .filter_map(|&txn| history.txn(txn).session)
            .collect();
        sessions.sort_unstable();
        sessions.dedup();
        sessions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryBuilder;

    /// Two sessions on key "x", two sessions on key "y": two components.
    fn two_component_history() -> History {
        let mut b = HistoryBuilder::new();
        let mut make = |key: &str| {
            let s1 = b.session(format!("{key}-writer"));
            let s2 = b.session(format!("{key}-reader"));
            let t1 = b.begin(s1);
            b.read(t1, key, TxnId::INITIAL);
            b.write(t1, key);
            b.commit(t1);
            let t2 = b.begin(s2);
            b.read(t2, key, t1);
            b.write(t2, key);
            b.commit(t2);
        };
        make("x");
        make("y");
        b.finish()
    }

    #[test]
    fn union_find_merges_and_finds() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(3));
        assert!(uf.union(1, 4));
        assert_eq!(uf.find(0), uf.find(3));
        assert_ne!(uf.find(2), uf.find(0));
    }

    #[test]
    fn key_disjoint_sessions_split_into_components() {
        let history = two_component_history();
        let components = KeyComponents::of(&history);
        assert_eq!(components.len(), 2);
        assert_eq!(
            components.components()[0],
            vec![TxnId(1), TxnId(2)],
            "components are ordered by smallest member"
        );
        assert_eq!(components.components()[1], vec![TxnId(3), TxnId(4)]);
        assert!((components.dominant_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(components.largest(), 2);
        assert_eq!(
            components.keys_of(&history, 0),
            vec![history.key_id("x").unwrap()]
        );
        assert_eq!(components.sessions_of(&history, 0).len(), 2);
    }

    #[test]
    fn shared_keys_merge_components() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.write(t1, "x");
        b.write(t1, "y");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "y", t1);
        b.commit(t2);
        let history = b.finish();
        let components = KeyComponents::of(&history);
        assert_eq!(components.len(), 1);
        assert!((components.dominant_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sessions_merge_key_disjoint_transactions() {
        // One session touching x then y: session order glues the component.
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let t1 = b.begin(s1);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(s1);
        b.write(t2, "y");
        b.commit(t2);
        let history = b.finish();
        assert_eq!(KeyComponents::of(&history).len(), 1);
    }

    #[test]
    fn restriction_leftovers_are_ignored() {
        let history = two_component_history();
        let restricted = history.restrict(&[TxnId(1), TxnId(2)], false);
        let components = KeyComponents::of(&restricted);
        assert_eq!(components.len(), 1);
        assert_eq!(components.components()[0], vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn empty_history_has_no_components() {
        let history = HistoryBuilder::new().finish();
        let components = KeyComponents::of(&history);
        assert!(components.is_empty());
        assert_eq!(components.len(), 0);
        assert_eq!(components.largest(), 0);
        assert!((components.dominant_fraction() - 1.0).abs() < 1e-9);
    }
}
