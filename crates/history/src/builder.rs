//! Programmatic construction of histories.

use std::collections::HashMap;

use crate::event::{Event, EventKind};
use crate::history::{History, Transaction};
use crate::ids::{KeyId, SessionId, TxnId};

/// Builds a [`History`] incrementally, assigning session-wide event positions
/// and applying the paper's normalizations:
///
/// * a read that reads from a write of its *own* transaction is not an event;
/// * only the *last* write of a transaction to each key is an event;
/// * aborted transactions are simply never committed and therefore never
///   appear in the finished history.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Default, Clone)]
pub struct HistoryBuilder {
    key_names: Vec<String>,
    key_index: HashMap<String, KeyId>,
    session_names: Vec<String>,
    /// Next event position per session.
    next_pos: Vec<usize>,
    /// Committed transactions per session (in commit order).
    sessions: Vec<Vec<TxnId>>,
    /// Finished transactions, indexed by id (0 is reserved for t0).
    committed: Vec<Transaction>,
    /// Transactions currently being built.
    open: HashMap<TxnId, OpenTxn>,
    next_txn: u32,
}

#[derive(Debug, Clone)]
struct OpenTxn {
    session: SessionId,
    events: Vec<Event>,
}

impl HistoryBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        HistoryBuilder {
            next_txn: 1, // 0 is t0
            ..HistoryBuilder::default()
        }
    }

    /// Interns a key name.
    pub fn key(&mut self, name: &str) -> KeyId {
        if let Some(&id) = self.key_index.get(name) {
            return id;
        }
        let id = KeyId(self.key_names.len() as u32);
        self.key_names.push(name.to_string());
        self.key_index.insert(name.to_string(), id);
        id
    }

    /// The position the next event recorded in `session` will receive.
    ///
    /// # Panics
    ///
    /// Panics if `session` was not created by this builder.
    #[must_use]
    pub fn next_position(&self, session: SessionId) -> usize {
        self.next_pos[session.index()]
    }

    /// Creates a new session.
    pub fn session(&mut self, name: impl Into<String>) -> SessionId {
        let id = SessionId(self.session_names.len() as u32);
        self.session_names.push(name.into());
        self.next_pos.push(0);
        self.sessions.push(Vec::new());
        id
    }

    /// Starts a new transaction in `session`.
    ///
    /// # Panics
    ///
    /// Panics if `session` was not created by this builder.
    pub fn begin(&mut self, session: SessionId) -> TxnId {
        assert!(
            session.index() < self.session_names.len(),
            "unknown session {session}"
        );
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        self.open.insert(
            id,
            OpenTxn {
                session,
                events: Vec::new(),
            },
        );
        id
    }

    /// Records a read of `key` by `txn`, reading from `from`.
    ///
    /// Reads from the transaction itself are dropped (they are not events in
    /// the formal model).
    ///
    /// # Panics
    ///
    /// Panics if `txn` is not an open transaction.
    pub fn read(&mut self, txn: TxnId, key: &str, from: TxnId) {
        let key = self.key(key);
        let open = self.open.get_mut(&txn).expect("transaction is open");
        if from == txn {
            return;
        }
        let pos = self.next_pos[open.session.index()];
        self.next_pos[open.session.index()] += 1;
        open.events.push(Event {
            key,
            pos,
            kind: EventKind::Read { from },
        });
    }

    /// Records a write of `key` by `txn`. An earlier write of the same key by
    /// the same transaction is shadowed (removed).
    ///
    /// # Panics
    ///
    /// Panics if `txn` is not an open transaction.
    pub fn write(&mut self, txn: TxnId, key: &str) {
        let key = self.key(key);
        let open = self.open.get_mut(&txn).expect("transaction is open");
        // Shadow any earlier write to the same key.
        open.events.retain(|e| !(e.is_write() && e.key == key));
        let pos = self.next_pos[open.session.index()];
        self.next_pos[open.session.index()] += 1;
        open.events.push(Event {
            key,
            pos,
            kind: EventKind::Write,
        });
    }

    /// Commits `txn`, making it part of the history.
    ///
    /// # Panics
    ///
    /// Panics if `txn` is not an open transaction.
    pub fn commit(&mut self, txn: TxnId) {
        let open = self.open.remove(&txn).expect("transaction is open");
        self.sessions[open.session.index()].push(txn);
        self.committed.push(Transaction {
            id: txn,
            session: Some(open.session),
            events: open.events,
        });
    }

    /// Aborts `txn`, discarding its events.
    ///
    /// # Panics
    ///
    /// Panics if `txn` is not an open transaction.
    pub fn abort(&mut self, txn: TxnId) {
        self.open.remove(&txn).expect("transaction is open");
    }

    /// Finishes the history. Open transactions are treated as aborted.
    ///
    /// Transaction identifiers are compacted so that committed transactions
    /// are numbered consecutively starting at 1 (with reads retargeted
    /// accordingly); reads from aborted transactions are retargeted to `t0`.
    #[must_use]
    pub fn finish(mut self) -> History {
        self.open.clear();

        // Sort committed transactions by their original id to obtain a stable
        // numbering, then compact ids.
        self.committed.sort_by_key(|t| t.id);
        let mut remap: HashMap<TxnId, TxnId> = HashMap::new();
        remap.insert(TxnId::INITIAL, TxnId::INITIAL);
        for (index, txn) in self.committed.iter().enumerate() {
            remap.insert(txn.id, TxnId(index as u32 + 1));
        }

        let initial = Transaction {
            id: TxnId::INITIAL,
            session: None,
            events: Vec::new(),
        };
        let mut transactions = vec![initial];
        for txn in &self.committed {
            let events = txn
                .events
                .iter()
                .map(|e| match e.kind {
                    EventKind::Read { from } => Event {
                        key: e.key,
                        pos: e.pos,
                        kind: EventKind::Read {
                            from: remap.get(&from).copied().unwrap_or(TxnId::INITIAL),
                        },
                    },
                    EventKind::Write => *e,
                })
                .collect();
            transactions.push(Transaction {
                id: remap[&txn.id],
                session: txn.session,
                events,
            });
        }

        let sessions = self
            .sessions
            .iter()
            .map(|txns| txns.iter().map(|t| remap[t]).collect())
            .collect();

        History {
            key_names: self.key_names,
            key_index: self.key_index,
            transactions,
            sessions,
            session_names: self.session_names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_normalizes_own_reads_and_shadowed_writes() {
        let mut b = HistoryBuilder::new();
        let s = b.session("s");
        let t = b.begin(s);
        b.write(t, "x");
        b.read(t, "x", t); // read-own-write: dropped
        b.write(t, "x"); // shadows the first write
        b.write(t, "y");
        b.commit(t);
        let h = b.finish();
        let txn = h.txn(TxnId(1));
        assert_eq!(txn.events.len(), 2);
        assert!(txn.events.iter().all(|e| e.is_write()));
        let x = h.key_id("x").unwrap();
        let y = h.key_id("y").unwrap();
        // The shadowing write keeps its own (later) position.
        assert!(txn.write_position(x).unwrap() > 0);
        assert!(txn.write_position(y).is_some());
    }

    #[test]
    fn aborted_transactions_are_excluded_and_ids_compact() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "x", t1);
        b.abort(t2);
        let t3 = b.begin(s2);
        b.read(t3, "x", t1);
        b.commit(t3);
        let h = b.finish();
        assert_eq!(h.len(), 3); // t0, t1, t3 (renumbered to t2)
        assert_eq!(h.session_transactions(SessionId(1)), &[TxnId(2)]);
        assert!(h.wr(TxnId(1), TxnId(2)));
    }

    #[test]
    fn reads_from_aborted_transactions_fall_back_to_initial_state() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let ta = b.begin(s1);
        b.write(ta, "x");
        let tb = b.begin(s2);
        b.read(tb, "x", ta);
        b.commit(tb);
        b.abort(ta);
        let h = b.finish();
        let reader = h.txn(TxnId(1));
        assert_eq!(reader.events[0].read_from(), Some(TxnId::INITIAL));
    }

    #[test]
    fn positions_are_session_wide() {
        let mut b = HistoryBuilder::new();
        let s = b.session("s");
        let t1 = b.begin(s);
        b.read(t1, "x", TxnId::INITIAL);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(s);
        b.read(t2, "x", t1);
        b.commit(t2);
        let h = b.finish();
        assert_eq!(h.txn(TxnId(1)).events[0].pos, 0);
        assert_eq!(h.txn(TxnId(1)).events[1].pos, 1);
        assert_eq!(h.txn(TxnId(2)).events[0].pos, 2);
    }

    #[test]
    fn open_transactions_are_dropped_at_finish() {
        let mut b = HistoryBuilder::new();
        let s = b.session("s");
        let t1 = b.begin(s);
        b.write(t1, "x");
        // never committed
        let h = b.finish();
        assert!(h.is_empty());
    }
}
