//! Deciding read committed of a concrete history (Section 2.4).

use crate::graph::DiGraph;
use crate::history::History;
use crate::ids::TxnId;
use crate::relations::{hb_graph, ww_rc_graph};

/// The combined graph whose acyclicity characterizes read committed:
/// `hb ∪ ww_rc`.
#[must_use]
pub fn rc_graph(history: &History) -> DiGraph {
    let mut graph = hb_graph(history);
    graph.union_with(&ww_rc_graph(history));
    graph
}

/// Whether `history` satisfies read committed: `(hb ∪ ww_rc)+` is acyclic.
#[must_use]
pub fn is_read_committed(history: &History) -> bool {
    !rc_graph(history).has_cycle()
}

/// A commit order witnessing read committed, or `None` if the history is not
/// read committed.
#[must_use]
pub fn rc_commit_order(history: &History) -> Option<Vec<TxnId>> {
    rc_graph(history).topological_order()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal::is_causal;
    use crate::{HistoryBuilder, TxnId};

    #[test]
    fn causal_histories_are_read_committed() {
        // rc is strictly weaker than causal, so the deposit histories are rc.
        for second_reads_initial in [false, true] {
            let mut b = HistoryBuilder::new();
            let s1 = b.session("s1");
            let s2 = b.session("s2");
            let t1 = b.begin(s1);
            b.read(t1, "acct", TxnId::INITIAL);
            b.write(t1, "acct");
            b.commit(t1);
            let t2 = b.begin(s2);
            let from = if second_reads_initial {
                TxnId::INITIAL
            } else {
                t1
            };
            b.read(t2, "acct", from);
            b.write(t2, "acct");
            b.commit(t2);
            let h = b.finish();
            assert!(is_read_committed(&h));
        }
    }

    #[test]
    fn non_causal_history_can_still_be_read_committed() {
        // The Figure 7d-style history is not causal but is rc: rc only
        // constrains transactions observed by two reads of the same
        // transaction.
        let mut b = HistoryBuilder::new();
        let sa = b.session("A");
        let sb = b.session("B");
        let t1 = b.begin(sa);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(sb);
        b.read(t2, "x", t1);
        b.write(t2, "x");
        b.commit(t2);
        let t3 = b.begin(sa);
        b.read(t3, "x", TxnId::INITIAL);
        b.commit(t3);
        let h = b.finish();
        assert!(!is_causal(&h));
        assert!(is_read_committed(&h));
        assert!(rc_commit_order(&h).is_some());
    }

    #[test]
    fn reading_older_value_after_newer_value_violates_rc() {
        // A transaction reads x from t2 and then (later in program order)
        // reads x again from t1, where t1 hb-precedes t2: ww_rc(t2, t1) plus
        // hb(t1, t2) forms a cycle.
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(s1);
        b.read(t2, "x", t1);
        b.write(t2, "x");
        b.commit(t2);
        let t3 = b.begin(s2);
        b.read(t3, "x", t2);
        b.read(t3, "x", t1);
        b.commit(t3);
        let h = b.finish();
        assert!(!is_read_committed(&h));
        assert!(rc_commit_order(&h).is_none());
    }

    #[test]
    fn empty_history_is_read_committed() {
        let h = HistoryBuilder::new().finish();
        assert!(is_read_committed(&h));
    }
}
