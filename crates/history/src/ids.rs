//! Dense identifiers for transactions, sessions and keys.

use serde::{Deserialize, Serialize};

/// Identifier of a transaction within a [`crate::History`].
///
/// `TxnId::INITIAL` (index 0) is the special transaction `t0` that represents
/// the initial state of the data store: it writes the initial value of every
/// key and is `so`-ordered before every other transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TxnId(pub u32);

impl TxnId {
    /// The initial-state transaction `t0`.
    pub const INITIAL: TxnId = TxnId(0);

    /// The dense index of this transaction.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the initial-state transaction `t0`.
    #[must_use]
    pub fn is_initial(self) -> bool {
        self == TxnId::INITIAL
    }
}

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_initial() {
            write!(f, "t0")
        } else {
            write!(f, "t{}", self.0)
        }
    }
}

/// Identifier of a session (client connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SessionId(pub u32);

impl SessionId {
    /// The dense index of this session.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of an interned key within a [`crate::History`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KeyId(pub u32);

impl KeyId {
    /// The dense index of this key.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_transaction_is_id_zero() {
        assert!(TxnId::INITIAL.is_initial());
        assert!(!TxnId(3).is_initial());
        assert_eq!(TxnId::INITIAL.to_string(), "t0");
        assert_eq!(TxnId(3).to_string(), "t3");
    }

    #[test]
    fn display_forms() {
        assert_eq!(SessionId(2).to_string(), "s2");
        assert_eq!(KeyId(5).index(), 5);
    }
}
