//! Deciding snapshot isolation of a concrete history.
//!
//! Snapshot isolation gives every transaction `t` a start point `s(t)` and a
//! commit point `c(t)` with `s(t) < c(t)`: reads observe the latest version
//! committed before `s(t)`, and *first-committer-wins* forbids two
//! transactions that write a common key from overlapping (one must commit
//! before the other starts). Taking `co` to be the commit-point order, a
//! history `⟨T, so, wr⟩` is SI iff a total order `co ⊇ hb` exists such that,
//! writing `bs(t1, t2)` for "`t1` commits before `t2`'s snapshot":
//!
//! * `hb(t1, t2) ⇒ bs(t1, t2)` — session predecessors and observed writers
//!   (transitively) commit before the snapshot;
//! * `conflict(t1, t2) ∧ co(t1, t2) ⇒ bs(t1, t2)` — first-committer-wins:
//!   the earlier of two conflicting writers is entirely before the later
//!   one's snapshot;
//! * `co(t1, t) ∧ bs(t, t2) ⇒ bs(t1, t2)` — snapshots are `co`-prefixes;
//! * `wr_k(t1, t3) ∧ t2 writes k ∧ bs(t2, t3) ⇒ co(t2, t1)` — each read
//!   observes the *latest* `k`-version before its snapshot.
//!
//! `bs` is existentially quantified alongside `co` but only its least
//! fixpoint matters (the rules above bound it from below and the read axiom
//! consumes it negatively), so the encoding below is exact. Like
//! serializability — and unlike causal or read committed, whose arbitration
//! orders are hb-derived — the existential total order makes the decision
//! NP-hard (Biswas and Enea), so the check is propositional: one boolean per
//! ordered transaction pair for `co` (totality for free), one per ordered
//! pair for `bs`, and Horn clauses for the rules.
//!
//! In this axiomatization `bs ⊇ hb` makes SI strictly stronger than causal
//! consistency (a cheap polynomial pre-filter) and `bs ⊆ co` makes it
//! strictly weaker than serializability: lost updates are rejected while
//! write skew — unserializable but conflict-free — is admitted.

use isopredict_sat::{Lit, SolveOutcome, Solver, Var};

use crate::causal;
use crate::history::History;
use crate::ids::TxnId;
use crate::relations::hb_graph;

/// Whether `history` satisfies snapshot isolation.
#[must_use]
pub fn is_si(history: &History) -> bool {
    si_commit_order(history).is_some()
}

/// A commit order witnessing snapshot isolation, or `None` if the history is
/// not SI.
#[must_use]
pub fn si_commit_order(history: &History) -> Option<Vec<TxnId>> {
    let n = history.len();
    if n <= 1 {
        return Some(vec![TxnId::INITIAL]);
    }
    // SI implies causal here (`bs ⊇ hb` recovers every causal arbitration
    // instance), so a cyclic causal graph is a cheap definite "no".
    if causal::causal_graph(history).has_cycle() {
        return None;
    }

    let mut solver = Solver::new();
    // ord[a][b] for a < b: true means "a commits before b".
    let mut ord = vec![vec![None::<Var>; n]; n];
    for (a, row) in ord.iter_mut().enumerate() {
        for slot in row.iter_mut().skip(a + 1) {
            *slot = Some(solver.new_var());
        }
    }
    let co = |ord: &Vec<Vec<Option<Var>>>, a: usize, b: usize| -> Lit {
        if a < b {
            Lit::positive(ord[a][b].expect("pair variable exists"))
        } else {
            Lit::negative(ord[b][a].expect("pair variable exists"))
        }
    };
    // bs[a][b] for a ≠ b: true means "a commits before b's snapshot".
    let mut bs = vec![vec![None::<Var>; n]; n];
    for (a, row) in bs.iter_mut().enumerate() {
        for (b, slot) in row.iter_mut().enumerate() {
            if a != b {
                *slot = Some(solver.new_var());
            }
        }
    }
    let before_snapshot = |bs: &Vec<Vec<Option<Var>>>, a: usize, b: usize| -> Lit {
        Lit::positive(bs[a][b].expect("pair variable exists"))
    };

    // Transitivity of co: co(a,b) ∧ co(b,c) ⇒ co(a,c).
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            for c in 0..n {
                if c == a || c == b {
                    continue;
                }
                solver.add_clause([
                    co(&ord, a, b).negate(),
                    co(&ord, b, c).negate(),
                    co(&ord, a, c),
                ]);
            }
        }
    }

    // hb ⊆ co and hb ⊆ bs.
    let hb = hb_graph(history);
    for (from, to) in hb.edge_list() {
        solver.add_clause([co(&ord, from.index(), to.index())]);
        solver.add_clause([before_snapshot(&bs, from.index(), to.index())]);
    }

    // Writers per key, shared by the conflict and read-visibility clauses.
    let writers_by_key: Vec<Vec<TxnId>> = history.keys().map(|k| history.writers_of(k)).collect();

    // First-committer-wins: conflicting writers are never concurrent, so the
    // co-earlier one is before the later one's snapshot (both directions; the
    // single pair variable supplies totality). `t0` implicitly writes every
    // key's initial value and so conflicts with every writer — harmless,
    // since `t0` is hb-first anyway.
    for writers in &writers_by_key {
        for &t1 in writers {
            for &t2 in writers {
                if t1 == t2 {
                    continue;
                }
                solver.add_clause([
                    co(&ord, t1.index(), t2.index()).negate(),
                    before_snapshot(&bs, t1.index(), t2.index()),
                ]);
            }
        }
    }

    // Snapshots are co-prefixes: co(a, m) ∧ bs(m, b) ⇒ bs(a, b).
    for a in 0..n {
        for m in 0..n {
            if m == a {
                continue;
            }
            for b in 0..n {
                if b == a || b == m {
                    continue;
                }
                solver.add_clause([
                    co(&ord, a, m).negate(),
                    before_snapshot(&bs, m, b).negate(),
                    before_snapshot(&bs, a, b),
                ]);
            }
        }
    }

    // Reads see the latest version before the snapshot: for every read of `k`
    // in t3 from t1 and every other writer t2 of `k`, bs(t2,t3) ⇒ co(t2,t1).
    for (t1, t3, wr_key, _pos) in history.wr_tuples() {
        for &t2 in &writers_by_key[wr_key.index()] {
            if t2 == t1 || t2 == t3 {
                continue;
            }
            solver.add_clause([
                before_snapshot(&bs, t2.index(), t3.index()).negate(),
                co(&ord, t2.index(), t1.index()),
            ]);
        }
    }

    match solver.solve() {
        SolveOutcome::Sat => {
            let model = solver.model().expect("sat outcome has a model");
            let mut order: Vec<TxnId> = (0..n).map(|i| TxnId(i as u32)).collect();
            order.sort_by_key(|&t| {
                (0..n)
                    .filter(|&other| other != t.index())
                    .filter(|&other| model.lit_value(co(&ord, other, t.index())))
                    .count()
            });
            Some(order)
        }
        SolveOutcome::Unsat => None,
        SolveOutcome::Unknown => unreachable!("no conflict budget configured"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readcommitted::is_read_committed;
    use crate::serializability;
    use crate::{HistoryBuilder, TxnId};

    /// Figure 1b / 3a: both deposits read the initial balance.
    fn racing_deposits() -> History {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.read(t1, "acct", TxnId::INITIAL);
        b.write(t1, "acct");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "acct", TxnId::INITIAL);
        b.write(t2, "acct");
        b.commit(t2);
        b.finish()
    }

    /// Classic write skew: disjoint write sets, crossed stale reads.
    fn write_skew() -> History {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.read(t1, "x", TxnId::INITIAL);
        b.write(t1, "y");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "y", TxnId::INITIAL);
        b.write(t2, "x");
        b.commit(t2);
        b.finish()
    }

    #[test]
    fn lost_update_is_rejected_under_si_but_allowed_under_weaker_levels() {
        let racing = racing_deposits();
        assert!(!is_si(&racing), "lost update violates first-committer-wins");
        assert!(si_commit_order(&racing).is_none());
        // …while the weaker levels all admit it (the existing fixtures).
        assert!(causal::is_causal(&racing));
        assert!(is_read_committed(&racing));
    }

    #[test]
    fn write_skew_is_si_yet_unserializable() {
        let skew = write_skew();
        assert!(is_si(&skew), "write skew has no write–write conflict");
        assert_eq!(
            serializability::check(&skew),
            crate::SerializabilityResult::Unserializable
        );
    }

    #[test]
    fn serial_chains_are_si_with_an_hb_respecting_witness() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.read(t1, "acct", TxnId::INITIAL);
        b.write(t1, "acct");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "acct", t1);
        b.write(t2, "acct");
        b.commit(t2);
        let h = b.finish();
        let witness = si_commit_order(&h).expect("serial chains are SI");
        let pos = |t: TxnId| witness.iter().position(|&x| x == t).unwrap();
        assert!(pos(TxnId::INITIAL) < pos(TxnId(1)));
        assert!(pos(TxnId(1)) < pos(TxnId(2)));
    }

    #[test]
    fn non_causal_histories_are_not_si() {
        // The Figure 7d-style history (not causal, but read committed).
        let mut b = HistoryBuilder::new();
        let sa = b.session("A");
        let sb = b.session("B");
        let t1 = b.begin(sa);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(sb);
        b.read(t2, "x", t1);
        b.write(t2, "x");
        b.commit(t2);
        let t3 = b.begin(sa);
        b.read(t3, "x", TxnId::INITIAL);
        b.commit(t3);
        let h = b.finish();
        assert!(!causal::is_causal(&h));
        assert!(is_read_committed(&h));
        assert!(!is_si(&h));
    }

    #[test]
    fn stale_read_only_transactions_are_si() {
        // A read-only transaction may observe an old-but-consistent snapshot.
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.write(t1, "x");
        b.write(t1, "y");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "x", TxnId::INITIAL);
        b.read(t2, "y", TxnId::INITIAL);
        b.commit(t2);
        let h = b.finish();
        assert!(is_si(&h));
    }

    #[test]
    fn torn_snapshots_are_not_si() {
        // Reading y from the initial state but x from t1 tears t1's snapshot
        // (t1 wrote both): SI rejects it, read committed does not (the stale
        // read comes first in program order, so no rc arbitration applies).
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.write(t1, "x");
        b.write(t1, "y");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "y", TxnId::INITIAL);
        b.read(t2, "x", t1);
        b.commit(t2);
        let h = b.finish();
        assert!(is_read_committed(&h));
        assert!(!is_si(&h));
    }

    #[test]
    fn empty_history_is_si() {
        let h = HistoryBuilder::new().finish();
        assert!(is_si(&h));
        assert_eq!(si_commit_order(&h), Some(vec![TxnId::INITIAL]));
    }
}
