//! Golden-file pin of the canonical trace serialization.
//!
//! Content addresses in a trace corpus are hashes of
//! [`Trace::to_canonical_json`]; if the canonical byte layout drifts — a
//! field reorders, whitespace sneaks in, a rename happens — every address
//! ever handed out silently dangles. This test compares the canonical form of
//! a fixture trace byte-for-byte against `tests/golden/trace_canonical.json`.
//! If it fails because you *intentionally* changed the format, regenerate the
//! golden file and bump the recorder version so old corpus entries are keyed
//! away from new ones.

use isopredict_history::{OpTrace, SessionTrace, Trace, TraceMeta, TxnTrace};

/// A fixture exercising every corner of the format: metadata with and without
/// plan indices, reads from t0 and from peers, writes, aborted transactions,
/// and strings needing JSON escapes.
fn golden_trace() -> Trace {
    Trace {
        sessions: vec![
            SessionTrace {
                name: "client \"one\"".to_string(),
                transactions: vec![
                    TxnTrace {
                        id: 1,
                        committed: true,
                        ops: vec![
                            OpTrace::Read {
                                key: "acct/checking".to_string(),
                                from: 0,
                            },
                            OpTrace::Write {
                                key: "acct/checking".to_string(),
                            },
                        ],
                    },
                    TxnTrace {
                        id: 2,
                        committed: false,
                        ops: vec![OpTrace::Write {
                            key: "acct/savings".to_string(),
                        }],
                    },
                ],
            },
            SessionTrace {
                name: "client-two".to_string(),
                transactions: vec![TxnTrace {
                    id: 3,
                    committed: true,
                    ops: vec![
                        OpTrace::Read {
                            key: "acct/checking".to_string(),
                            from: 1,
                        },
                        OpTrace::Write {
                            key: "acct/savings".to_string(),
                        },
                    ],
                }],
            },
        ],
        meta: Some(TraceMeta {
            benchmark: "Smallbank".to_string(),
            seed: 42,
            sessions: 2,
            txns_per_session: 2,
            scale: 4,
            isolation: "serializable-record".to_string(),
            store_version: "0.1.0".to_string(),
            committed_plan_indices: Some(vec![vec![0], vec![1]]),
        }),
    }
}

#[test]
fn canonical_serialization_matches_the_golden_file() {
    let golden = include_str!("golden/trace_canonical.json");
    let canonical = golden_trace().to_canonical_json();
    assert_eq!(
        canonical,
        golden.trim_end(),
        "canonical trace bytes drifted from tests/golden/trace_canonical.json; \
         this breaks every existing content address — see the test's module docs"
    );
}

#[test]
fn golden_file_round_trips_losslessly() {
    let golden = include_str!("golden/trace_canonical.json");
    let parsed = Trace::from_json(golden.trim_end()).expect("golden file parses");
    assert_eq!(parsed, golden_trace());
    assert_eq!(parsed.to_canonical_json(), golden.trim_end());
    // And the trace is semantically valid: it converts to a history.
    let history = parsed
        .to_history()
        .expect("golden trace is a valid history");
    assert_eq!(history.len(), 3); // t0 + two committed transactions
}

#[test]
fn traces_without_metadata_stay_canonical() {
    let mut trace = golden_trace();
    trace.meta = None;
    let canonical = trace.to_canonical_json();
    assert!(canonical.ends_with("\"meta\":null}"));
    assert_eq!(Trace::from_json(&canonical).expect("parses"), trace);
}
