//! Flight recorder: clause provenance, progress heartbeats, and `unknown`
//! post-mortems.
//!
//! Every clause in the solver carries a **family** — an interned tag naming
//! the encoding layer that emitted it (e.g. `feasibility`,
//! `isolation:serializability`, `unserializability`). Three families are
//! reserved: `default` for untagged clauses, `learned` for clauses produced
//! by conflict analysis, and `theory` for conflict clauses reported by the
//! DPLL(T) theory. The solver attributes its work to families two ways:
//!
//! * a strict **partition**: each conflict is charged to the family of the
//!   clause that became falsified (or `theory`), so the per-family conflict
//!   counts sum exactly to [`crate::SolverStats::conflicts`];
//! * an **involvement** measure: during conflict analysis the solver ORs
//!   together the provenance bitmasks of every clause resolved on, so a
//!   conflict can "involve" several families at once. This is what backs
//!   statements like "78% of conflicts involve SI first-committer-wins
//!   clauses". Learnt clauses inherit the mask of their derivation, making
//!   the measure transitive through learned clauses.
//!
//! Progress is sampled every [`crate::SolverConfig::heartbeat_every`]
//! conflicts into a [`Heartbeat`]; the most recent samples are retained in a
//! bounded ring so that a budget-exhausted solve can be explained after the
//! fact via [`crate::Solver::postmortem`]. Heartbeats carry **counts only**
//! (no wall-clock readings): rates are computed by whoever installed the
//! heartbeat hook, keeping the solver itself deterministic.

use crate::stats::SolverStats;

/// Family id of clauses added without an explicit tag.
pub const FAMILY_DEFAULT: u16 = 0;
/// Family id of clauses learnt by conflict analysis.
pub const FAMILY_LEARNED: u16 = 1;
/// Family id of conflict clauses reported by the theory.
pub const FAMILY_THEORY: u16 = 2;

/// Number of heartbeats retained for a post-mortem.
pub(crate) const HEARTBEAT_RING_CAP: usize = 32;

/// The provenance bit for a family. Families beyond 31 share the last bit
/// (saturating), which keeps involvement sound (never under-reports a
/// family's own bucket) at the cost of merging the long tail.
#[must_use]
pub(crate) fn family_bit(family: u16) -> u32 {
    1u32 << (u32::from(family)).min(31)
}

/// A progress sample taken every `heartbeat_every` conflicts during search.
///
/// All fields are counters or instantaneous depths — deliberately no
/// wall-clock timestamps, so the solver stays deterministic and rates are
/// the hook installer's business.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heartbeat {
    /// 1-based index of this heartbeat within the current solve call;
    /// strictly increasing.
    pub seq: u64,
    /// Cumulative conflicts at sample time (strictly increasing).
    pub conflicts: u64,
    /// Cumulative decisions at sample time.
    pub decisions: u64,
    /// Cumulative propagations at sample time.
    pub propagations: u64,
    /// Cumulative restarts at sample time.
    pub restarts: u64,
    /// Assigned literals on the trail at sample time.
    pub trail_depth: u64,
    /// Live learnt clauses in the database at sample time.
    pub learnt_clauses: u64,
    /// Variables assigned at decision level 0 (root) at sample time.
    pub vars_assigned_at_root: u64,
    /// Total problem variables.
    pub total_vars: u64,
    /// Per-family conflict partition at sample time (index = family id;
    /// sums to [`Heartbeat::conflicts`]).
    pub conflicts_by_family: Vec<u64>,
}

/// Per-family attribution of solver work, indexed by family id. All five
/// vectors are parallel to [`FamilyAttribution::families`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FamilyAttribution {
    /// Interned family names; index is the family id.
    pub families: Vec<String>,
    /// Strict partition: conflicts charged to the falsified clause's family
    /// (or `theory`). Sums exactly to [`SolverStats::conflicts`].
    pub conflicts_by_family: Vec<u64>,
    /// Conflicts whose resolution involved at least one clause of the
    /// family (via provenance bitmasks; a conflict can involve several
    /// families, so this does **not** sum to the conflict total).
    pub conflicts_involving: Vec<u64>,
    /// Unit propagations forced by a clause of the family.
    pub propagations_by_family: Vec<u64>,
    /// Learnt clauses (including unit learnts) whose derivation involved
    /// the family.
    pub learned_ancestry: Vec<u64>,
    /// Problem clauses emitted under the family tag.
    pub clauses_by_family: Vec<u64>,
}

impl FamilyAttribution {
    /// Creates an attribution table with the three reserved families.
    #[must_use]
    pub(crate) fn with_reserved() -> Self {
        let mut attribution = FamilyAttribution::default();
        for name in ["default", "learned", "theory"] {
            attribution.push_family(name);
        }
        attribution
    }

    /// Appends a family, growing every counter vector in lockstep.
    pub(crate) fn push_family(&mut self, name: &str) -> u16 {
        let id = self.families.len() as u16;
        self.families.push(name.to_string());
        self.conflicts_by_family.push(0);
        self.conflicts_involving.push(0);
        self.propagations_by_family.push(0);
        self.learned_ancestry.push(0);
        self.clauses_by_family.push(0);
        id
    }

    /// Total conflicts across the partition (equals
    /// [`SolverStats::conflicts`] for a live solver).
    #[must_use]
    pub fn total_conflicts(&self) -> u64 {
        self.conflicts_by_family.iter().sum()
    }

    /// The axiom family most involved in conflicts: the non-reserved family
    /// with the highest [`FamilyAttribution::conflicts_involving`] count
    /// (reserved families are skipped because once learning starts almost
    /// every conflict trivially involves `learned`). Falls back to the
    /// busiest reserved family when no axiom family was ever tagged.
    /// Returns `(name, conflicts_involving)`.
    #[must_use]
    pub fn dominant_family(&self) -> Option<(&str, u64)> {
        let pick = |ids: &mut dyn Iterator<Item = usize>| -> Option<(usize, u64)> {
            ids.map(|i| (i, self.conflicts_involving[i]))
                .filter(|&(_, n)| n > 0)
                .max_by_key(|&(i, n)| (n, std::cmp::Reverse(i)))
        };
        let reserved = usize::from(FAMILY_THEORY) + 1;
        pick(&mut (reserved..self.families.len()))
            .or_else(|| pick(&mut (0..reserved.min(self.families.len()))))
            .map(|(i, n)| (self.families[i].as_str(), n))
    }
}

/// Why a solve ended without an answer: the final attribution plus the most
/// recent heartbeats, captured when [`crate::Solver::solve`] returns
/// [`crate::SolveOutcome::Unknown`] (retrievable any time via
/// [`crate::Solver::postmortem`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SolverPostmortem {
    /// The conflict budget in force, if any.
    pub budget: Option<u64>,
    /// Conflicts spent inside the most recent solve call.
    pub conflicts_in_call: u64,
    /// Cumulative solver statistics at capture time.
    pub stats: SolverStats,
    /// Per-family attribution at capture time.
    pub attribution: FamilyAttribution,
    /// The most recent heartbeats of the solve call, oldest first (a
    /// bounded ring; at most 32 are retained).
    pub heartbeats: Vec<Heartbeat>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_families_are_interned_in_order() {
        let attribution = FamilyAttribution::with_reserved();
        assert_eq!(attribution.families, ["default", "learned", "theory"]);
        assert_eq!(attribution.conflicts_by_family.len(), 3);
        assert_eq!(attribution.total_conflicts(), 0);
    }

    #[test]
    fn family_bit_saturates_at_31() {
        assert_eq!(family_bit(0), 1);
        assert_eq!(family_bit(5), 32);
        assert_eq!(family_bit(31), 1 << 31);
        assert_eq!(family_bit(40), 1 << 31);
    }

    #[test]
    fn dominant_family_prefers_axiom_families() {
        let mut attribution = FamilyAttribution::with_reserved();
        let iso = attribution.push_family("isolation:snapshot");
        let feas = attribution.push_family("feasibility");
        attribution.conflicts_involving[usize::from(FAMILY_LEARNED)] = 100;
        attribution.conflicts_involving[usize::from(iso)] = 42;
        attribution.conflicts_involving[usize::from(feas)] = 7;
        let (name, count) = attribution.dominant_family().expect("has conflicts");
        assert_eq!(name, "isolation:snapshot");
        assert_eq!(count, 42);
    }

    #[test]
    fn dominant_family_falls_back_to_reserved() {
        let mut attribution = FamilyAttribution::with_reserved();
        attribution.conflicts_involving[usize::from(FAMILY_THEORY)] = 9;
        let (name, count) = attribution.dominant_family().expect("has conflicts");
        assert_eq!(name, "theory");
        assert_eq!(count, 9);
        assert_eq!(FamilyAttribution::with_reserved().dominant_family(), None);
    }
}
