//! Partial assignments over propositional variables.

use crate::literal::{Lit, Var};

/// A three-valued truth assignment for a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LBool {
    /// The variable is assigned true.
    True,
    /// The variable is assigned false.
    False,
    /// The variable is unassigned.
    Undef,
}

impl LBool {
    /// Converts a concrete boolean into an assigned [`LBool`].
    #[must_use]
    pub fn from_bool(value: bool) -> Self {
        if value {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Returns `true` if this value is assigned (not [`LBool::Undef`]).
    #[must_use]
    pub fn is_assigned(self) -> bool {
        !matches!(self, LBool::Undef)
    }

    /// Returns the negation; `Undef` stays `Undef`.
    #[must_use]
    pub fn negate(self) -> Self {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }
}

/// The solver's current partial assignment together with the trail metadata
/// needed for backtracking and conflict analysis.
#[derive(Debug, Default, Clone)]
pub(crate) struct Assignment {
    values: Vec<LBool>,
    levels: Vec<u32>,
    pub(crate) trail: Vec<Lit>,
    pub(crate) trail_lim: Vec<usize>,
}

impl Assignment {
    pub(crate) fn new() -> Self {
        Assignment::default()
    }

    pub(crate) fn grow_to(&mut self, num_vars: usize) {
        self.values.resize(num_vars, LBool::Undef);
        self.levels.resize(num_vars, 0);
    }

    pub(crate) fn num_vars(&self) -> usize {
        self.values.len()
    }

    pub(crate) fn value_var(&self, var: Var) -> LBool {
        self.values[var.index()]
    }

    pub(crate) fn value_lit(&self, lit: Lit) -> LBool {
        let v = self.values[lit.var().index()];
        if lit.is_negative() {
            v.negate()
        } else {
            v
        }
    }

    pub(crate) fn level(&self, var: Var) -> u32 {
        self.levels[var.index()]
    }

    pub(crate) fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    pub(crate) fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    /// Records `lit` as true at the current decision level.
    pub(crate) fn assign(&mut self, lit: Lit) {
        let var = lit.var();
        debug_assert_eq!(self.values[var.index()], LBool::Undef);
        self.values[var.index()] = LBool::from_bool(lit.is_positive());
        self.levels[var.index()] = self.decision_level();
        self.trail.push(lit);
    }

    /// Unassigns everything above `level`, returning the literals removed in
    /// reverse-chronological order (most recent first).
    pub(crate) fn backtrack_to(&mut self, level: u32) -> Vec<Lit> {
        let mut removed = Vec::new();
        if self.decision_level() <= level {
            return removed;
        }
        let target = self.trail_lim[level as usize];
        while self.trail.len() > target {
            let lit = self.trail.pop().expect("trail is non-empty above target");
            self.values[lit.var().index()] = LBool::Undef;
            removed.push(lit);
        }
        self.trail_lim.truncate(level as usize);
        removed
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_complete(&self) -> bool {
        self.trail.len() == self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: u32, neg: bool) -> Lit {
        Lit::new(Var::from_index(i), neg)
    }

    #[test]
    fn assign_and_read_back() {
        let mut a = Assignment::new();
        a.grow_to(3);
        a.assign(lit(0, false));
        a.assign(lit(1, true));
        assert_eq!(a.value_var(Var::from_index(0)), LBool::True);
        assert_eq!(a.value_var(Var::from_index(1)), LBool::False);
        assert_eq!(a.value_var(Var::from_index(2)), LBool::Undef);
        assert_eq!(a.value_lit(lit(1, true)), LBool::True);
        assert_eq!(a.value_lit(lit(1, false)), LBool::False);
    }

    #[test]
    fn backtracking_unassigns_levels_above_target() {
        let mut a = Assignment::new();
        a.grow_to(4);
        a.assign(lit(0, false)); // level 0
        a.new_decision_level();
        a.assign(lit(1, false)); // level 1
        a.new_decision_level();
        a.assign(lit(2, false)); // level 2
        a.assign(lit(3, false)); // level 2 (propagation)
        assert_eq!(a.decision_level(), 2);

        let removed = a.backtrack_to(1);
        assert_eq!(removed, vec![lit(3, false), lit(2, false)]);
        assert_eq!(a.decision_level(), 1);
        assert_eq!(a.value_var(Var::from_index(2)), LBool::Undef);
        assert_eq!(a.value_var(Var::from_index(3)), LBool::Undef);
        assert_eq!(a.value_var(Var::from_index(1)), LBool::True);
        assert_eq!(a.value_var(Var::from_index(0)), LBool::True);
    }

    #[test]
    fn backtrack_to_current_level_is_a_no_op() {
        let mut a = Assignment::new();
        a.grow_to(1);
        a.assign(lit(0, false));
        assert!(a.backtrack_to(0).is_empty());
        assert_eq!(a.value_var(Var::from_index(0)), LBool::True);
    }

    #[test]
    fn completeness_tracks_trail_length() {
        let mut a = Assignment::new();
        a.grow_to(2);
        assert!(!a.is_complete());
        a.assign(lit(0, false));
        a.assign(lit(1, false));
        assert!(a.is_complete());
    }

    #[test]
    fn lbool_negation() {
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::False.negate(), LBool::True);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert!(LBool::True.is_assigned());
        assert!(!LBool::Undef.is_assigned());
    }
}
