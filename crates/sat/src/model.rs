//! Satisfying assignments returned by the solver.

use crate::literal::{Lit, Var};

/// A complete satisfying assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// Builds a model from a dense vector of variable values (index = variable index).
    #[must_use]
    pub fn from_values(values: Vec<bool>) -> Self {
        Model { values }
    }

    /// Number of variables covered by the model.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model covers no variables.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The truth value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not part of the solved problem.
    #[must_use]
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// The truth value of `lit`.
    ///
    /// # Panics
    ///
    /// Panics if the literal's variable was not part of the solved problem.
    #[must_use]
    pub fn lit_value(&self, lit: Lit) -> bool {
        self.value(lit.var()) ^ lit.is_negative()
    }

    /// Iterates over `(variable, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Var, bool)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Var::from_index(i as u32), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_reports_literal_values() {
        let model = Model::from_values(vec![true, false]);
        let v0 = Var::from_index(0);
        let v1 = Var::from_index(1);
        assert!(model.value(v0));
        assert!(!model.value(v1));
        assert!(model.lit_value(Lit::positive(v0)));
        assert!(!model.lit_value(Lit::negative(v0)));
        assert!(model.lit_value(Lit::negative(v1)));
        assert_eq!(model.len(), 2);
        assert!(!model.is_empty());
    }

    #[test]
    fn iter_yields_all_variables() {
        let model = Model::from_values(vec![true, true, false]);
        let collected: Vec<(Var, bool)> = model.iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2], (Var::from_index(2), false));
    }
}
