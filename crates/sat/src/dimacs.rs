//! DIMACS CNF parsing and writing.
//!
//! DIMACS is the standard interchange format for SAT instances; the
//! reproduction uses it for debugging (dumping generated constraint systems)
//! and for differential testing of the solver.

use std::fmt::Write as _;

use crate::literal::{Lit, Var};
use crate::solver::Solver;

/// Error produced when parsing a DIMACS CNF file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Line (1-based) where the problem was found.
    pub line: usize,
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for DimacsError {}

/// Parses DIMACS CNF text into `(num_vars, clauses)`.
///
/// # Errors
///
/// Returns a [`DimacsError`] if the header is missing or malformed, a literal
/// is not an integer, or a literal references a variable beyond the declared
/// count.
pub fn parse_dimacs(text: &str) -> Result<(usize, Vec<Vec<Lit>>), DimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut current: Vec<Lit> = Vec::new();

    for (line_no, line) in text.lines().enumerate() {
        let line_no = line_no + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            let mut parts = line.split_whitespace();
            let _p = parts.next();
            if parts.next() != Some("cnf") {
                return Err(DimacsError {
                    message: "expected `p cnf <vars> <clauses>`".to_string(),
                    line: line_no,
                });
            }
            let vars = parts
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .ok_or_else(|| DimacsError {
                    message: "missing variable count".to_string(),
                    line: line_no,
                })?;
            num_vars = Some(vars);
            continue;
        }
        let declared = num_vars.ok_or_else(|| DimacsError {
            message: "clause before header".to_string(),
            line: line_no,
        })?;
        for token in line.split_whitespace() {
            let value: i64 = token.parse().map_err(|_| DimacsError {
                message: format!("invalid literal `{token}`"),
                line: line_no,
            })?;
            if value == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let var_index = value.unsigned_abs() as usize - 1;
                if var_index >= declared {
                    return Err(DimacsError {
                        message: format!("literal {value} exceeds declared variable count"),
                        line: line_no,
                    });
                }
                current.push(Lit::new(Var::from_index(var_index as u32), value < 0));
            }
        }
    }

    if !current.is_empty() {
        clauses.push(current);
    }
    Ok((num_vars.unwrap_or(0), clauses))
}

/// Serializes a problem to DIMACS CNF text.
#[must_use]
pub fn write_dimacs(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", num_vars, clauses.len());
    for clause in clauses {
        for lit in clause {
            let value = lit.var().index() as i64 + 1;
            let signed = if lit.is_negative() { -value } else { value };
            let _ = write!(out, "{signed} ");
        }
        let _ = writeln!(out, "0");
    }
    out
}

/// Loads a parsed DIMACS problem into a fresh [`Solver`].
#[must_use]
pub fn solver_from_dimacs(num_vars: usize, clauses: &[Vec<Lit>]) -> Solver {
    let mut solver = Solver::new();
    for _ in 0..num_vars {
        solver.new_var();
    }
    for clause in clauses {
        solver.add_clause(clause.iter().copied());
    }
    solver
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveOutcome;

    #[test]
    fn round_trip_parse_and_write() {
        let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let (vars, clauses) = parse_dimacs(text).expect("valid input parses");
        assert_eq!(vars, 3);
        assert_eq!(clauses.len(), 2);
        let rendered = write_dimacs(vars, &clauses);
        let (vars2, clauses2) = parse_dimacs(&rendered).expect("round trip parses");
        assert_eq!(vars, vars2);
        assert_eq!(clauses, clauses2);
    }

    #[test]
    fn parsed_problem_is_solvable() {
        let text = "p cnf 2 2\n1 0\n-1 2 0\n";
        let (vars, clauses) = parse_dimacs(text).unwrap();
        let mut solver = solver_from_dimacs(vars, &clauses);
        assert_eq!(solver.solve(), SolveOutcome::Sat);
        let model = solver.model().unwrap();
        assert!(model.value(Var::from_index(0)));
        assert!(model.value(Var::from_index(1)));
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = parse_dimacs("1 2 0\n").unwrap_err();
        assert!(err.message.contains("header"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn bad_literal_is_an_error() {
        let err = parse_dimacs("p cnf 1 1\nfoo 0\n").unwrap_err();
        assert!(err.message.contains("invalid literal"));
    }

    #[test]
    fn out_of_range_literal_is_an_error() {
        let err = parse_dimacs("p cnf 1 1\n2 0\n").unwrap_err();
        assert!(err.message.contains("exceeds"));
    }

    #[test]
    fn error_display_mentions_line() {
        let err = parse_dimacs("p cnf 1 1\n2 0\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }
}
