//! DIMACS CNF parsing and writing.
//!
//! DIMACS is the standard interchange format for SAT instances; the
//! reproduction uses it for debugging (dumping generated constraint systems)
//! and for differential testing of the solver.

use std::fmt::Write as _;

use crate::literal::{Lit, Var};
use crate::solver::Solver;

/// Error produced when parsing a DIMACS CNF file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Line (1-based) where the problem was found.
    pub line: usize,
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for DimacsError {}

/// Parses DIMACS CNF text into `(num_vars, clauses)`.
///
/// The grammar accepted is the one real instances use rather than the
/// strictest reading of the spec: comment lines (`c …`) may appear anywhere
/// (including between the lines of a clause that spans several), a clause may
/// span multiple lines or share a line with other clauses (`0` is the only
/// clause terminator), blank lines are ignored, and the SATLIB `%` footer
/// terminates the instance.
///
/// # Errors
///
/// Returns a [`DimacsError`] (with a 1-based line number) if the header is
/// missing, duplicated, or malformed; a literal is not an integer or
/// references a variable beyond the declared count; the final clause is not
/// `0`-terminated; or the number of clauses does not match the header.
pub fn parse_dimacs(text: &str) -> Result<(usize, Vec<Vec<Lit>>), DimacsError> {
    let mut header: Option<(usize, usize)> = None;
    let mut header_line = 0usize;
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    let mut current_line = 0usize;

    for (line_no, raw) in text.lines().enumerate() {
        let line_no = line_no + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('%') {
            // SATLIB benchmark footer ("%" then a lone "0"): end of instance.
            break;
        }
        let mut parts = line.split_whitespace();
        if parts.clone().next() == Some("p") {
            let _p = parts.next();
            if header.is_some() {
                return Err(DimacsError {
                    message: format!("duplicate `p cnf` header (first on line {header_line})"),
                    line: line_no,
                });
            }
            if parts.next() != Some("cnf") {
                return Err(DimacsError {
                    message: "expected `p cnf <vars> <clauses>`".to_string(),
                    line: line_no,
                });
            }
            let vars = parts
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .ok_or_else(|| DimacsError {
                    message: "missing or invalid variable count".to_string(),
                    line: line_no,
                })?;
            let declared_clauses = parts
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .ok_or_else(|| DimacsError {
                    message: "missing or invalid clause count".to_string(),
                    line: line_no,
                })?;
            if let Some(extra) = parts.next() {
                return Err(DimacsError {
                    message: format!("unexpected token `{extra}` after clause count"),
                    line: line_no,
                });
            }
            header = Some((vars, declared_clauses));
            header_line = line_no;
            continue;
        }
        let (declared_vars, _) = header.ok_or_else(|| DimacsError {
            message: "clause before `p cnf` header".to_string(),
            line: line_no,
        })?;
        for token in parts {
            let value: i64 = token.parse().map_err(|_| DimacsError {
                message: format!("invalid literal `{token}`"),
                line: line_no,
            })?;
            if value == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let var_index = value.unsigned_abs() as usize - 1;
                if var_index >= declared_vars {
                    return Err(DimacsError {
                        message: format!("literal {value} exceeds declared variable count"),
                        line: line_no,
                    });
                }
                if current.is_empty() {
                    current_line = line_no;
                }
                current.push(Lit::new(Var::from_index(var_index as u32), value < 0));
            }
        }
    }

    if !current.is_empty() {
        return Err(DimacsError {
            message: "unterminated clause (missing trailing 0)".to_string(),
            line: current_line,
        });
    }
    match header {
        None => Ok((0, clauses)),
        Some((vars, declared_clauses)) => {
            if clauses.len() != declared_clauses {
                return Err(DimacsError {
                    message: format!(
                        "header declares {declared_clauses} clauses but {} were found",
                        clauses.len()
                    ),
                    line: header_line,
                });
            }
            Ok((vars, clauses))
        }
    }
}

/// Serializes a problem to DIMACS CNF text.
#[must_use]
pub fn write_dimacs(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", num_vars, clauses.len());
    for clause in clauses {
        for lit in clause {
            let value = lit.var().index() as i64 + 1;
            let signed = if lit.is_negative() { -value } else { value };
            let _ = write!(out, "{signed} ");
        }
        let _ = writeln!(out, "0");
    }
    out
}

/// Loads a parsed DIMACS problem into a fresh [`Solver`].
#[must_use]
pub fn solver_from_dimacs(num_vars: usize, clauses: &[Vec<Lit>]) -> Solver {
    let mut solver = Solver::new();
    for _ in 0..num_vars {
        solver.new_var();
    }
    for clause in clauses {
        solver.add_clause(clause.iter().copied());
    }
    solver
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveOutcome;

    #[test]
    fn round_trip_parse_and_write() {
        let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let (vars, clauses) = parse_dimacs(text).expect("valid input parses");
        assert_eq!(vars, 3);
        assert_eq!(clauses.len(), 2);
        let rendered = write_dimacs(vars, &clauses);
        let (vars2, clauses2) = parse_dimacs(&rendered).expect("round trip parses");
        assert_eq!(vars, vars2);
        assert_eq!(clauses, clauses2);
    }

    #[test]
    fn parsed_problem_is_solvable() {
        let text = "p cnf 2 2\n1 0\n-1 2 0\n";
        let (vars, clauses) = parse_dimacs(text).unwrap();
        let mut solver = solver_from_dimacs(vars, &clauses);
        assert_eq!(solver.solve(), SolveOutcome::Sat);
        let model = solver.model().unwrap();
        assert!(model.value(Var::from_index(0)));
        assert!(model.value(Var::from_index(1)));
    }

    #[test]
    fn comments_and_clauses_interleave_anywhere() {
        // A comment in the middle of a multi-line clause, two clauses on one
        // line, and a clause split across lines must all parse.
        let text = "c leading comment\n\
                    p cnf 4 3\n\
                    1 -2\n\
                    c comment inside a clause\n\
                    3 0\n\
                    2 3 0 -1 4 0\n";
        let (vars, clauses) = parse_dimacs(text).expect("interleaved input parses");
        assert_eq!(vars, 4);
        assert_eq!(clauses.len(), 3);
        assert_eq!(clauses[0].len(), 3);
        assert_eq!(clauses[1].len(), 2);
        assert_eq!(clauses[2].len(), 2);
    }

    #[test]
    fn satlib_percent_footer_ends_the_instance() {
        let text = "p cnf 2 1\n1 2 0\n%\n0\n";
        let (vars, clauses) = parse_dimacs(text).expect("footer is ignored");
        assert_eq!(vars, 2);
        assert_eq!(clauses.len(), 1);
    }

    #[test]
    fn duplicate_header_is_an_error() {
        let err = parse_dimacs("p cnf 1 1\np cnf 2 1\n1 0\n").unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
        assert!(err.message.contains("line 1"), "{err}");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn malformed_headers_are_errors_with_line_numbers() {
        let missing_clause_count = parse_dimacs("p cnf 3\n").unwrap_err();
        assert!(missing_clause_count.message.contains("clause count"));
        assert_eq!(missing_clause_count.line, 1);

        let bad_format = parse_dimacs("c x\np sat 3 1\n").unwrap_err();
        assert!(bad_format.message.contains("p cnf"));
        assert_eq!(bad_format.line, 2);

        let trailing = parse_dimacs("p cnf 3 1 junk\n").unwrap_err();
        assert!(trailing.message.contains("junk"), "{trailing}");
        assert_eq!(trailing.line, 1);
    }

    #[test]
    fn unterminated_clause_is_an_error_at_its_first_line() {
        let err = parse_dimacs("p cnf 3 2\n1 2 0\n3\n-1\n").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
        assert_eq!(err.line, 3);
    }

    #[test]
    fn clause_count_mismatch_is_an_error_at_the_header() {
        let err = parse_dimacs("p cnf 2 3\n1 0\n2 0\n").unwrap_err();
        assert!(err.message.contains("declares 3"), "{err}");
        assert!(err.message.contains("2 were found"), "{err}");
        assert_eq!(err.line, 1);
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = parse_dimacs("1 2 0\n").unwrap_err();
        assert!(err.message.contains("header"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn bad_literal_is_an_error() {
        let err = parse_dimacs("p cnf 1 1\nfoo 0\n").unwrap_err();
        assert!(err.message.contains("invalid literal"));
    }

    #[test]
    fn out_of_range_literal_is_an_error() {
        let err = parse_dimacs("p cnf 1 1\n2 0\n").unwrap_err();
        assert!(err.message.contains("exceeds"));
    }

    #[test]
    fn error_display_mentions_line() {
        let err = parse_dimacs("p cnf 1 1\n2 0\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }
}
