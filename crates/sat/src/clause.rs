//! Clause storage.

use crate::literal::Lit;

/// A reference to a clause stored in the solver's clause arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// A disjunction of literals.
#[derive(Debug, Clone)]
pub struct Clause {
    pub(crate) lits: Vec<Lit>,
    pub(crate) learnt: bool,
    pub(crate) deleted: bool,
    /// Literal-block distance ("glue") of a learnt clause; used by the
    /// clause-database reduction policy.
    pub(crate) lbd: u32,
    pub(crate) activity: f64,
    /// Axiom family that emitted the clause (see [`crate::flight`]).
    pub(crate) family: u16,
    /// Provenance bitmask: the families involved in deriving this clause
    /// (for problem clauses just the family's own bit; for learnt clauses
    /// the OR over every clause resolved on during analysis).
    pub(crate) mask: u32,
}

impl Clause {
    pub(crate) fn new(lits: Vec<Lit>, learnt: bool) -> Self {
        let family = if learnt {
            crate::flight::FAMILY_LEARNED
        } else {
            crate::flight::FAMILY_DEFAULT
        };
        Clause {
            lits,
            learnt,
            deleted: false,
            lbd: 0,
            activity: 0.0,
            family,
            mask: crate::flight::family_bit(family),
        }
    }

    /// The literals of the clause.
    #[must_use]
    pub fn literals(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals in the clause.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether the clause is empty (always false).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Whether the clause was learnt during conflict analysis (as opposed to
    /// being part of the original problem).
    #[must_use]
    pub fn is_learnt(&self) -> bool {
        self.learnt
    }

    /// The id of the axiom family that emitted the clause (resolve names
    /// through [`crate::Solver::families`]).
    #[must_use]
    pub fn family(&self) -> u16 {
        self.family
    }
}

/// Arena of clauses. Deletion is logical (tombstones); the arena is compacted
/// only implicitly by never scanning deleted clauses from watch lists.
#[derive(Debug, Default)]
pub(crate) struct ClauseDb {
    pub(crate) clauses: Vec<Clause>,
    pub(crate) num_original: usize,
    pub(crate) num_learnt: usize,
    /// Total number of literal occurrences over live clauses.
    pub(crate) literal_count: u64,
}

impl ClauseDb {
    pub(crate) fn new() -> Self {
        ClauseDb::default()
    }

    pub(crate) fn push(&mut self, clause: Clause) -> ClauseRef {
        let idx = self.clauses.len() as u32;
        if clause.learnt {
            self.num_learnt += 1;
        } else {
            self.num_original += 1;
        }
        self.literal_count += clause.lits.len() as u64;
        self.clauses.push(clause);
        ClauseRef(idx)
    }

    pub(crate) fn get(&self, cref: ClauseRef) -> &Clause {
        &self.clauses[cref.index()]
    }

    pub(crate) fn get_mut(&mut self, cref: ClauseRef) -> &mut Clause {
        &mut self.clauses[cref.index()]
    }

    pub(crate) fn delete(&mut self, cref: ClauseRef) {
        let clause = &mut self.clauses[cref.index()];
        if !clause.deleted {
            clause.deleted = true;
            if clause.learnt {
                self.num_learnt -= 1;
            } else {
                self.num_original -= 1;
            }
            self.literal_count -= clause.lits.len() as u64;
        }
    }

    pub(crate) fn live_learnt(&self) -> impl Iterator<Item = (ClauseRef, &Clause)> {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted)
            .map(|(i, c)| (ClauseRef(i as u32), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Var;

    fn lit(i: u32) -> Lit {
        Lit::positive(Var::from_index(i))
    }

    #[test]
    fn arena_counts_clauses_and_literals() {
        let mut db = ClauseDb::new();
        let c1 = db.push(Clause::new(vec![lit(0), lit(1)], false));
        let c2 = db.push(Clause::new(vec![lit(2)], true));
        assert_eq!(db.num_original, 1);
        assert_eq!(db.num_learnt, 1);
        assert_eq!(db.literal_count, 3);
        assert_eq!(db.get(c1).len(), 2);
        assert!(db.get(c2).is_learnt());

        db.delete(c2);
        assert_eq!(db.num_learnt, 0);
        assert_eq!(db.literal_count, 2);
        // Deleting twice is harmless.
        db.delete(c2);
        assert_eq!(db.num_learnt, 0);
    }

    #[test]
    fn live_learnt_skips_deleted_and_original() {
        let mut db = ClauseDb::new();
        db.push(Clause::new(vec![lit(0)], false));
        let l1 = db.push(Clause::new(vec![lit(1)], true));
        let l2 = db.push(Clause::new(vec![lit(2)], true));
        db.delete(l1);
        let live: Vec<ClauseRef> = db.live_learnt().map(|(r, _)| r).collect();
        assert_eq!(live, vec![l2]);
    }

    #[test]
    fn clause_accessors() {
        let c = Clause::new(vec![lit(3), lit(4)], false);
        assert_eq!(c.literals(), &[lit(3), lit(4)]);
        assert!(!c.is_empty());
        assert!(!c.is_learnt());
    }
}
