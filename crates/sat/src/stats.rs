//! Solver statistics.

/// Counters describing the work performed by a [`crate::Solver`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered (propositional and theory).
    pub conflicts: u64,
    /// Number of conflicts reported by the theory.
    pub theory_conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Number of problem variables.
    pub variables: u64,
    /// Number of problem (non-learnt) clauses added.
    pub clauses: u64,
    /// Total number of literal occurrences over the problem clauses added
    /// (the paper's "# Literals" metric).
    pub literals: u64,
}

impl std::fmt::Display for SolverStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "vars={} clauses={} literals={} decisions={} propagations={} conflicts={} (theory {}) restarts={} deleted={}",
            self.variables,
            self.clauses,
            self.literals,
            self.decisions,
            self.propagations,
            self.conflicts,
            self.theory_conflicts,
            self.restarts,
            self.deleted_clauses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_all_counters() {
        let stats = SolverStats {
            decisions: 1,
            propagations: 2,
            conflicts: 3,
            theory_conflicts: 4,
            restarts: 5,
            deleted_clauses: 6,
            variables: 7,
            clauses: 8,
            literals: 9,
        };
        let s = stats.to_string();
        for needle in [
            "vars=7",
            "clauses=8",
            "literals=9",
            "conflicts=3",
            "theory 4",
        ] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }
}
