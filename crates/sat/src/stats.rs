//! Solver statistics.

/// Counters describing the work performed by a [`crate::Solver`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered (propositional and theory).
    pub conflicts: u64,
    /// Number of conflicts reported by the theory.
    pub theory_conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Number of problem variables.
    pub variables: u64,
    /// Number of problem (non-learnt) clauses added.
    pub clauses: u64,
    /// Total number of literal occurrences over the problem clauses added
    /// (the paper's "# Literals" metric).
    pub literals: u64,
    /// Preprocessing rounds executed (`pp.rounds`).
    pub pp_rounds: u64,
    /// Literals fixed at the top level by preprocessing (`pp.fixed`).
    pub pp_fixed: u64,
    /// Variables substituted by an equivalent literal (`pp.equivalences`).
    pub pp_equivalences: u64,
    /// Clauses removed by subsumption (`pp.subsumed`).
    pub pp_subsumed: u64,
    /// Literals removed by self-subsuming resolution (`pp.strengthened`).
    pub pp_strengthened: u64,
    /// Variables removed by bounded variable elimination (`pp.eliminated`).
    pub pp_eliminated: u64,
    /// Resolvent clauses added by variable elimination (`pp.resolvents`).
    pub pp_resolvents: u64,
    /// Failed-literal probes attempted (`pp.probes`).
    pub pp_probes: u64,
    /// Eliminated variables restored by incremental clauses (`pp.restored`).
    pub pp_restored: u64,
}

impl SolverStats {
    /// The change since an `earlier` snapshot of the same solver: every
    /// counter field-wise subtracted (saturating, so a reset solver or
    /// mismatched snapshot cannot underflow).
    ///
    /// All counters are cumulative over a solver's lifetime — `solve` never
    /// resets them — so per-call metrics are
    /// `let before = solver.stats().snapshot(); …; solver.stats().diff(&before)`
    /// instead of copying fields by hand.
    #[must_use]
    pub fn diff(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            theory_conflicts: self
                .theory_conflicts
                .saturating_sub(earlier.theory_conflicts),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            deleted_clauses: self.deleted_clauses.saturating_sub(earlier.deleted_clauses),
            variables: self.variables.saturating_sub(earlier.variables),
            clauses: self.clauses.saturating_sub(earlier.clauses),
            literals: self.literals.saturating_sub(earlier.literals),
            pp_rounds: self.pp_rounds.saturating_sub(earlier.pp_rounds),
            pp_fixed: self.pp_fixed.saturating_sub(earlier.pp_fixed),
            pp_equivalences: self.pp_equivalences.saturating_sub(earlier.pp_equivalences),
            pp_subsumed: self.pp_subsumed.saturating_sub(earlier.pp_subsumed),
            pp_strengthened: self.pp_strengthened.saturating_sub(earlier.pp_strengthened),
            pp_eliminated: self.pp_eliminated.saturating_sub(earlier.pp_eliminated),
            pp_resolvents: self.pp_resolvents.saturating_sub(earlier.pp_resolvents),
            pp_probes: self.pp_probes.saturating_sub(earlier.pp_probes),
            pp_restored: self.pp_restored.saturating_sub(earlier.pp_restored),
        }
    }

    /// An owned copy of the counters as they stand now (sugar over `Copy`
    /// that reads better at call sites pairing with [`SolverStats::diff`]).
    #[must_use]
    pub fn snapshot(&self) -> SolverStats {
        *self
    }
}

impl std::fmt::Display for SolverStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "vars={} clauses={} literals={} decisions={} propagations={} conflicts={} (theory {}) restarts={} deleted={} \
             pp[rounds={} fixed={} equiv={} subsumed={} strengthened={} eliminated={} resolvents={} probes={} restored={}]",
            self.variables,
            self.clauses,
            self.literals,
            self.decisions,
            self.propagations,
            self.conflicts,
            self.theory_conflicts,
            self.restarts,
            self.deleted_clauses,
            self.pp_rounds,
            self.pp_fixed,
            self.pp_equivalences,
            self.pp_subsumed,
            self.pp_strengthened,
            self.pp_eliminated,
            self.pp_resolvents,
            self.pp_probes,
            self.pp_restored
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_all_counters() {
        let stats = SolverStats {
            decisions: 1,
            propagations: 2,
            conflicts: 3,
            theory_conflicts: 4,
            restarts: 5,
            deleted_clauses: 6,
            variables: 7,
            clauses: 8,
            literals: 9,
            pp_eliminated: 10,
            ..SolverStats::default()
        };
        let s = stats.to_string();
        for needle in [
            "vars=7",
            "clauses=8",
            "literals=9",
            "conflicts=3",
            "theory 4",
            "eliminated=10",
        ] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }

    #[test]
    fn diff_subtracts_every_counter() {
        let earlier = SolverStats {
            decisions: 10,
            propagations: 20,
            conflicts: 30,
            theory_conflicts: 4,
            restarts: 5,
            deleted_clauses: 6,
            variables: 7,
            clauses: 8,
            literals: 90,
            pp_eliminated: 2,
            ..SolverStats::default()
        };
        let later = SolverStats {
            decisions: 15,
            propagations: 29,
            conflicts: 31,
            theory_conflicts: 4,
            restarts: 7,
            deleted_clauses: 6,
            variables: 7,
            clauses: 10,
            literals: 95,
            pp_eliminated: 5,
            ..SolverStats::default()
        };
        let delta = later.diff(&earlier);
        assert_eq!(delta.pp_eliminated, 3);
        assert_eq!(delta.decisions, 5);
        assert_eq!(delta.propagations, 9);
        assert_eq!(delta.conflicts, 1);
        assert_eq!(delta.theory_conflicts, 0);
        assert_eq!(delta.restarts, 2);
        assert_eq!(delta.variables, 0);
        assert_eq!(delta.clauses, 2);
        assert_eq!(delta.literals, 5);
        // Mismatched snapshots saturate instead of underflowing.
        assert_eq!(earlier.diff(&later).decisions, 0);
        // A snapshot is an owned copy equal to the source.
        assert_eq!(later.snapshot(), later);
    }

    #[test]
    fn solve_accumulates_rather_than_resets() {
        use crate::{Lit, SolveOutcome, Solver, Var};
        let mut solver = Solver::new();
        let a = solver.new_var();
        let b = solver.new_var();
        solver.add_clause(vec![Lit::positive(a), Lit::positive(b)]);
        assert_eq!(solver.solve(), SolveOutcome::Sat);
        let first = solver.stats().snapshot();
        // Force disagreement so the second call does real work.
        let model = solver.model().expect("sat model");
        let flip = if model.value(Var::from_index(0)) {
            Lit::negative(a)
        } else {
            Lit::positive(a)
        };
        solver.add_clause(vec![flip]);
        assert_eq!(solver.solve(), SolveOutcome::Sat);
        let second = solver.stats().snapshot();
        let delta = second.diff(&first);
        assert!(second.propagations >= first.propagations, "cumulative");
        assert_eq!(delta.variables, 0);
        assert_eq!(delta.clauses, 1);
    }
}
