//! A conflict-driven clause-learning (CDCL) SAT solver with theory hooks.
//!
//! This crate is the lowest layer of the IsoPredict reproduction's
//! constraint-solving substrate. The paper uses Z3; because the native Z3
//! bindings cannot be built in this environment, the reproduction ships its
//! own solver. The constraints IsoPredict generates are propositional plus a
//! strict-order ("acyclicity") theory, so a CDCL core with a [`Theory`]
//! callback interface is sufficient (see the `isopredict-smt` crate for the
//! formula layer and theory implementation).
//!
//! # Features
//!
//! * Two-watched-literal unit propagation.
//! * First-UIP conflict analysis with recursive clause minimization.
//! * VSIDS-style variable activity with phase saving.
//! * Luby-sequence restarts.
//! * Learnt-clause database reduction driven by LBD (glue) scores.
//! * A [`Theory`] trait for DPLL(T)-style integration: the theory is told
//!   about assignments to its atoms as they happen and may report conflict
//!   clauses that the solver then learns from.
//!
//! # Example
//!
//! ```
//! use isopredict_sat::{Lit, Solver};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause([Lit::positive(a), Lit::positive(b)]);
//! solver.add_clause([Lit::negative(a)]);
//! let outcome = solver.solve();
//! assert!(outcome.is_sat());
//! let model = solver.model().expect("sat outcome has a model");
//! assert!(model.value(b));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod analyze;
mod assignment;
mod clause;
mod dimacs;
mod flight;
mod heap;
mod literal;
mod model;
mod preprocess;
mod propagate;
mod reduce;
mod solver;
mod stats;
mod theory;

pub use assignment::LBool;
pub use clause::{Clause, ClauseRef};
pub use dimacs::{parse_dimacs, solver_from_dimacs, write_dimacs, DimacsError};
pub use flight::{
    FamilyAttribution, Heartbeat, SolverPostmortem, FAMILY_DEFAULT, FAMILY_LEARNED, FAMILY_THEORY,
};
pub use literal::{Lit, Var};
pub use model::Model;
pub use preprocess::{FormulaProfile, PreprocessConfig, PreprocessSummary};
pub use solver::{HeartbeatHook, SolveOutcome, Solver, SolverConfig};
pub use stats::SolverStats;
pub use theory::{NullTheory, Theory, TheoryResult};
