//! Learnt-clause database reduction and the Luby restart sequence.

use crate::clause::ClauseRef;
use crate::solver::Solver;

/// The `i`-th element (0-based) of the Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
pub(crate) fn luby(i: u64) -> u64 {
    // Find the finite subsequence that contains index `i` and the index inside it.
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    let mut index = i;
    while size < index + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != index {
        size = (size - 1) / 2;
        seq -= 1;
        index %= size;
    }
    1u64 << seq
}

impl Solver {
    /// Deletes roughly half of the learnt clauses, preferring to keep clauses
    /// with low LBD ("glue") and high activity. Clauses that are currently the
    /// reason of an assignment are never deleted.
    pub(crate) fn reduce_learnt_db(&mut self) {
        let locked: Vec<Option<ClauseRef>> = self.reasons.clone();
        let is_locked = |cref: ClauseRef| locked.contains(&Some(cref));

        let mut candidates: Vec<(ClauseRef, u32, f64)> = self
            .db
            .live_learnt()
            .map(|(cref, clause)| (cref, clause.lbd, clause.activity))
            .collect();

        // Keep glue clauses (LBD <= 2) unconditionally.
        candidates.retain(|&(cref, lbd, _)| lbd > 2 && !is_locked(cref));
        // Delete the worst half: highest LBD first, then lowest activity.
        candidates.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
        });
        let to_delete = candidates.len() / 2;
        for &(cref, _, _) in candidates.iter().take(to_delete) {
            self.detach_clause(cref);
            self.db.delete(cref);
            self.stats.deleted_clauses += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lit, SolveOutcome, Solver, SolverConfig, Var};

    #[test]
    fn luby_sequence_prefix_matches_reference() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let actual: Vec<u64> = (0..expected.len() as u64).map(luby).collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn reduction_keeps_problem_solvable() {
        // Force frequent reductions by setting a tiny learnt limit; the solver
        // must still decide the instance correctly.
        let config = SolverConfig {
            learnt_limit: 2,
            restart_interval: 10,
            ..SolverConfig::default()
        };
        let mut solver = Solver::with_config(config);
        let n = 6;
        let holes = 5;
        let mut p = vec![vec![Var::from_index(0); holes]; n];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = solver.new_var();
            }
        }
        for row in &p {
            solver.add_clause(row.iter().map(|&v| Lit::positive(v)));
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (slot1, slot2) in row1.iter().zip(row2) {
                    solver.add_clause([Lit::negative(*slot1), Lit::negative(*slot2)]);
                }
            }
        }
        assert_eq!(solver.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn disabling_reduction_is_allowed() {
        let config = SolverConfig {
            reduce_db: false,
            ..SolverConfig::default()
        };
        let mut solver = Solver::with_config(config);
        let a = solver.new_var();
        solver.add_clause([Lit::positive(a)]);
        assert_eq!(solver.solve(), SolveOutcome::Sat);
        assert_eq!(solver.stats().deleted_clauses, 0);
    }
}
