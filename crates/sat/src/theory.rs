//! DPLL(T)-style theory integration.

use crate::literal::Lit;
use crate::model::Model;

/// Result of notifying a theory about an assignment or asking it for a final
/// consistency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TheoryResult {
    /// The theory state is consistent.
    Consistent,
    /// The theory state is inconsistent. The payload is a *conflict clause*:
    /// a disjunction of literals, all of which are currently false, that must
    /// hold in every model. The solver learns from it like from a regular
    /// propositional conflict.
    Conflict(Vec<Lit>),
}

impl TheoryResult {
    /// Returns `true` for [`TheoryResult::Consistent`].
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        matches!(self, TheoryResult::Consistent)
    }
}

/// A theory plugged into the CDCL solver.
///
/// The solver notifies the theory of every literal that becomes true (in
/// trail order) via [`Theory::assert_literal`] and undoes those notifications
/// with [`Theory::backtrack_to`]. Literals that are not theory atoms should
/// simply be ignored by the implementation. When the propositional search
/// finds a full assignment, the solver calls [`Theory::final_check`]; only if
/// that returns [`TheoryResult::Consistent`] is the assignment reported as a
/// model.
pub trait Theory {
    /// Notifies the theory that `lit` became true at decision level `level`.
    fn assert_literal(&mut self, lit: Lit, level: u32) -> TheoryResult;

    /// Undoes every assertion made at a decision level strictly greater than
    /// `level`.
    fn backtrack_to(&mut self, level: u32);

    /// Performs a final consistency check against a complete propositional
    /// assignment.
    fn final_check(&mut self, model: &Model) -> TheoryResult;
}

/// A theory that accepts everything; used when solving pure SAT problems.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTheory;

impl Theory for NullTheory {
    fn assert_literal(&mut self, _lit: Lit, _level: u32) -> TheoryResult {
        TheoryResult::Consistent
    }

    fn backtrack_to(&mut self, _level: u32) {}

    fn final_check(&mut self, _model: &Model) -> TheoryResult {
        TheoryResult::Consistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_theory_is_always_consistent() {
        let mut t = NullTheory;
        assert!(t
            .assert_literal(Lit::positive(crate::Var::from_index(0)), 0)
            .is_consistent());
        t.backtrack_to(0);
        let model = Model::from_values(vec![true]);
        assert!(t.final_check(&model).is_consistent());
    }

    #[test]
    fn conflict_result_is_not_consistent() {
        let conflict = TheoryResult::Conflict(vec![Lit::positive(crate::Var::from_index(1))]);
        assert!(!conflict.is_consistent());
    }
}
