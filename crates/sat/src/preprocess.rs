//! Static formula analysis and SatELite-style preprocessing.
//!
//! This module adds a simplification layer that runs on the clause database
//! between [`Solver::add_clause`] and the search loop. It has two halves:
//!
//! * **Analysis** — [`FormulaProfile`] summarizes the structure of the current
//!   formula: clause-size histogram, binary-implication-graph (BIG)
//!   equivalence classes, pure literals, fixed/frozen variable counts.
//! * **Simplification** — a [SatELite]-style pipeline: top-level unit
//!   propagation, equivalent-literal substitution over BIG strongly connected
//!   components, subsumption + self-subsuming resolution (occurrence-indexed),
//!   failed-literal probing, and bounded variable elimination (BVE; pure
//!   literals fall out as the zero-resolvent special case).
//!
//! Eliminated and substituted variables are recorded on an **elimination
//! stack** so that models of the simplified formula can be extended back to
//! models of the original formula (see [`Solver::model`]); this is load-bearing
//! because the `smt` and `core` layers read models to extract predictions and
//! drive steered replay. Theory atoms must be [frozen](Solver::freeze_var):
//! the theory attaches extra semantics to them that clause-level resolution
//! cannot see, so they are never eliminated or substituted (they may still be
//! fixed by unit propagation or probing, which is sound).
//!
//! The preprocessor is incremental-safe: [`Solver::add_clause`] maps literals
//! through the substitution table and transparently restores eliminated
//! variables that a new clause mentions (re-adding their stored clauses), so
//! blocking-clause loops keep working.
//!
//! [SatELite]: https://doi.org/10.1007/11499107_5

use crate::assignment::LBool;
use crate::clause::{Clause, ClauseDb};
use crate::literal::{Lit, Var};
use crate::solver::Solver;

/// Tuning knobs for the preprocessing pipeline (see [`crate::SolverConfig`]).
#[derive(Debug, Clone)]
pub struct PreprocessConfig {
    /// Master switch; when `false` the solver searches the formula as-is.
    pub enabled: bool,
    /// Maximum number of simplification rounds per `preprocess` call.
    pub max_rounds: u32,
    /// Enable equivalent-literal substitution over BIG SCCs.
    pub equiv: bool,
    /// Enable clause subsumption.
    pub subsumption: bool,
    /// Enable self-subsuming resolution (clause strengthening).
    pub strengthen: bool,
    /// Enable failed-literal probing.
    pub probing: bool,
    /// Enable bounded variable elimination.
    pub bve: bool,
    /// Maximum number of probes per `preprocess` call.
    pub probe_limit: usize,
    /// Skip BVE for variables occurring more often than this in either
    /// polarity.
    pub bve_occurrence_limit: usize,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            enabled: true,
            max_rounds: 3,
            equiv: true,
            subsumption: true,
            strengthen: true,
            probing: true,
            bve: true,
            probe_limit: 4000,
            bve_occurrence_limit: 10,
        }
    }
}

/// What one [`Solver::preprocess`] call did to the formula.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreprocessSummary {
    /// Simplification rounds executed.
    pub rounds: u64,
    /// Literals fixed at the top level (units, probing consequences).
    pub fixed: u64,
    /// Variables substituted by an equivalent literal.
    pub equivalences: u64,
    /// Clauses removed by subsumption.
    pub subsumed: u64,
    /// Literals removed by self-subsuming resolution.
    pub strengthened: u64,
    /// Variables removed by bounded variable elimination.
    pub eliminated: u64,
    /// Resolvent clauses added by variable elimination.
    pub resolvents: u64,
    /// Failed-literal probes attempted.
    pub probes: u64,
    /// Problem clauses before / after the call.
    pub clauses_before: u64,
    /// Problem clauses after the call.
    pub clauses_after: u64,
    /// Problem literal occurrences before the call.
    pub literals_before: u64,
    /// Problem literal occurrences after the call.
    pub literals_after: u64,
    /// The formula was proven unsatisfiable during preprocessing.
    pub unsat: bool,
}

impl std::fmt::Display for PreprocessSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rounds={} clauses {} -> {} literals {} -> {} (fixed={} equiv={} subsumed={} strengthened={} eliminated={} resolvents={} probes={}{})",
            self.rounds,
            self.clauses_before,
            self.clauses_after,
            self.literals_before,
            self.literals_after,
            self.fixed,
            self.equivalences,
            self.subsumed,
            self.strengthened,
            self.eliminated,
            self.resolvents,
            self.probes,
            if self.unsat { " UNSAT" } else { "" },
        )
    }
}

/// Structural summary of the current formula (live problem clauses under the
/// current top-level assignment).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FormulaProfile {
    /// Total variables ever created.
    pub variables: u64,
    /// Variables still active (not eliminated or substituted away).
    pub active_variables: u64,
    /// Variables fixed at the top level.
    pub fixed_variables: u64,
    /// Variables frozen against elimination (theory atoms).
    pub frozen_variables: u64,
    /// Live problem clauses.
    pub clauses: u64,
    /// Literal occurrences over live problem clauses.
    pub literals: u64,
    /// Live binary problem clauses.
    pub binary_clauses: u64,
    /// Live ternary problem clauses.
    pub ternary_clauses: u64,
    /// `(clause length, count)` pairs, ascending by length.
    pub size_histogram: Vec<(usize, u64)>,
    /// Unfixed variables occurring in exactly one polarity.
    pub pure_literals: u64,
    /// Non-trivial strongly connected components of the binary implication
    /// graph (each witnesses a class of equivalent literals).
    pub equivalence_classes: u64,
    /// Literals inside those non-trivial components.
    pub equivalent_literals: u64,
}

impl std::fmt::Display for FormulaProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "variables: {} ({} active, {} fixed, {} frozen)",
            self.variables, self.active_variables, self.fixed_variables, self.frozen_variables
        )?;
        writeln!(
            f,
            "clauses: {} ({} binary, {} ternary), literals: {}",
            self.clauses, self.binary_clauses, self.ternary_clauses, self.literals
        )?;
        write!(f, "size histogram:")?;
        for &(len, count) in &self.size_histogram {
            write!(f, " {len}:{count}")?;
        }
        writeln!(f)?;
        write!(
            f,
            "pure literals: {}, equivalence classes: {} ({} literals)",
            self.pure_literals, self.equivalence_classes, self.equivalent_literals
        )
    }
}

/// Lifecycle state of a variable with respect to preprocessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarState {
    /// Present in the formula and decidable.
    Active,
    /// Replaced everywhere by an equivalent literal (`subst` has the image).
    Substituted,
    /// Removed by variable elimination (`restore_clauses` has its clauses).
    Eliminated,
}

/// One entry of the model-reconstruction stack. Replayed newest-first: if
/// `clause` is unsatisfied under the model built so far, the pivot variable is
/// flipped so that `pivot` becomes true.
#[derive(Debug, Clone)]
pub(crate) struct ElimEntry {
    pub(crate) pivot: Lit,
    pub(crate) clause: Vec<Lit>,
}

/// A clause stored for incremental restoration of an eliminated variable,
/// retaining its provenance so the flight recorder keeps attributing it to
/// the right axiom family after restoration.
#[derive(Debug, Clone)]
pub(crate) struct RestoredClause {
    pub(crate) lits: Vec<Lit>,
    pub(crate) family: u16,
    pub(crate) mask: u32,
}

/// A recorded simplification that removes a variable from the formula.
enum SimpOp {
    /// `pos(var)` is equivalent to `rep`.
    Substitute { var: Var, rep: Lit },
    /// `var` was eliminated by resolution.
    Eliminate {
        var: Var,
        stack: Vec<ElimEntry>,
        restore: Vec<RestoredClause>,
    },
}

/// Computes the non-trivial SCCs of the binary implication graph spanned by
/// `binary` (clauses `[a, b]` contribute edges `¬a → b` and `¬b → a`).
/// Returns each SCC as a list of literal codes; only components with two or
/// more members are reported. Deterministic: Tarjan's algorithm over literal
/// codes in ascending order.
fn big_sccs(num_vars: usize, binary: &[[Lit; 2]]) -> Vec<Vec<Lit>> {
    let n = 2 * num_vars;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &[a, b] in binary {
        adj[a.negate().code()].push(b.code() as u32);
        adj[b.negate().code()].push(a.code() as u32);
    }

    const UNDEF: u32 = u32::MAX;
    let mut index = vec![UNDEF; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index: u32 = 0;
    let mut sccs: Vec<Vec<Lit>> = Vec::new();
    // Explicit DFS frames: (node, next-edge cursor).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNDEF {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (node, ref mut cursor)) = frames.last_mut() {
            if *cursor < adj[node as usize].len() {
                let succ = adj[node as usize][*cursor];
                *cursor += 1;
                if index[succ as usize] == UNDEF {
                    frames.push((succ, 0));
                    index[succ as usize] = next_index;
                    low[succ as usize] = next_index;
                    next_index += 1;
                    stack.push(succ);
                    on_stack[succ as usize] = true;
                } else if on_stack[succ as usize] {
                    low[node as usize] = low[node as usize].min(index[succ as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent as usize] = low[parent as usize].min(low[node as usize]);
                }
                if low[node as usize] == index[node as usize] {
                    let mut scc = Vec::new();
                    loop {
                        let member = stack.pop().expect("SCC stack underflow");
                        on_stack[member as usize] = false;
                        scc.push(Lit::from_code(member));
                        if member == node {
                            break;
                        }
                    }
                    if scc.len() >= 2 {
                        scc.sort_unstable();
                        sccs.push(scc);
                    }
                }
            }
        }
    }
    sccs
}

/// Occurrence-indexed clause simplifier working on an extracted copy of the
/// problem clauses. Builds up a list of [`SimpOp`]s plus newly fixed literals
/// that the solver applies afterwards.
struct Simplifier {
    cfg: PreprocessConfig,
    num_vars: usize,
    /// Live working clauses (`None` = removed). Invariant: every live clause
    /// has length ≥ 2 and mentions only active, unfixed variables (up to
    /// units still waiting in `unit_queue`).
    clauses: Vec<Option<Vec<Lit>>>,
    /// `(family, provenance mask)` per clause slot, parallel to `clauses`.
    /// Rewrites in place keep the slot's provenance; derived clauses OR the
    /// masks of their parents (see `crate::flight`).
    meta: Vec<(u16, u32)>,
    /// Variable-based 64-bit signature per clause (subsumption filter).
    sigs: Vec<u64>,
    /// `occ[l.code()]` ⊇ indices of live clauses containing `l` (entries may
    /// be stale; consumers re-validate).
    occ: Vec<Vec<usize>>,
    fixed: Vec<LBool>,
    frozen: Vec<bool>,
    active: Vec<bool>,
    /// `pos(v) ≡ lit` for variables substituted during this run.
    subst_of: Vec<Option<Lit>>,
    unit_queue: Vec<Lit>,
    unit_head: usize,
    /// Literals newly fixed by this run, in fix order.
    new_fixed: Vec<Lit>,
    ops: Vec<SimpOp>,
    summary: PreprocessSummary,
    unsat: bool,
    probes_used: usize,
}

impl Simplifier {
    fn new(
        cfg: PreprocessConfig,
        num_vars: usize,
        fixed: Vec<LBool>,
        frozen: Vec<bool>,
        active: Vec<bool>,
        originals: Vec<(Vec<Lit>, u16, u32)>,
    ) -> Self {
        let mut simp = Simplifier {
            cfg,
            num_vars,
            clauses: Vec::with_capacity(originals.len()),
            meta: Vec::with_capacity(originals.len()),
            sigs: Vec::with_capacity(originals.len()),
            occ: vec![Vec::new(); 2 * num_vars],
            fixed,
            frozen,
            active,
            subst_of: vec![None; num_vars],
            unit_queue: Vec::new(),
            unit_head: 0,
            new_fixed: Vec::new(),
            ops: Vec::new(),
            summary: PreprocessSummary::default(),
            unsat: false,
            probes_used: 0,
        };
        for (lits, family, mask) in originals {
            simp.ingest(lits, family, mask);
        }
        simp
    }

    fn sig_of(lits: &[Lit]) -> u64 {
        lits.iter()
            .fold(0u64, |acc, l| acc | 1u64 << (l.var().index() & 63))
    }

    /// Normalizes `lits` against the fixed map and stores the clause (or
    /// enqueues it as a unit / flags unsatisfiability).
    fn ingest(&mut self, lits: Vec<Lit>, family: u16, mask: u32) {
        let mut simplified: Vec<Lit> = Vec::with_capacity(lits.len());
        for lit in lits {
            match self.value(lit) {
                LBool::True => return,
                LBool::False => {}
                LBool::Undef => simplified.push(lit),
            }
        }
        simplified.sort_unstable();
        simplified.dedup();
        for w in simplified.windows(2) {
            if w[0] == w[1].negate() {
                return; // tautology
            }
        }
        match simplified.len() {
            0 => self.unsat = true,
            1 => self.enqueue_fix(simplified[0]),
            _ => {
                self.push_clause(simplified, family, mask);
            }
        }
    }

    fn push_clause(&mut self, lits: Vec<Lit>, family: u16, mask: u32) -> usize {
        let ci = self.clauses.len();
        self.sigs.push(Self::sig_of(&lits));
        self.meta.push((family, mask));
        for &l in &lits {
            self.occ[l.code()].push(ci);
        }
        self.clauses.push(Some(lits));
        ci
    }

    fn remove_clause(&mut self, ci: usize) {
        self.clauses[ci] = None;
    }

    fn value(&self, lit: Lit) -> LBool {
        let v = self.fixed[lit.var().index()];
        if lit.is_negative() {
            v.negate()
        } else {
            v
        }
    }

    fn contains(&self, ci: usize, lit: Lit) -> bool {
        match &self.clauses[ci] {
            Some(lits) => lits.contains(&lit),
            None => false,
        }
    }

    fn enqueue_fix(&mut self, lit: Lit) {
        self.unit_queue.push(lit);
    }

    /// Resolves `lit` through the substitutions recorded so far.
    fn resolve(&self, mut lit: Lit) -> Lit {
        while let Some(rep) = self.subst_of[lit.var().index()] {
            lit = if lit.is_positive() { rep } else { rep.negate() };
        }
        lit
    }

    /// Drains the unit queue: fixes each literal and rewrites the clause set
    /// accordingly (removing satisfied clauses, stripping falsified literals).
    fn propagate_fixed(&mut self) {
        while self.unit_head < self.unit_queue.len() {
            let lit = self.resolve(self.unit_queue[self.unit_head]);
            self.unit_head += 1;
            match self.value(lit) {
                LBool::True => continue,
                LBool::False => {
                    self.unsat = true;
                    return;
                }
                LBool::Undef => {}
            }
            self.fixed[lit.var().index()] = LBool::from_bool(lit.is_positive());
            self.new_fixed.push(lit);
            self.summary.fixed += 1;

            let satisfied = std::mem::take(&mut self.occ[lit.code()]);
            for ci in satisfied {
                if self.contains(ci, lit) {
                    self.remove_clause(ci);
                }
            }
            let neg = lit.negate();
            let falsified = std::mem::take(&mut self.occ[neg.code()]);
            for ci in falsified {
                if !self.contains(ci, neg) {
                    continue;
                }
                let lits = self.clauses[ci].as_mut().expect("validated live");
                lits.retain(|&l| l != neg);
                self.sigs[ci] = Self::sig_of(lits);
                match lits.len() {
                    0 => {
                        self.unsat = true;
                        return;
                    }
                    1 => {
                        let unit = lits[0];
                        self.remove_clause(ci);
                        self.enqueue_fix(unit);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Equivalent-literal substitution over binary-implication-graph SCCs.
    fn equiv_pass(&mut self) -> bool {
        let binary: Vec<[Lit; 2]> = self
            .clauses
            .iter()
            .flatten()
            .filter(|lits| lits.len() == 2)
            .map(|lits| [lits[0], lits[1]])
            .collect();
        let sccs = big_sccs(self.num_vars, &binary);
        let mut changed = false;
        for scc in sccs {
            // l and ¬l in one SCC means l ↔ ¬l: unsatisfiable.
            for w in scc.windows(2) {
                if w[0].var() == w[1].var() {
                    self.unsat = true;
                    return true;
                }
            }
            // Prefer a frozen representative so theory atoms are never
            // substituted away; otherwise the smallest literal code. Mirror
            // SCCs make the same choice (same variable, flipped sign).
            let rep = scc
                .iter()
                .copied()
                .find(|l| self.frozen[l.var().index()])
                .unwrap_or(scc[0]);
            for &member in &scc {
                let var = member.var();
                if var == rep.var() || self.frozen[var.index()] || !self.active[var.index()] {
                    continue;
                }
                if self.fixed[var.index()].is_assigned() {
                    continue;
                }
                // pos(var) ≡ image.
                let image = if member.is_positive() {
                    rep
                } else {
                    rep.negate()
                };
                self.substitute(var, image);
                changed = true;
            }
        }
        changed
    }

    /// Replaces every occurrence of `var` by `image` (the image of the
    /// positive literal) and records the operation.
    fn substitute(&mut self, var: Var, image: Lit) {
        debug_assert!(self.active[var.index()]);
        debug_assert!(!self.frozen[var.index()]);
        self.active[var.index()] = false;
        self.subst_of[var.index()] = Some(image);
        self.summary.equivalences += 1;
        self.ops.push(SimpOp::Substitute { var, rep: image });

        for code in [Lit::positive(var).code(), Lit::negative(var).code()] {
            let lit = Lit::from_code(code as u32);
            let occurrences = std::mem::take(&mut self.occ[code]);
            for ci in occurrences {
                if !self.contains(ci, lit) {
                    continue;
                }
                let old = self.clauses[ci].take().expect("validated live");
                let mapped: Vec<Lit> = old
                    .into_iter()
                    .map(|l| {
                        if l.var() == var {
                            if l.is_positive() {
                                image
                            } else {
                                image.negate()
                            }
                        } else {
                            l
                        }
                    })
                    .collect();
                let mut simplified: Vec<Lit> = Vec::with_capacity(mapped.len());
                let mut satisfied = false;
                for l in mapped {
                    match self.value(l) {
                        LBool::True => {
                            satisfied = true;
                            break;
                        }
                        LBool::False => {}
                        LBool::Undef => simplified.push(l),
                    }
                }
                if satisfied {
                    continue; // clause stays removed
                }
                simplified.sort_unstable();
                simplified.dedup();
                let tautology = simplified.windows(2).any(|w| w[0] == w[1].negate());
                if tautology {
                    continue; // clause stays removed
                }
                match simplified.len() {
                    0 => {
                        self.unsat = true;
                        return;
                    }
                    1 => self.enqueue_fix(simplified[0]),
                    _ => {
                        self.sigs[ci] = Self::sig_of(&simplified);
                        for &l in &simplified {
                            if l.var() == image.var() {
                                self.occ[l.code()].push(ci);
                            }
                        }
                        self.clauses[ci] = Some(simplified);
                    }
                }
            }
        }
    }

    /// Subsumption and (optionally) self-subsuming resolution.
    fn subsumption_pass(&mut self) -> bool {
        let mut changed = false;
        for ci in 0..self.clauses.len() {
            if self.unsat {
                return changed;
            }
            let Some(c) = self.clauses[ci].clone() else {
                continue;
            };
            let c_sig = self.sigs[ci];
            // Scan the occurrence list of the least-frequent literal of C.
            let best = c
                .iter()
                .copied()
                .min_by_key(|l| self.occ[l.code()].len())
                .expect("live clauses are non-empty");
            let candidates = self.occ[best.code()].clone();
            for dj in candidates {
                if dj == ci || !self.contains(dj, best) {
                    continue;
                }
                let d = self.clauses[dj].as_ref().expect("validated live");
                if d.len() < c.len() || c_sig & !self.sigs[dj] != 0 {
                    continue;
                }
                if c.iter().all(|l| d.contains(l)) {
                    self.remove_clause(dj);
                    self.summary.subsumed += 1;
                    changed = true;
                }
            }
            if !self.cfg.strengthen {
                continue;
            }
            // Self-subsuming resolution: if C \ {l} ⊆ D and ¬l ∈ D then the
            // resolvent of C and D on l subsumes D, so ¬l can be removed
            // from D.
            for &l in &c {
                if self.clauses[ci].is_none() {
                    break; // C itself got strengthened away meanwhile
                }
                let neg = l.negate();
                let candidates = self.occ[neg.code()].clone();
                for dj in candidates {
                    if dj == ci || !self.contains(dj, neg) {
                        continue;
                    }
                    let d = self.clauses[dj].as_ref().expect("validated live");
                    if d.len() < c.len() || c_sig & !self.sigs[dj] != 0 {
                        continue;
                    }
                    if !c.iter().all(|&m| m == l || d.contains(&m)) {
                        continue;
                    }
                    let lits = self.clauses[dj].as_mut().expect("validated live");
                    lits.retain(|&m| m != neg);
                    self.sigs[dj] = Self::sig_of(lits);
                    // The strengthened D is the resolvent of C and D, so its
                    // provenance now also involves C's families.
                    self.meta[dj].1 |= self.meta[ci].1;
                    self.summary.strengthened += 1;
                    changed = true;
                    if lits.len() == 1 {
                        let unit = lits[0];
                        self.remove_clause(dj);
                        self.enqueue_fix(unit);
                    }
                }
            }
        }
        changed
    }

    /// Failed-literal probing: temporarily assume a literal, run unit
    /// propagation, and permanently fix its negation if a conflict arises.
    fn probe_pass(&mut self) -> bool {
        // Only variables with binary-clause occurrences can propagate anything
        // from a single assumption worth probing.
        let mut in_binary = vec![false; self.num_vars];
        for lits in self.clauses.iter().flatten() {
            if lits.len() == 2 {
                for l in lits {
                    in_binary[l.var().index()] = true;
                }
            }
        }
        let mut changed = false;
        for (v, &var_in_binary) in in_binary.iter().enumerate() {
            if self.unsat || self.probes_used >= self.cfg.probe_limit {
                break;
            }
            let var = Var::from_index(v as u32);
            if !var_in_binary || !self.active[v] || self.fixed[v].is_assigned() {
                continue;
            }
            for lit in [Lit::positive(var), Lit::negative(var)] {
                if self.fixed[v].is_assigned() || self.probes_used >= self.cfg.probe_limit {
                    break;
                }
                self.probes_used += 1;
                self.summary.probes += 1;
                if self.probe(lit) {
                    self.enqueue_fix(lit.negate());
                    self.propagate_fixed();
                    changed = true;
                    if self.unsat {
                        return true;
                    }
                }
            }
        }
        changed
    }

    /// Assumes `start` and unit-propagates over the working clauses without
    /// modifying them. Returns `true` on conflict. The `fixed` map is
    /// restored before returning.
    fn probe(&mut self, start: Lit) -> bool {
        debug_assert_eq!(self.value(start), LBool::Undef);
        let mut trail: Vec<Var> = Vec::new();
        let mut queue: Vec<Lit> = vec![start];
        self.fixed[start.var().index()] = LBool::from_bool(start.is_positive());
        trail.push(start.var());
        let mut head = 0;
        let mut conflict = false;

        'outer: while head < queue.len() {
            let p = queue[head];
            head += 1;
            let watch = p.negate().code();
            let mut k = 0;
            while k < self.occ[watch].len() {
                let ci = self.occ[watch][k];
                k += 1;
                if !self.contains(ci, p.negate()) {
                    continue;
                }
                let lits = self.clauses[ci].as_ref().expect("validated live");
                let mut unassigned: Option<Lit> = None;
                let mut num_unassigned = 0;
                let mut satisfied = false;
                for &l in lits {
                    match self.value(l) {
                        LBool::True => {
                            satisfied = true;
                            break;
                        }
                        LBool::Undef => {
                            num_unassigned += 1;
                            unassigned = Some(l);
                        }
                        LBool::False => {}
                    }
                }
                if satisfied {
                    continue;
                }
                match num_unassigned {
                    0 => {
                        conflict = true;
                        break 'outer;
                    }
                    1 => {
                        let l = unassigned.expect("counted one unassigned literal");
                        self.fixed[l.var().index()] = LBool::from_bool(l.is_positive());
                        trail.push(l.var());
                        queue.push(l);
                    }
                    _ => {}
                }
            }
        }

        for var in trail {
            self.fixed[var.index()] = LBool::Undef;
        }
        conflict
    }

    /// Bounded variable elimination (pure literals are the zero-resolvent
    /// case). Processes variables in ascending index order for determinism.
    fn bve_pass(&mut self) -> bool {
        // Rebuild occurrence lists from live clauses to drop stale entries.
        for list in &mut self.occ {
            list.clear();
        }
        for (ci, lits) in self.clauses.iter().enumerate() {
            if let Some(lits) = lits {
                for &l in lits {
                    self.occ[l.code()].push(ci);
                }
            }
        }

        let mut changed = false;
        for v in 0..self.num_vars {
            if self.unsat {
                break;
            }
            // Keep the unit queue drained so that pending unit constraints can
            // never be lost by eliminating their variable.
            self.propagate_fixed();
            if self.unsat {
                break;
            }
            if !self.active[v] || self.frozen[v] || self.fixed[v].is_assigned() {
                continue;
            }
            let var = Var::from_index(v as u32);
            let pos = Lit::positive(var);
            let neg = Lit::negative(var);
            let gather = |simp: &Simplifier, lit: Lit| -> Vec<usize> {
                let mut list: Vec<usize> = simp.occ[lit.code()]
                    .iter()
                    .copied()
                    .filter(|&ci| simp.contains(ci, lit))
                    .collect();
                list.sort_unstable();
                list.dedup();
                list
            };
            let pos_list = gather(self, pos);
            let neg_list = gather(self, neg);
            if pos_list.is_empty() && neg_list.is_empty() {
                continue; // unconstrained; nothing to gain
            }
            let limit = self.cfg.bve_occurrence_limit;
            if pos_list.len() > limit || neg_list.len() > limit {
                continue;
            }

            // Generate non-tautological resolvents; bail out if elimination
            // would grow the clause count. A resolvent keeps the positive
            // parent's family and ORs both parents' provenance masks.
            let max_resolvents = pos_list.len() + neg_list.len();
            let mut resolvents: Vec<(Vec<Lit>, u16, u32)> = Vec::new();
            let mut too_many = false;
            'product: for &pi in &pos_list {
                for &ni in &neg_list {
                    let p_lits = self.clauses[pi].as_ref().expect("validated live");
                    let n_lits = self.clauses[ni].as_ref().expect("validated live");
                    let mut res: Vec<Lit> = p_lits.iter().copied().filter(|&l| l != pos).collect();
                    res.extend(n_lits.iter().copied().filter(|&l| l != neg));
                    res.sort_unstable();
                    res.dedup();
                    if res.windows(2).any(|w| w[0] == w[1].negate()) {
                        continue; // tautology
                    }
                    resolvents.push((res, self.meta[pi].0, self.meta[pi].1 | self.meta[ni].1));
                    if resolvents.len() > max_resolvents {
                        too_many = true;
                        break 'product;
                    }
                }
            }
            if too_many {
                continue;
            }

            // Commit: record restoration clauses and reconstruction entries
            // (the smaller side plus a defaulting unit), then swap the
            // variable's clauses for the resolvents.
            let clone_side = |simp: &Simplifier, list: &[usize]| -> Vec<RestoredClause> {
                list.iter()
                    .map(|&ci| RestoredClause {
                        lits: simp.clauses[ci].as_ref().expect("validated live").clone(),
                        family: simp.meta[ci].0,
                        mask: simp.meta[ci].1,
                    })
                    .collect()
            };
            let pos_clauses = clone_side(self, &pos_list);
            let neg_clauses = clone_side(self, &neg_list);
            let mut stack = Vec::new();
            if pos_clauses.len() <= neg_clauses.len() {
                for clause in &pos_clauses {
                    stack.push(ElimEntry {
                        pivot: pos,
                        clause: clause.lits.clone(),
                    });
                }
                stack.push(ElimEntry {
                    pivot: neg,
                    clause: vec![neg],
                });
            } else {
                for clause in &neg_clauses {
                    stack.push(ElimEntry {
                        pivot: neg,
                        clause: clause.lits.clone(),
                    });
                }
                stack.push(ElimEntry {
                    pivot: pos,
                    clause: vec![pos],
                });
            }
            let mut restore = pos_clauses;
            restore.extend(neg_clauses);

            for &ci in pos_list.iter().chain(&neg_list) {
                self.remove_clause(ci);
            }
            self.active[v] = false;
            self.summary.eliminated += 1;
            self.summary.resolvents += resolvents.len() as u64;
            self.ops.push(SimpOp::Eliminate {
                var,
                stack,
                restore,
            });
            for (res, family, mask) in resolvents {
                match res.len() {
                    0 => unreachable!("resolvent of two non-unit clauses is non-empty"),
                    1 => self.enqueue_fix(res[0]),
                    _ => {
                        self.push_clause(res, family, mask);
                    }
                }
            }
            changed = true;
        }
        changed
    }

    /// Runs the configured passes to fixpoint (bounded by `max_rounds`).
    fn run(&mut self) {
        for _round in 0..self.cfg.max_rounds {
            if self.unsat {
                break;
            }
            self.summary.rounds += 1;
            let mut changed = false;
            self.propagate_fixed();
            if self.cfg.equiv && !self.unsat {
                changed |= self.equiv_pass();
                self.propagate_fixed();
            }
            if self.cfg.subsumption && !self.unsat {
                changed |= self.subsumption_pass();
                self.propagate_fixed();
            }
            if self.cfg.probing && !self.unsat {
                changed |= self.probe_pass();
            }
            if self.cfg.bve && !self.unsat {
                changed |= self.bve_pass();
                self.propagate_fixed();
            }
            if !changed || self.unsat {
                break;
            }
        }
        self.propagate_fixed();
    }
}

impl Solver {
    /// Marks `var` as frozen: preprocessing will never eliminate it or
    /// substitute it away (it may still be fixed by unit propagation or
    /// probing). Theory atoms **must** be frozen because the theory attaches
    /// semantics to them that clause-level resolution cannot see.
    pub fn freeze_var(&mut self, var: Var) {
        self.frozen[var.index()] = true;
    }

    /// Whether `var` is currently active (present in the formula, as opposed
    /// to eliminated or substituted away by preprocessing).
    #[must_use]
    pub fn is_active_var(&self, var: Var) -> bool {
        self.var_state[var.index()] == VarState::Active
    }

    /// Resolves `lit` through the equivalent-literal substitution table.
    pub(crate) fn resolve_subst(&self, mut lit: Lit) -> Lit {
        while self.var_state[lit.var().index()] == VarState::Substituted {
            let rep = self.subst[lit.var().index()];
            lit = if lit.is_positive() { rep } else { rep.negate() };
        }
        lit
    }

    /// Re-introduces an eliminated variable by re-adding its stored clauses.
    /// Called when an incremental clause mentions the variable again.
    pub(crate) fn restore_var(&mut self, var: Var) {
        if self.var_state[var.index()] != VarState::Eliminated {
            return;
        }
        self.var_state[var.index()] = VarState::Active;
        self.stats.pp_restored += 1;
        // Drop the variable's reconstruction entries: its value will again be
        // determined by search, and stale entries must not overwrite it.
        self.elim_stack.retain(|e| e.pivot.var() != var);
        self.heap.insert(var);
        let clauses = std::mem::take(&mut self.restore_clauses[var.index()]);
        for clause in clauses {
            self.add_clause_with_provenance(clause.lits, false, clause.family, clause.mask);
        }
    }

    /// Extends `values` (a model of the simplified formula) to a model of the
    /// original formula by replaying the elimination stack newest-first.
    pub(crate) fn reconstruct_model(&self, values: &mut [bool]) {
        for entry in self.elim_stack.iter().rev() {
            let var = entry.pivot.var();
            if self.var_state[var.index()] == VarState::Active {
                continue;
            }
            let satisfied = entry
                .clause
                .iter()
                .any(|l| values[l.var().index()] == l.is_positive());
            if !satisfied {
                values[var.index()] = entry.pivot.is_positive();
            }
        }
    }

    /// Computes a [`FormulaProfile`] of the live problem clauses.
    #[must_use]
    pub fn profile(&self) -> FormulaProfile {
        let mut profile = FormulaProfile {
            variables: self.num_vars() as u64,
            ..FormulaProfile::default()
        };
        for v in 0..self.num_vars() {
            let var = Var::from_index(v as u32);
            if self.var_state[v] == VarState::Active {
                profile.active_variables += 1;
            }
            if self.assignment.value_var(var).is_assigned() {
                profile.fixed_variables += 1;
            }
            if self.frozen[v] {
                profile.frozen_variables += 1;
            }
        }
        let mut histogram: Vec<u64> = Vec::new();
        let mut occurs = vec![[false; 2]; self.num_vars()];
        let mut binary: Vec<[Lit; 2]> = Vec::new();
        for clause in &self.db.clauses {
            if clause.deleted || clause.learnt {
                continue;
            }
            profile.clauses += 1;
            profile.literals += clause.lits.len() as u64;
            match clause.lits.len() {
                2 => {
                    profile.binary_clauses += 1;
                    binary.push([clause.lits[0], clause.lits[1]]);
                }
                3 => profile.ternary_clauses += 1,
                _ => {}
            }
            if histogram.len() <= clause.lits.len() {
                histogram.resize(clause.lits.len() + 1, 0);
            }
            histogram[clause.lits.len()] += 1;
            for &l in &clause.lits {
                occurs[l.var().index()][usize::from(l.is_negative())] = true;
            }
        }
        profile.size_histogram = histogram
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(len, &count)| (len, count))
            .collect();
        for (v, &[pos, neg]) in occurs.iter().enumerate() {
            let var = Var::from_index(v as u32);
            if (pos ^ neg) && !self.assignment.value_var(var).is_assigned() {
                profile.pure_literals += 1;
            }
        }
        let sccs = big_sccs(self.num_vars(), &binary);
        profile.equivalence_classes = sccs.len() as u64;
        profile.equivalent_literals = sccs.iter().map(|s| s.len() as u64).sum();
        profile
    }

    /// Runs the static preprocessing pipeline on the current clause database.
    ///
    /// Invoked automatically at the start of [`Solver::solve`] when enabled;
    /// calling it explicitly is idempotent (the formula is only reprocessed
    /// after new clauses arrive). Returns a summary of the changes made.
    pub fn preprocess(&mut self) -> PreprocessSummary {
        let mut summary = PreprocessSummary::default();
        if !self.ok {
            summary.unsat = true;
            return summary;
        }
        if !self.config.preprocess.enabled || !self.pp_dirty {
            return summary;
        }
        self.cancel_until(0);
        self.model = None;
        if self.propagate().is_some() {
            self.ok = false;
            summary.unsat = true;
            return summary;
        }
        self.pp_dirty = false;

        summary.clauses_before = self.db.num_original as u64;
        summary.literals_before = self.db.literal_count;

        // Extract the live problem clauses, keeping their provenance.
        let originals: Vec<(Vec<Lit>, u16, u32)> = self
            .db
            .clauses
            .iter()
            .filter(|c| !c.deleted && !c.learnt)
            .map(|c| (c.lits.clone(), c.family, c.mask))
            .collect();
        let fixed: Vec<LBool> = (0..self.num_vars())
            .map(|v| self.assignment.value_var(Var::from_index(v as u32)))
            .collect();
        let active: Vec<bool> = self
            .var_state
            .iter()
            .map(|&s| s == VarState::Active)
            .collect();

        let mut simp = Simplifier::new(
            self.config.preprocess.clone(),
            self.num_vars(),
            fixed,
            self.frozen.clone(),
            active,
            originals,
        );
        simp.run();

        summary.rounds = simp.summary.rounds;
        summary.fixed = simp.summary.fixed;
        summary.equivalences = simp.summary.equivalences;
        summary.subsumed = simp.summary.subsumed;
        summary.strengthened = simp.summary.strengthened;
        summary.eliminated = simp.summary.eliminated;
        summary.resolvents = simp.summary.resolvents;
        summary.probes = simp.summary.probes;

        if simp.unsat {
            self.ok = false;
            summary.unsat = true;
            self.record_pp_stats(&summary);
            return summary;
        }

        // Apply the recorded variable operations.
        for op in &simp.ops {
            match op {
                SimpOp::Substitute { var, rep } => {
                    debug_assert_eq!(self.var_state[var.index()], VarState::Active);
                    self.var_state[var.index()] = VarState::Substituted;
                    self.subst[var.index()] = *rep;
                    self.elim_stack.push(ElimEntry {
                        pivot: Lit::positive(*var),
                        clause: vec![Lit::positive(*var), rep.negate()],
                    });
                    self.elim_stack.push(ElimEntry {
                        pivot: Lit::negative(*var),
                        clause: vec![Lit::negative(*var), *rep],
                    });
                }
                SimpOp::Eliminate {
                    var,
                    stack,
                    restore,
                } => {
                    debug_assert_eq!(self.var_state[var.index()], VarState::Active);
                    self.var_state[var.index()] = VarState::Eliminated;
                    self.elim_stack.extend(stack.iter().cloned());
                    self.restore_clauses[var.index()] = restore.clone();
                }
            }
        }

        // Enqueue newly fixed literals at the top level.
        for &lit in &simp.new_fixed {
            debug_assert!(self.is_active_var(lit.var()));
            match self.assignment.value_lit(lit) {
                LBool::Undef => self.enqueue(lit, None),
                LBool::True => {}
                LBool::False => {
                    self.ok = false;
                    summary.unsat = true;
                    self.record_pp_stats(&summary);
                    return summary;
                }
            }
        }

        // Filter learnt clauses: drop any that mention a removed variable
        // (they remain implied by the surviving formula) or that are
        // satisfied at the top level; strip falsified literals.
        let mut kept_learnts: Vec<(Vec<Lit>, u32, f64, u32)> = Vec::new();
        let mut learnt_units: Vec<Lit> = Vec::new();
        for (_, clause) in self.db.live_learnt() {
            if clause
                .lits
                .iter()
                .any(|l| self.var_state[l.var().index()] != VarState::Active)
            {
                continue;
            }
            let mut lits = Vec::with_capacity(clause.lits.len());
            let mut satisfied = false;
            for &l in &clause.lits {
                match self.assignment.value_lit(l) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::False => {}
                    LBool::Undef => lits.push(l),
                }
            }
            if satisfied || lits.is_empty() {
                continue;
            }
            if lits.len() == 1 {
                learnt_units.push(lits[0]);
            } else {
                kept_learnts.push((lits, clause.lbd, clause.activity, clause.mask));
            }
        }

        // Rebuild the clause database and watches from scratch, carrying the
        // provenance the simplifier tracked per clause slot.
        self.db = ClauseDb::new();
        self.watches = vec![Vec::new(); 2 * self.num_vars()];
        for (lits, (family, mask)) in simp.clauses.into_iter().zip(simp.meta) {
            let Some(lits) = lits else { continue };
            debug_assert!(lits.len() >= 2);
            let mut clause = Clause::new(lits, false);
            clause.family = family;
            clause.mask = mask;
            let cref = self.db.push(clause);
            self.attach_clause(cref);
        }
        for (lits, lbd, activity, mask) in kept_learnts {
            let mut clause = Clause::new(lits, true);
            clause.lbd = lbd;
            clause.activity = activity;
            clause.mask = mask;
            let cref = self.db.push(clause);
            self.attach_clause(cref);
        }
        // All reasons referenced the old database; the trail is all top-level
        // now, and conflict analysis never looks at level-0 reasons.
        for reason in &mut self.reasons {
            *reason = None;
        }
        for lit in learnt_units {
            if self.assignment.value_lit(lit) == LBool::Undef {
                self.enqueue(lit, None);
            }
        }
        // Re-propagate the whole trail against the rebuilt watch lists.
        self.qhead = 0;

        summary.clauses_after = self.db.num_original as u64;
        summary.literals_after = self.db.literal_count;
        self.record_pp_stats(&summary);
        summary
    }

    fn record_pp_stats(&mut self, summary: &PreprocessSummary) {
        self.stats.pp_rounds += summary.rounds;
        self.stats.pp_fixed += summary.fixed;
        self.stats.pp_equivalences += summary.equivalences;
        self.stats.pp_subsumed += summary.subsumed;
        self.stats.pp_strengthened += summary.strengthened;
        self.stats.pp_eliminated += summary.eliminated;
        self.stats.pp_resolvents += summary.resolvents;
        self.stats.pp_probes += summary.probes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SolveOutcome, SolverConfig};

    fn vars(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn big_sccs_find_equivalences() {
        // x0 ↔ x1 via (¬x0 ∨ x1) ∧ (¬x1 ∨ x0).
        let v0 = Var::from_index(0);
        let v1 = Var::from_index(1);
        let binary = vec![
            [Lit::negative(v0), Lit::positive(v1)],
            [Lit::negative(v1), Lit::positive(v0)],
        ];
        let sccs = big_sccs(2, &binary);
        assert_eq!(sccs.len(), 2, "mirror SCC pair");
        for scc in &sccs {
            assert_eq!(scc.len(), 2);
            assert_ne!(scc[0].var(), scc[1].var());
        }
    }

    #[test]
    fn equivalent_literals_are_substituted() {
        let mut solver = Solver::new();
        let v = vars(&mut solver, 3);
        solver.add_clause([Lit::negative(v[0]), Lit::positive(v[1])]);
        solver.add_clause([Lit::negative(v[1]), Lit::positive(v[0])]);
        solver.add_clause([Lit::positive(v[0]), Lit::positive(v[2])]);
        solver.add_clause([Lit::negative(v[1]), Lit::negative(v[2])]);
        let summary = solver.preprocess();
        assert!(summary.equivalences >= 1, "x0 ≡ x1 should be detected");
        assert_eq!(solver.solve(), SolveOutcome::Sat);
        let m = solver.model().unwrap().clone();
        assert_eq!(m.value(v[0]), m.value(v[1]), "equivalence must hold");
        assert!(m.value(v[0]) || m.value(v[2]));
        assert!(!m.value(v[1]) || !m.value(v[2]));
    }

    #[test]
    fn opposite_literals_in_one_scc_is_unsat() {
        // x0 → x1, x1 → ¬x0, ¬x0 → ¬x1... build x0 ≡ ¬x0 via chain:
        // (¬x0 ∨ x1), (¬x1 ∨ ¬x0) gives x0 → ¬x0, and (x0 ∨ x1), (¬x1 ∨ x0)
        // gives ¬x0 → x0.
        let mut solver = Solver::new();
        let v = vars(&mut solver, 2);
        solver.add_clause([Lit::negative(v[0]), Lit::positive(v[1])]);
        solver.add_clause([Lit::negative(v[1]), Lit::negative(v[0])]);
        solver.add_clause([Lit::positive(v[0]), Lit::positive(v[1])]);
        solver.add_clause([Lit::negative(v[1]), Lit::positive(v[0])]);
        assert_eq!(solver.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn subsumed_clauses_are_removed() {
        let mut solver = Solver::new();
        let v = vars(&mut solver, 3);
        solver.add_clause([Lit::positive(v[0]), Lit::positive(v[1])]);
        solver.add_clause([
            Lit::positive(v[0]),
            Lit::positive(v[1]),
            Lit::positive(v[2]),
        ]);
        // Freeze everything so BVE cannot remove the clauses first.
        for &var in &v {
            solver.freeze_var(var);
        }
        let summary = solver.preprocess();
        assert_eq!(summary.subsumed, 1);
        assert_eq!(summary.clauses_after, 1);
    }

    #[test]
    fn self_subsumption_strengthens() {
        // (a ∨ b) and (¬a ∨ b ∨ c): resolving on a gives (b ∨ c) ⊂ second
        // clause, so ¬a is removed from it.
        let mut solver = Solver::new();
        let v = vars(&mut solver, 3);
        for &var in &v {
            solver.freeze_var(var);
        }
        solver.add_clause([Lit::positive(v[0]), Lit::positive(v[1])]);
        solver.add_clause([
            Lit::negative(v[0]),
            Lit::positive(v[1]),
            Lit::positive(v[2]),
        ]);
        let summary = solver.preprocess();
        assert!(summary.strengthened >= 1);
    }

    #[test]
    fn probing_fixes_failed_literals() {
        // ¬x0 propagates a conflict: (x0 ∨ x1) ∧ (x0 ∨ ¬x1) force x0.
        let mut solver = Solver::new();
        let v = vars(&mut solver, 2);
        for &var in &v {
            solver.freeze_var(var);
        }
        let config = solver.config_mut();
        config.preprocess.bve = false;
        solver.add_clause([Lit::positive(v[0]), Lit::positive(v[1])]);
        solver.add_clause([Lit::positive(v[0]), Lit::negative(v[1])]);
        let summary = solver.preprocess();
        assert!(summary.fixed >= 1, "probing should fix x0: {summary}");
        assert_eq!(solver.solve(), SolveOutcome::Sat);
        assert!(solver.model().unwrap().value(v[0]));
    }

    #[test]
    fn bve_eliminates_and_reconstructs() {
        // x1 is eliminable: (x0 ∨ x1) ∧ (¬x1 ∨ x2) resolves to (x0 ∨ x2).
        let mut solver = Solver::new();
        let v = vars(&mut solver, 3);
        solver.add_clause([Lit::positive(v[0]), Lit::positive(v[1])]);
        solver.add_clause([Lit::negative(v[1]), Lit::positive(v[2])]);
        let summary = solver.preprocess();
        assert!(summary.eliminated >= 1);
        assert_eq!(solver.solve(), SolveOutcome::Sat);
        let m = solver.model().unwrap();
        // The reconstructed model must satisfy the *original* clauses.
        assert!(m.value(v[0]) || m.value(v[1]));
        assert!(!m.value(v[1]) || m.value(v[2]));
    }

    #[test]
    fn pure_literals_are_eliminated() {
        let mut solver = Solver::new();
        let v = vars(&mut solver, 2);
        solver.add_clause([Lit::positive(v[0]), Lit::positive(v[1])]);
        let summary = solver.preprocess();
        // Both variables are pure; eliminating either satisfies the clause.
        assert!(summary.eliminated >= 1);
        assert_eq!(solver.solve(), SolveOutcome::Sat);
        let m = solver.model().unwrap();
        assert!(m.value(v[0]) || m.value(v[1]));
    }

    #[test]
    fn frozen_vars_survive_preprocessing() {
        let mut solver = Solver::new();
        let v = vars(&mut solver, 2);
        solver.freeze_var(v[0]);
        solver.freeze_var(v[1]);
        solver.add_clause([Lit::positive(v[0]), Lit::positive(v[1])]);
        let summary = solver.preprocess();
        assert_eq!(summary.eliminated, 0);
        assert!(solver.is_active_var(v[0]));
        assert!(solver.is_active_var(v[1]));
    }

    #[test]
    fn incremental_clause_restores_eliminated_var() {
        let mut solver = Solver::new();
        let v = vars(&mut solver, 3);
        solver.add_clause([Lit::positive(v[0]), Lit::positive(v[1])]);
        solver.add_clause([Lit::negative(v[1]), Lit::positive(v[2])]);
        assert_eq!(solver.solve(), SolveOutcome::Sat);
        // Force each variable in turn through blocking clauses; models must
        // keep satisfying the original formula.
        for _ in 0..4 {
            let m = solver.model().unwrap().clone();
            assert!(m.value(v[0]) || m.value(v[1]), "(x0 ∨ x1) violated");
            assert!(!m.value(v[1]) || m.value(v[2]), "(¬x1 ∨ x2) violated");
            let blocking: Vec<Lit> = v.iter().map(|&var| Lit::new(var, m.value(var))).collect();
            solver.add_clause(blocking);
            if solver.solve() == SolveOutcome::Unsat {
                break;
            }
        }
    }

    #[test]
    fn blocking_clause_enumeration_counts_all_models() {
        // Preprocessing must not change the *number* of models over the
        // original variables when enumerating with blocking clauses.
        let mut solver = Solver::new();
        let v = vars(&mut solver, 3);
        solver.add_clause([
            Lit::positive(v[0]),
            Lit::positive(v[1]),
            Lit::positive(v[2]),
        ]);
        let mut count = 0;
        while solver.solve() == SolveOutcome::Sat {
            count += 1;
            assert!(count <= 7, "enumerated too many models");
            let m = solver.model().unwrap().clone();
            let blocking: Vec<Lit> = v.iter().map(|&var| Lit::new(var, m.value(var))).collect();
            solver.add_clause(blocking);
        }
        assert_eq!(count, 7);
    }

    #[test]
    fn preprocess_is_idempotent_until_new_clauses() {
        let mut solver = Solver::new();
        let v = vars(&mut solver, 2);
        solver.add_clause([Lit::positive(v[0]), Lit::positive(v[1])]);
        let first = solver.preprocess();
        assert!(first.rounds > 0);
        let second = solver.preprocess();
        assert_eq!(second.rounds, 0, "no new clauses, nothing to do");
        solver.add_clause([Lit::negative(v[0]), Lit::positive(v[1])]);
        let third = solver.preprocess();
        assert!(third.rounds > 0);
    }

    #[test]
    fn disabled_preprocessing_changes_nothing() {
        let mut config = SolverConfig::default();
        config.preprocess.enabled = false;
        let mut solver = Solver::with_config(config);
        let v = vars(&mut solver, 2);
        solver.add_clause([Lit::positive(v[0]), Lit::positive(v[1])]);
        let summary = solver.preprocess();
        assert_eq!(summary, PreprocessSummary::default());
        assert_eq!(solver.stats().pp_eliminated, 0);
    }

    #[test]
    fn profile_reports_structure() {
        let mut solver = Solver::new();
        let v = vars(&mut solver, 4);
        solver.freeze_var(v[3]);
        solver.add_clause([Lit::positive(v[0]), Lit::positive(v[1])]);
        solver.add_clause([Lit::negative(v[0]), Lit::positive(v[1])]);
        solver.add_clause([
            Lit::positive(v[1]),
            Lit::positive(v[2]),
            Lit::positive(v[3]),
        ]);
        let profile = solver.profile();
        assert_eq!(profile.variables, 4);
        assert_eq!(profile.clauses, 3);
        assert_eq!(profile.binary_clauses, 2);
        assert_eq!(profile.ternary_clauses, 1);
        assert_eq!(profile.literals, 7);
        assert_eq!(profile.frozen_variables, 1);
        // x1, x2, x3 occur only positively.
        assert_eq!(profile.pure_literals, 3);
        assert_eq!(profile.size_histogram, vec![(2, 2), (3, 1)]);
        let rendered = profile.to_string();
        assert!(rendered.contains("clauses: 3"));
    }

    #[test]
    fn preprocessing_agrees_with_brute_force_on_random_cnfs() {
        // Differential test: preprocessing on vs. off must agree on
        // satisfiability, and reconstructed models must satisfy the original
        // clauses. Mirrors the xorshift harness used elsewhere in the crate.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for instance in 0..40 {
            let num_vars = 9;
            let num_clauses = 30 + (next() % 15) as usize;
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..num_clauses {
                let len = 1 + (next() % 3) as usize;
                let mut clause = Vec::new();
                for _ in 0..len {
                    clause.push(((next() % num_vars as u64) as usize, next() % 2 == 0));
                }
                clauses.push(clause);
            }

            let run = |enabled: bool| {
                let mut config = SolverConfig::default();
                config.preprocess.enabled = enabled;
                let mut solver = Solver::with_config(config);
                let vs: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
                for clause in &clauses {
                    solver.add_clause(clause.iter().map(|&(v, neg)| Lit::new(vs[v], neg)));
                }
                let outcome = solver.solve();
                let model = solver.model().cloned();
                (outcome, model, vs)
            };
            let (on, on_model, vs) = run(true);
            let (off, _, _) = run(false);
            assert_eq!(on, off, "equisatisfiability violated (instance {instance})");
            if let Some(m) = on_model {
                for clause in &clauses {
                    assert!(
                        clause.iter().any(|&(v, neg)| m.value(vs[v]) != neg),
                        "reconstructed model violates original clause (instance {instance})"
                    );
                }
            }
        }
    }

    #[test]
    fn summary_display_mentions_counts() {
        let summary = PreprocessSummary {
            rounds: 2,
            fixed: 3,
            eliminated: 4,
            ..PreprocessSummary::default()
        };
        let s = summary.to_string();
        assert!(s.contains("rounds=2"));
        assert!(s.contains("fixed=3"));
        assert!(s.contains("eliminated=4"));
    }
}
