//! Static analysis of a DIMACS CNF instance.
//!
//! Usage:
//! `cargo run --release -p isopredict-sat --bin sat_analyze -- [--check] FILE...`
//!
//! For each file, prints the structural profile of the formula (size
//! histogram, pure literals, binary-implication equivalence classes), runs
//! the preprocessing pipeline, and prints the simplification delta and the
//! profile of the simplified formula.
//!
//! With `--check`, runs a self-test instead of the report: the instance is
//! solved twice, with preprocessing on and off, the two verdicts must agree,
//! and any model must satisfy every original clause. Exit status is nonzero
//! on a parse error or a failed check, which makes the flag suitable for CI
//! over golden fixtures.

use std::process::ExitCode;

use isopredict_sat::{parse_dimacs, Lit, SolveOutcome, Solver, SolverConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if files.is_empty() {
        eprintln!("usage: sat_analyze [--check] FILE...");
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for path in files {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("{path}: {error}");
                failed = true;
                continue;
            }
        };
        let (num_vars, clauses) = match parse_dimacs(&text) {
            Ok(parsed) => parsed,
            Err(error) => {
                eprintln!("{path}: {error}");
                failed = true;
                continue;
            }
        };
        if check {
            failed |= !run_check(path, num_vars, &clauses);
        } else {
            report(path, num_vars, &clauses);
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Builds a solver over the parsed instance, with or without preprocessing.
fn load(num_vars: usize, clauses: &[Vec<Lit>], preprocess: bool) -> Solver {
    let mut config = SolverConfig::default();
    config.preprocess.enabled = preprocess;
    let mut solver = Solver::with_config(config);
    for _ in 0..num_vars {
        solver.new_var();
    }
    for clause in clauses {
        solver.add_clause(clause.iter().copied());
    }
    solver
}

/// The human-readable report: profile, simplification delta, profile again.
fn report(path: &str, num_vars: usize, clauses: &[Vec<Lit>]) {
    let mut solver = load(num_vars, clauses, true);
    println!("{path}");
    println!("  before:\n    {}", indent(&solver.profile()));
    let summary = solver.preprocess();
    println!("  preprocess: {summary}");
    println!("  after:\n    {}", indent(&solver.profile()));
}

/// Re-indents a multi-line `Display` value for nesting under a heading.
fn indent(value: &impl std::fmt::Display) -> String {
    value.to_string().trim_end().replace('\n', "\n    ")
}

/// The `--check` mode: preprocessing must preserve the verdict and produce
/// models that satisfy the original clauses.
fn run_check(path: &str, num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    let mut plain = load(num_vars, clauses, false);
    let mut preprocessed = load(num_vars, clauses, true);
    let plain_outcome = plain.solve();
    let pp_outcome = preprocessed.solve();
    if plain_outcome != pp_outcome {
        eprintln!(
            "{path}: FAIL: verdict changed by preprocessing ({plain_outcome:?} vs {pp_outcome:?})"
        );
        return false;
    }
    for (label, solver) in [("plain", &plain), ("preprocessed", &preprocessed)] {
        if let Some(model) = solver.model() {
            for (index, clause) in clauses.iter().enumerate() {
                let satisfied = clause
                    .iter()
                    .any(|&lit| model.value(lit.var()) != lit.is_negative());
                if !satisfied {
                    eprintln!("{path}: FAIL: {label} model violates original clause {index}");
                    return false;
                }
            }
        }
    }
    let verdict = match pp_outcome {
        SolveOutcome::Sat => "sat",
        SolveOutcome::Unsat => "unsat",
        SolveOutcome::Unknown => "unknown",
    };
    println!(
        "{path}: ok ({verdict}, {} vars, {} clauses, pp agrees, models valid)",
        num_vars,
        clauses.len()
    );
    true
}
