//! First-UIP conflict analysis and clause minimization.

use crate::literal::Lit;
use crate::solver::Solver;

impl Solver {
    /// Analyzes a conflict described by `conflict` (a clause whose literals
    /// are all currently false) and produces a learnt clause.
    ///
    /// Returns `(learnt, backtrack_level, lbd)` where `learnt[0]` is the
    /// asserting literal. The caller must ensure that at least one literal of
    /// `conflict` was assigned at the current decision level (backtracking to
    /// the maximum assignment level of the conflict first if necessary; see
    /// [`Solver::backtrack_to_conflict_level`]).
    pub(crate) fn analyze_lits(&mut self, conflict: &[Lit]) -> (Vec<Lit>, u32, u32) {
        let current_level = self.assignment.decision_level();
        debug_assert!(current_level > 0, "conflicts at level 0 mean UNSAT");

        let mut learnt: Vec<Lit> = vec![Lit::positive(crate::Var::from_index(0))]; // placeholder for UIP
        let mut counter = 0usize; // literals of the current level still to resolve
        let mut trail_index = self.assignment.trail.len();
        let mut pending: Vec<Lit> = conflict.to_vec();
        let mut marked: Vec<crate::Var> = Vec::new();

        let uip = loop {
            for &lit in &pending {
                let var = lit.var();
                if self.seen[var.index()] || self.assignment.level(var) == 0 {
                    continue;
                }
                self.seen[var.index()] = true;
                marked.push(var);
                self.bump_var(var);
                if self.assignment.level(var) == current_level {
                    counter += 1;
                } else {
                    learnt.push(lit);
                }
            }

            // Walk the trail backwards to the next marked literal of the
            // current decision level.
            let next = loop {
                debug_assert!(trail_index > 0, "ran out of trail during analysis");
                trail_index -= 1;
                let lit = self.assignment.trail[trail_index];
                if self.seen[lit.var().index()] && self.assignment.level(lit.var()) == current_level
                {
                    break lit;
                }
            };

            self.seen[next.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break next;
            }

            let reason = self.reasons[next.var().index()]
                .expect("non-decision literal at current level has a reason");
            self.bump_clause(reason);
            // Provenance: the conflict's derivation involves every clause
            // resolved on (see crate::flight).
            self.analysis_mask |= self.db.get(reason).mask;
            let reason_lits = self.db.get(reason).lits.clone();
            pending.clear();
            for l in reason_lits {
                if l != next {
                    pending.push(l);
                }
            }
        };

        learnt[0] = uip.negate();

        self.minimize_learnt(&mut learnt);

        // Compute the backtrack level: the second-highest level in the clause.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_idx = 1;
            let mut max_level = self.assignment.level(learnt[1].var());
            for (i, lit) in learnt.iter().enumerate().skip(2) {
                let level = self.assignment.level(lit.var());
                if level > max_level {
                    max_level = level;
                    max_idx = i;
                }
            }
            learnt.swap(1, max_idx);
            max_level
        };

        let lbd = self.compute_lbd(&learnt);

        // Clear every `seen` marker set during this analysis (including those
        // on literals that clause minimization removed).
        for var in marked {
            self.seen[var.index()] = false;
        }

        (learnt, backtrack_level, lbd)
    }

    /// If every literal of `conflict` was assigned below the current decision
    /// level (possible for theory conflicts discovered lazily), backtrack to
    /// the highest assignment level appearing in the conflict so that the
    /// standard analysis invariant holds. Returns that level.
    pub(crate) fn conflict_level(&self, conflict: &[Lit]) -> u32 {
        conflict
            .iter()
            .map(|l| self.assignment.level(l.var()))
            .max()
            .unwrap_or(0)
    }

    /// Removes literals that are implied by the rest of the clause (simple
    /// self-subsumption: a literal is redundant if every literal of its reason
    /// clause is already in the learnt clause or at level 0).
    fn minimize_learnt(&mut self, learnt: &mut Vec<Lit>) {
        let original = learnt.clone();
        let in_clause: Vec<Lit> = original.clone();
        learnt.retain(|&lit| {
            if lit == original[0] {
                return true; // never drop the asserting literal
            }
            match self.reasons[lit.var().index()] {
                None => true,
                Some(reason) => {
                    let reason_lits = &self.db.get(reason).lits;
                    !reason_lits.iter().all(|&rl| {
                        rl == lit.negate()
                            || self.assignment.level(rl.var()) == 0
                            || in_clause.contains(&rl)
                    })
                }
            }
        });
    }

    /// Literal-block distance: the number of distinct decision levels in a clause.
    pub(crate) fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits
            .iter()
            .map(|l| self.assignment.level(l.var()))
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    /// Ensures the current decision level matches the highest level appearing
    /// in `conflict`, backtracking (and informing the theory) if needed.
    pub(crate) fn backtrack_to_conflict_level<T: crate::Theory>(
        &mut self,
        conflict: &[Lit],
        theory: &mut T,
    ) -> u32 {
        let level = self.conflict_level(conflict);
        if level < self.assignment.decision_level() {
            self.cancel_until(level);
            theory.backtrack_to(level);
        }
        level
    }
}

#[cfg(test)]
mod tests {
    use crate::{Lit, SolveOutcome, Solver, Var};

    /// Random 3-SAT instances near the satisfiability threshold exercise the
    /// conflict-analysis machinery; we cross-check the solver's answer against
    /// brute force.
    #[test]
    fn random_3sat_agrees_with_brute_force() {
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };

        for instance in 0..30 {
            let num_vars = 8;
            let num_clauses = 36;
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..num_clauses {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let v = (next() % num_vars as u64) as usize;
                    let neg = next() % 2 == 0;
                    clause.push((v, neg));
                }
                clauses.push(clause);
            }

            // Brute-force satisfiability.
            let mut brute_sat = false;
            'outer: for assignment in 0u32..(1 << num_vars) {
                for clause in &clauses {
                    let ok = clause
                        .iter()
                        .any(|&(v, neg)| ((assignment >> v) & 1 == 1) != neg);
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }

            let mut solver = Solver::new();
            let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
            for clause in &clauses {
                solver.add_clause(clause.iter().map(|&(v, neg)| Lit::new(vars[v], neg)));
            }
            let outcome = solver.solve();
            match outcome {
                SolveOutcome::Sat => {
                    assert!(
                        brute_sat,
                        "solver said SAT, brute force says UNSAT (instance {instance})"
                    );
                    let m = solver.model().unwrap();
                    for clause in &clauses {
                        assert!(
                            clause.iter().any(|&(v, neg)| m.value(vars[v]) != neg),
                            "model does not satisfy clause (instance {instance})"
                        );
                    }
                }
                SolveOutcome::Unsat => {
                    assert!(
                        !brute_sat,
                        "solver said UNSAT, brute force says SAT (instance {instance})"
                    );
                }
                SolveOutcome::Unknown => panic!("no budget configured"),
            }
        }
    }

    #[test]
    fn learnt_clauses_accumulate_on_hard_instances() {
        // Pigeonhole 4-into-3 forces many conflicts and learnt clauses.
        // Preprocessing is disabled because variable elimination can solve
        // the instance outright, and this test targets conflict analysis.
        let mut config = crate::SolverConfig::default();
        config.preprocess.enabled = false;
        let mut solver = Solver::with_config(config);
        let n = 4;
        let holes = 3;
        let mut p = vec![vec![Var::from_index(0); holes]; n];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = solver.new_var();
            }
        }
        for row in &p {
            solver.add_clause(row.iter().map(|&v| Lit::positive(v)));
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (slot1, slot2) in row1.iter().zip(row2) {
                    solver.add_clause([Lit::negative(*slot1), Lit::negative(*slot2)]);
                }
            }
        }
        assert_eq!(solver.solve(), SolveOutcome::Unsat);
        assert!(solver.stats().conflicts > 0);
    }
}
