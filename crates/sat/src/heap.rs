//! Indexed max-heap over variable activities (VSIDS decision order).

use crate::literal::Var;

/// A binary max-heap keyed by per-variable activity scores, supporting
/// `decrease`/`increase` updates by variable index.
#[derive(Debug, Default, Clone)]
pub(crate) struct ActivityHeap {
    /// Heap of variable indices.
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    positions: Vec<usize>,
    /// Activity score per variable.
    activity: Vec<f64>,
}

const ABSENT: usize = usize::MAX;

impl ActivityHeap {
    pub(crate) fn new() -> Self {
        ActivityHeap::default()
    }

    pub(crate) fn grow_to(&mut self, num_vars: usize) {
        while self.positions.len() < num_vars {
            let var = self.positions.len() as u32;
            self.positions.push(ABSENT);
            self.activity.push(0.0);
            self.insert(Var::from_index(var));
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn activity(&self, var: Var) -> f64 {
        self.activity[var.index()]
    }

    pub(crate) fn contains(&self, var: Var) -> bool {
        self.positions[var.index()] != ABSENT
    }

    pub(crate) fn insert(&mut self, var: Var) {
        if self.contains(var) {
            return;
        }
        let pos = self.heap.len();
        self.heap.push(var.raw());
        self.positions[var.index()] = pos;
        self.sift_up(pos);
    }

    pub(crate) fn pop_max(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("heap non-empty");
        self.positions[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.positions[last as usize] = 0;
            self.sift_down(0);
        }
        Some(Var::from_index(top))
    }

    pub(crate) fn bump(&mut self, var: Var, amount: f64) -> f64 {
        self.activity[var.index()] += amount;
        let new = self.activity[var.index()];
        if self.contains(var) {
            self.sift_up(self.positions[var.index()]);
        }
        new
    }

    /// Rescales all activities by `factor` (used to avoid floating-point
    /// overflow when scores become very large).
    pub(crate) fn rescale(&mut self, factor: f64) {
        for a in &mut self.activity {
            *a *= factor;
        }
    }

    fn less(&self, a: usize, b: usize) -> bool {
        self.activity[self.heap[a] as usize] < self.activity[self.heap[b] as usize]
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.positions[self.heap[a] as usize] = a;
        self.positions[self.heap[b] as usize] = b;
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.less(parent, pos) {
                self.swap(parent, pos);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let left = 2 * pos + 1;
            let right = 2 * pos + 2;
            let mut largest = pos;
            if left < self.heap.len() && self.less(largest, left) {
                largest = left;
            }
            if right < self.heap.len() && self.less(largest, right) {
                largest = right;
            }
            if largest == pos {
                break;
            }
            self.swap(pos, largest);
            pos = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let mut heap = ActivityHeap::new();
        heap.grow_to(4);
        heap.bump(Var::from_index(2), 3.0);
        heap.bump(Var::from_index(0), 1.0);
        heap.bump(Var::from_index(3), 2.0);
        assert_eq!(heap.pop_max(), Some(Var::from_index(2)));
        assert_eq!(heap.pop_max(), Some(Var::from_index(3)));
        assert_eq!(heap.pop_max(), Some(Var::from_index(0)));
        assert_eq!(heap.pop_max(), Some(Var::from_index(1)));
        assert_eq!(heap.pop_max(), None);
    }

    #[test]
    fn reinsert_after_pop() {
        let mut heap = ActivityHeap::new();
        heap.grow_to(2);
        let v0 = Var::from_index(0);
        let popped = heap.pop_max().expect("non-empty");
        assert!(!heap.contains(popped));
        heap.insert(v0);
        heap.insert(v0); // idempotent
        assert!(heap.contains(v0));
    }

    #[test]
    fn rescale_preserves_order() {
        let mut heap = ActivityHeap::new();
        heap.grow_to(3);
        heap.bump(Var::from_index(1), 1e100);
        heap.bump(Var::from_index(2), 1e50);
        heap.rescale(1e-100);
        assert_eq!(heap.pop_max(), Some(Var::from_index(1)));
        assert_eq!(heap.pop_max(), Some(Var::from_index(2)));
        assert!(heap.activity(Var::from_index(1)) <= 1.0 + f64::EPSILON);
    }
}
