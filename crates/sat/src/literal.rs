//! Propositional variables and literals.

use std::fmt;

/// A propositional variable, identified by a dense non-negative index.
///
/// Variables are created by [`crate::Solver::new_var`]; their indices are
/// allocated consecutively starting from zero, which lets the solver use them
/// directly as array indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from a raw index.
    ///
    /// Intended for trace/DIMACS ingestion and tests; normal clients obtain
    /// variables from [`crate::Solver::new_var`].
    #[must_use]
    pub fn from_index(index: u32) -> Self {
        Var(index)
    }

    /// Returns the dense index of this variable.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` index of this variable.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Internally encoded as `2 * var + sign` so that a literal can index arrays
/// (e.g. watch lists) directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates the positive literal of `var`.
    #[must_use]
    pub fn positive(var: Var) -> Self {
        Lit(var.0 << 1)
    }

    /// Creates the negative literal of `var`.
    #[must_use]
    pub fn negative(var: Var) -> Self {
        Lit((var.0 << 1) | 1)
    }

    /// Creates a literal from a variable and a sign (`true` means negated).
    #[must_use]
    pub fn new(var: Var, negated: bool) -> Self {
        if negated {
            Lit::negative(var)
        } else {
            Lit::positive(var)
        }
    }

    /// Creates a literal from its dense code (`2 * var + sign`).
    #[must_use]
    pub fn from_code(code: u32) -> Self {
        Lit(code)
    }

    /// Returns the dense code of this literal.
    #[must_use]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Returns the variable of this literal.
    #[must_use]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this literal is negated.
    #[must_use]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns `true` if this literal is positive.
    #[must_use]
    pub fn is_positive(self) -> bool {
        !self.is_negative()
    }

    /// Returns the negation of this literal.
    #[must_use]
    pub fn negate(self) -> Self {
        Lit(self.0 ^ 1)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        self.negate()
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = Var::from_index(7);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(n.is_negative());
        assert_eq!(p.negate(), n);
        assert_eq!(n.negate(), p);
        assert_eq!(!p, n);
        assert_eq!(Lit::from_code(p.code() as u32), p);
    }

    #[test]
    fn literal_codes_are_dense() {
        let v0 = Var::from_index(0);
        let v1 = Var::from_index(1);
        assert_eq!(Lit::positive(v0).code(), 0);
        assert_eq!(Lit::negative(v0).code(), 1);
        assert_eq!(Lit::positive(v1).code(), 2);
        assert_eq!(Lit::negative(v1).code(), 3);
    }

    #[test]
    fn display_is_readable() {
        let v = Var::from_index(3);
        assert_eq!(Lit::positive(v).to_string(), "x3");
        assert_eq!(Lit::negative(v).to_string(), "¬x3");
    }

    #[test]
    fn new_respects_sign_flag() {
        let v = Var::from_index(9);
        assert_eq!(Lit::new(v, false), Lit::positive(v));
        assert_eq!(Lit::new(v, true), Lit::negative(v));
    }
}
