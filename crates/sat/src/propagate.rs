//! Two-watched-literal unit propagation.

use crate::assignment::LBool;
use crate::clause::ClauseRef;
use crate::solver::{Solver, Watcher};

impl Solver {
    /// Propagates all enqueued assignments. Returns a conflicting clause if a
    /// clause became falsified, otherwise `None`.
    pub(crate) fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;

        while conflict.is_none() && self.qhead < self.assignment.trail.len() {
            let p = self.assignment.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            // Clauses watching ¬p must be examined because ¬p just became false.
            let mut watchers = std::mem::take(&mut self.watches[p.code()]);
            let mut kept = Vec::with_capacity(watchers.len());
            let mut idx = 0;

            'watchers: while idx < watchers.len() {
                let watcher = watchers[idx];
                idx += 1;

                // Fast path: the blocker literal is already true.
                if self.value(watcher.blocker) == LBool::True {
                    kept.push(watcher);
                    continue;
                }

                let cref = watcher.cref;
                let false_lit = p.negate();

                // Normalize so that the false literal sits at position 1.
                {
                    let clause = self.db.get_mut(cref);
                    if clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                    debug_assert_eq!(clause.lits[1], false_lit);
                }

                let first = self.db.get(cref).lits[0];
                if first != watcher.blocker && self.value(first) == LBool::True {
                    kept.push(Watcher {
                        cref,
                        blocker: first,
                    });
                    continue;
                }

                // Look for a new literal to watch.
                let len = self.db.get(cref).len();
                for k in 2..len {
                    let candidate = self.db.get(cref).lits[k];
                    if self.value(candidate) != LBool::False {
                        let clause = self.db.get_mut(cref);
                        clause.lits.swap(1, k);
                        self.watches[candidate.negate().code()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }

                // No new watch: the clause is unit or conflicting.
                kept.push(Watcher {
                    cref,
                    blocker: first,
                });
                if self.value(first) == LBool::False {
                    // Conflict: keep the remaining watchers untouched and stop.
                    conflict = Some(cref);
                    self.qhead = self.assignment.trail.len();
                    while idx < watchers.len() {
                        kept.push(watchers[idx]);
                        idx += 1;
                    }
                } else {
                    let family = self.db.get(cref).family;
                    self.attribution.propagations_by_family[usize::from(family)] += 1;
                    self.enqueue(first, Some(cref));
                }
            }

            debug_assert!(self.watches[p.code()].is_empty());
            self.watches[p.code()] = kept;
            watchers.clear();
        }

        conflict
    }
}

#[cfg(test)]
mod tests {
    use crate::{Lit, SolveOutcome, Solver};

    #[test]
    fn chain_of_implications_propagates_to_the_end() {
        // x0 ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2) ∧ ... forces everything true.
        let mut solver = Solver::new();
        let vars: Vec<_> = (0..20).map(|_| solver.new_var()).collect();
        solver.add_clause([Lit::positive(vars[0])]);
        for w in vars.windows(2) {
            solver.add_clause([Lit::negative(w[0]), Lit::positive(w[1])]);
        }
        assert_eq!(solver.solve(), SolveOutcome::Sat);
        let model = solver.model().unwrap();
        for &v in &vars {
            assert!(model.value(v));
        }
    }

    #[test]
    fn conflicting_chain_is_unsat() {
        let mut solver = Solver::new();
        let vars: Vec<_> = (0..10).map(|_| solver.new_var()).collect();
        solver.add_clause([Lit::positive(vars[0])]);
        for w in vars.windows(2) {
            solver.add_clause([Lit::negative(w[0]), Lit::positive(w[1])]);
        }
        solver.add_clause([Lit::negative(vars[9])]);
        assert_eq!(solver.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn propagation_counts_are_recorded() {
        let mut solver = Solver::new();
        let a = solver.new_var();
        let b = solver.new_var();
        solver.add_clause([Lit::positive(a)]);
        solver.add_clause([Lit::negative(a), Lit::positive(b)]);
        solver.solve();
        assert!(solver.stats().propagations > 0);
    }
}
