//! The CDCL solver core.

use std::collections::VecDeque;

use crate::assignment::{Assignment, LBool};
use crate::clause::{Clause, ClauseDb, ClauseRef};
use crate::flight::{
    family_bit, FamilyAttribution, Heartbeat, SolverPostmortem, FAMILY_LEARNED, FAMILY_THEORY,
    HEARTBEAT_RING_CAP,
};
use crate::heap::ActivityHeap;
use crate::literal::{Lit, Var};
use crate::model::Model;
use crate::preprocess::{ElimEntry, PreprocessConfig, RestoredClause, VarState};
use crate::stats::SolverStats;
use crate::theory::{NullTheory, Theory, TheoryResult};

/// A callback invoked on every progress heartbeat (see
/// [`Solver::set_heartbeat_hook`]).
pub type HeartbeatHook = Box<dyn FnMut(&Heartbeat) + Send>;

/// Tuning knobs for the solver.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Multiplicative decay applied to variable activities after each conflict.
    pub var_decay: f64,
    /// Multiplicative decay applied to clause activities after each conflict.
    pub clause_decay: f64,
    /// Conflicts per Luby restart unit.
    pub restart_interval: u64,
    /// Initial learnt-clause limit before database reduction triggers.
    pub learnt_limit: usize,
    /// Optional conflict budget. When exceeded the solver returns
    /// [`SolveOutcome::Unknown`].
    pub max_conflicts: Option<u64>,
    /// Enable VSIDS decision ordering (disable to fall back to lowest-index
    /// decisions; exposed for the ablation benchmarks).
    pub use_vsids: bool,
    /// Enable learnt-clause database reduction (exposed for the ablation
    /// benchmarks).
    pub reduce_db: bool,
    /// Static preprocessing pipeline configuration (see
    /// [`crate::PreprocessConfig`]).
    pub preprocess: PreprocessConfig,
    /// Emit a progress [`Heartbeat`] every this many conflicts (`0` disables
    /// heartbeats entirely).
    pub heartbeat_every: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_interval: 100,
            learnt_limit: 4000,
            max_conflicts: None,
            use_vsids: true,
            reduce_db: true,
            preprocess: PreprocessConfig::default(),
            heartbeat_every: 10_000,
        }
    }
}

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveOutcome {
    /// A satisfying assignment was found; retrieve it with [`Solver::model`].
    Sat,
    /// The clause set is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a decision could be reached.
    Unknown,
}

impl SolveOutcome {
    /// Returns `true` for [`SolveOutcome::Sat`].
    #[must_use]
    pub fn is_sat(self) -> bool {
        matches!(self, SolveOutcome::Sat)
    }

    /// Returns `true` for [`SolveOutcome::Unsat`].
    #[must_use]
    pub fn is_unsat(self) -> bool {
        matches!(self, SolveOutcome::Unsat)
    }
}

/// A watched-literal entry: `cref` is watched on the literal whose watch list
/// contains this entry; `blocker` is another literal of the clause that, if
/// true, lets propagation skip the clause without touching it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Watcher {
    pub(crate) cref: ClauseRef,
    pub(crate) blocker: Lit,
}

/// A CDCL SAT solver.
///
/// See the [crate-level documentation](crate) for an example.
pub struct Solver {
    pub(crate) db: ClauseDb,
    pub(crate) assignment: Assignment,
    /// `watches[p.code()]` holds the clauses in which `¬p` is watched, i.e.
    /// the clauses that must be inspected when `p` becomes true.
    pub(crate) watches: Vec<Vec<Watcher>>,
    pub(crate) reasons: Vec<Option<ClauseRef>>,
    pub(crate) heap: ActivityHeap,
    pub(crate) phases: Vec<bool>,
    pub(crate) var_inc: f64,
    pub(crate) cla_inc: f64,
    pub(crate) qhead: usize,
    pub(crate) ok: bool,
    pub(crate) stats: SolverStats,
    pub(crate) config: SolverConfig,
    pub(crate) seen: Vec<bool>,
    pub(crate) model: Option<Model>,
    /// How far along the trail the theory has been notified.
    pub(crate) theory_head: usize,
    /// Variables protected from elimination/substitution (theory atoms).
    pub(crate) frozen: Vec<bool>,
    /// Preprocessing lifecycle state per variable.
    pub(crate) var_state: Vec<VarState>,
    /// Image of the positive literal for substituted variables.
    pub(crate) subst: Vec<Lit>,
    /// Model-reconstruction stack (replayed newest-first).
    pub(crate) elim_stack: Vec<ElimEntry>,
    /// Stored clauses of eliminated variables, for incremental restoration.
    pub(crate) restore_clauses: Vec<Vec<RestoredClause>>,
    /// Whether clauses arrived since the last preprocessing run.
    pub(crate) pp_dirty: bool,
    /// Per-family attribution of solver work (see [`crate::flight`]).
    pub(crate) attribution: FamilyAttribution,
    /// Family tag applied to subsequently added problem clauses.
    pub(crate) emit_family: u16,
    /// Scratch: OR of provenance masks over the clauses resolved on during
    /// the current conflict analysis.
    pub(crate) analysis_mask: u32,
    /// Heartbeat callback, if installed.
    pub(crate) heartbeat_hook: Option<HeartbeatHook>,
    /// Recent heartbeats of the current solve call (bounded ring).
    pub(crate) heartbeat_ring: VecDeque<Heartbeat>,
    /// Heartbeats emitted so far in the current solve call.
    pub(crate) hb_seq: u64,
    /// Conflict count at the last heartbeat (interval trigger).
    pub(crate) hb_last_conflicts: u64,
    /// Conflict count when the current solve call began.
    pub(crate) solve_start_conflicts: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl std::fmt::Debug for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solver")
            .field("variables", &self.num_vars())
            .field("clauses", &self.stats.clauses)
            .field("ok", &self.ok)
            .finish()
    }
}

impl Solver {
    /// Creates an empty solver with default configuration.
    #[must_use]
    pub fn new() -> Self {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates an empty solver with the given configuration.
    #[must_use]
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            db: ClauseDb::new(),
            assignment: Assignment::new(),
            watches: Vec::new(),
            reasons: Vec::new(),
            heap: ActivityHeap::new(),
            phases: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            qhead: 0,
            ok: true,
            stats: SolverStats::default(),
            config,
            seen: Vec::new(),
            model: None,
            theory_head: 0,
            frozen: Vec::new(),
            var_state: Vec::new(),
            subst: Vec::new(),
            elim_stack: Vec::new(),
            restore_clauses: Vec::new(),
            pp_dirty: false,
            attribution: FamilyAttribution::with_reserved(),
            emit_family: crate::flight::FAMILY_DEFAULT,
            analysis_mask: 0,
            heartbeat_hook: None,
            heartbeat_ring: VecDeque::new(),
            hb_seq: 0,
            hb_last_conflicts: 0,
            solve_start_conflicts: 0,
        }
    }

    /// Number of variables created so far.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.assignment.num_vars()
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let var = Var::from_index(self.num_vars() as u32);
        self.assignment.grow_to(self.num_vars() + 1);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.reasons.push(None);
        self.phases.push(false);
        self.seen.push(false);
        self.frozen.push(false);
        self.var_state.push(VarState::Active);
        self.subst.push(Lit::positive(var));
        self.restore_clauses.push(Vec::new());
        self.heap.grow_to(self.num_vars());
        self.stats.variables += 1;
        var
    }

    /// Adds a clause (a disjunction of literals) to the problem.
    ///
    /// Returns `false` if the clause set became trivially unsatisfiable at the
    /// top level (e.g. the clause is empty after simplification, or it
    /// contradicts the current top-level assignment).
    pub fn add_clause<I>(&mut self, lits: I) -> bool
    where
        I: IntoIterator<Item = Lit>,
    {
        if !self.ok {
            return false;
        }
        // Clauses may only be added at the top level; cancel any in-progress
        // search state (this supports incremental use between solve calls).
        if self.assignment.decision_level() > 0 {
            self.cancel_until(0);
        }
        self.model = None;
        self.add_clause_internal(lits.into_iter().collect(), true)
    }

    /// Shared clause-ingestion path. Maps literals through the preprocessing
    /// substitution table, restores eliminated variables the clause mentions,
    /// and simplifies against the top-level assignment. `count_stats` is
    /// `false` for internal re-additions (restored clauses), which must not
    /// inflate the user-facing problem-size counters.
    pub(crate) fn add_clause_internal(&mut self, lits: Vec<Lit>, count_stats: bool) -> bool {
        let family = self.emit_family;
        self.add_clause_with_provenance(lits, count_stats, family, family_bit(family))
    }

    /// Clause ingestion with explicit provenance, used by
    /// [`Solver::restore_var`] to preserve the original family of restored
    /// clauses.
    pub(crate) fn add_clause_with_provenance(
        &mut self,
        lits: Vec<Lit>,
        count_stats: bool,
        family: u16,
        mask: u32,
    ) -> bool {
        self.pp_dirty = true;
        let mut lits: Vec<Lit> = lits
            .into_iter()
            .map(|lit| self.resolve_subst(lit))
            .collect();
        for lit in &lits {
            let var = lit.var();
            if self.var_state[var.index()] == VarState::Eliminated {
                self.restore_var(var);
            }
        }
        lits.sort_unstable();
        lits.dedup();

        // Remove literals that are already false at the top level; detect
        // tautologies and clauses that are already satisfied.
        let mut simplified = Vec::with_capacity(lits.len());
        for (i, &lit) in lits.iter().enumerate() {
            if i + 1 < lits.len() && lits[i + 1] == lit.negate() {
                return true; // tautology: p ∨ ¬p
            }
            match self.assignment.value_lit(lit) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => continue,   // drop top-level-false literal
                LBool::Undef => simplified.push(lit),
            }
        }

        if count_stats {
            self.stats.clauses += 1;
            self.stats.literals += simplified.len() as u64;
            self.attribution.clauses_by_family[usize::from(family)] += 1;
        }

        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(simplified[0], None);
                true
            }
            _ => {
                let mut clause = Clause::new(simplified, false);
                clause.family = family;
                clause.mask = mask;
                let cref = self.db.push(clause);
                self.attach_clause(cref);
                true
            }
        }
    }

    /// Adds a learnt clause; the first literal must be the asserting literal.
    /// The clause inherits the provenance mask accumulated by the conflict
    /// analysis that produced it.
    pub(crate) fn add_learnt_clause(&mut self, lits: Vec<Lit>, lbd: u32) -> Option<ClauseRef> {
        match lits.len() {
            0 => {
                self.ok = false;
                None
            }
            1 => None,
            _ => {
                let mut clause = Clause::new(lits, true);
                clause.lbd = lbd;
                clause.activity = self.cla_inc;
                clause.mask = self.analysis_mask | family_bit(FAMILY_LEARNED);
                let cref = self.db.push(clause);
                self.attach_clause(cref);
                Some(cref)
            }
        }
    }

    pub(crate) fn attach_clause(&mut self, cref: ClauseRef) {
        let (w0, w1) = {
            let clause = self.db.get(cref);
            debug_assert!(clause.lits.len() >= 2);
            (clause.lits[0], clause.lits[1])
        };
        self.watches[w0.negate().code()].push(Watcher { cref, blocker: w1 });
        self.watches[w1.negate().code()].push(Watcher { cref, blocker: w0 });
    }

    pub(crate) fn detach_clause(&mut self, cref: ClauseRef) {
        let (w0, w1) = {
            let clause = self.db.get(cref);
            (clause.lits[0], clause.lits[1])
        };
        self.watches[w0.negate().code()].retain(|w| w.cref != cref);
        self.watches[w1.negate().code()].retain(|w| w.cref != cref);
    }

    /// Assigns `lit` true with an optional reason clause.
    pub(crate) fn enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.assignment.value_lit(lit), LBool::Undef);
        self.reasons[lit.var().index()] = reason;
        self.assignment.assign(lit);
    }

    /// Current value of a literal under the partial assignment.
    pub(crate) fn value(&self, lit: Lit) -> LBool {
        self.assignment.value_lit(lit)
    }

    /// Backtracks to `level`, restoring phases and the decision heap.
    pub(crate) fn cancel_until(&mut self, level: u32) {
        if self.assignment.decision_level() <= level {
            return;
        }
        let removed = self.assignment.backtrack_to(level);
        for lit in removed {
            let var = lit.var();
            self.phases[var.index()] = lit.is_positive();
            self.reasons[var.index()] = None;
            self.heap.insert(var);
        }
        self.qhead = self.assignment.trail.len();
        self.theory_head = self.theory_head.min(self.assignment.trail.len());
    }

    pub(crate) fn bump_var(&mut self, var: Var) {
        let new = self.heap.bump(var, self.var_inc);
        if new > 1e100 {
            self.heap.rescale(1e-100);
            self.var_inc *= 1e-100;
        }
    }

    pub(crate) fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.cla_inc /= self.config.clause_decay;
    }

    pub(crate) fn bump_clause(&mut self, cref: ClauseRef) {
        let inc = self.cla_inc;
        let clause = self.db.get_mut(cref);
        clause.activity += inc;
        if clause.activity > 1e20 {
            for c in &mut self.db.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Picks the next decision literal, or `None` if all variables are assigned.
    pub(crate) fn pick_branch_lit(&mut self) -> Option<Lit> {
        if self.config.use_vsids {
            while let Some(var) = self.heap.pop_max() {
                if self.assignment.value_var(var) == LBool::Undef
                    && self.var_state[var.index()] == VarState::Active
                {
                    return Some(Lit::new(var, !self.phases[var.index()]));
                }
            }
            None
        } else {
            (0..self.num_vars())
                .map(|i| Var::from_index(i as u32))
                .find(|&v| {
                    self.assignment.value_var(v) == LBool::Undef
                        && self.var_state[v.index()] == VarState::Active
                })
                .map(|v| Lit::new(v, !self.phases[v.index()]))
        }
    }

    /// Solves the current clause set without a theory.
    pub fn solve(&mut self) -> SolveOutcome {
        let mut theory = NullTheory;
        self.solve_with_theory(&mut theory)
    }

    /// Solves the current clause set modulo the given theory.
    pub fn solve_with_theory<T: Theory>(&mut self, theory: &mut T) -> SolveOutcome {
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        self.model = None;
        self.cancel_until(0);
        theory.backtrack_to(0);

        // Reset the per-call flight-recorder state: heartbeat seq/ring are
        // scoped to one solve call so post-mortems describe the call that
        // actually exhausted the budget.
        self.solve_start_conflicts = self.stats.conflicts;
        self.hb_last_conflicts = self.stats.conflicts;
        self.hb_seq = 0;
        self.heartbeat_ring.clear();

        if self.config.preprocess.enabled && self.pp_dirty {
            self.preprocess();
            if !self.ok {
                return SolveOutcome::Unsat;
            }
        }

        let start_conflicts = self.stats.conflicts;
        let mut restart_count: u64 = 0;
        let mut learnt_limit = self.config.learnt_limit;

        loop {
            let budget = crate::reduce::luby(restart_count) * self.config.restart_interval;
            match self.search(theory, budget, &mut learnt_limit, start_conflicts) {
                SearchResult::Sat => {
                    let mut values: Vec<bool> = (0..self.num_vars())
                        .map(|i| {
                            self.assignment.value_var(Var::from_index(i as u32)) == LBool::True
                        })
                        .collect();
                    // Extend the assignment over eliminated/substituted
                    // variables before anyone (including the theory's final
                    // check) reads the model.
                    self.reconstruct_model(&mut values);
                    let model = Model::from_values(values);
                    // Give the theory a last chance to veto the assignment.
                    match theory.final_check(&model) {
                        TheoryResult::Consistent => {
                            self.model = Some(model);
                            self.cancel_until(0);
                            theory.backtrack_to(0);
                            return SolveOutcome::Sat;
                        }
                        TheoryResult::Conflict(clause) => {
                            self.stats.theory_conflicts += 1;
                            if !self.handle_theory_conflict(clause, theory) {
                                return SolveOutcome::Unsat;
                            }
                        }
                    }
                }
                SearchResult::Unsat => {
                    self.ok = false;
                    return SolveOutcome::Unsat;
                }
                SearchResult::Restart => {
                    restart_count += 1;
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                    theory.backtrack_to(0);
                    self.theory_head = self.theory_head.min(self.assignment.trail.len());
                }
                SearchResult::Budget => {
                    self.cancel_until(0);
                    theory.backtrack_to(0);
                    return SolveOutcome::Unknown;
                }
            }
        }
    }

    /// Retrieves the model found by the last successful [`Solver::solve`] call.
    #[must_use]
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Mutable access to the configuration, e.g. to adjust the conflict
    /// budget between incremental [`Solver::solve`] calls.
    pub fn config_mut(&mut self) -> &mut SolverConfig {
        &mut self.config
    }

    /// Returns `false` if the clause set is already known to be unsatisfiable.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    // ------------------------------------------------------------------
    // Flight recorder (see crate::flight)
    // ------------------------------------------------------------------

    /// Interns a clause family name and returns its id (existing names keep
    /// their id). Ids `0..=2` are reserved for `default`, `learned`, and
    /// `theory`.
    pub fn intern_family(&mut self, name: &str) -> u16 {
        if let Some(id) = self.attribution.families.iter().position(|f| f == name) {
            return id as u16;
        }
        self.attribution.push_family(name)
    }

    /// Tags every subsequently added problem clause with `family` (an id
    /// from [`Solver::intern_family`]) until changed again.
    ///
    /// # Panics
    ///
    /// Panics if `family` was never interned.
    pub fn set_emit_family(&mut self, family: u16) {
        assert!(
            usize::from(family) < self.attribution.families.len(),
            "family id {family} was never interned"
        );
        self.emit_family = family;
    }

    /// The family currently applied to added clauses.
    #[must_use]
    pub fn emit_family(&self) -> u16 {
        self.emit_family
    }

    /// The interned family names; the index of a name is its id.
    #[must_use]
    pub fn families(&self) -> &[String] {
        &self.attribution.families
    }

    /// The per-family attribution of solver work accumulated so far.
    #[must_use]
    pub fn attribution(&self) -> &FamilyAttribution {
        &self.attribution
    }

    /// Installs (or clears) the heartbeat callback. The hook fires inside
    /// the search loop every [`SolverConfig::heartbeat_every`] conflicts;
    /// keep it cheap.
    pub fn set_heartbeat_hook(&mut self, hook: Option<HeartbeatHook>) {
        self.heartbeat_hook = hook;
    }

    /// The heartbeats retained from the most recent solve call, oldest
    /// first (bounded ring).
    #[must_use]
    pub fn heartbeats(&self) -> Vec<Heartbeat> {
        self.heartbeat_ring.iter().cloned().collect()
    }

    /// Captures a post-mortem of the most recent solve call: final
    /// attribution plus the retained heartbeats. Most useful after
    /// [`SolveOutcome::Unknown`], but callable any time.
    #[must_use]
    pub fn postmortem(&self) -> SolverPostmortem {
        SolverPostmortem {
            budget: self.config.max_conflicts,
            conflicts_in_call: self
                .stats
                .conflicts
                .saturating_sub(self.solve_start_conflicts),
            stats: self.stats,
            attribution: self.attribution.clone(),
            heartbeats: self.heartbeats(),
        }
    }

    /// Credits every family whose provenance bit is set in the accumulated
    /// `analysis_mask` with an involved conflict (and, when a clause was
    /// learnt from it, with a learned ancestor).
    fn record_conflict_involvement(&mut self, learned: bool) {
        let mask = self.analysis_mask;
        for id in 0..self.attribution.families.len() {
            if mask & family_bit(id as u16) != 0 {
                self.attribution.conflicts_involving[id] += 1;
                if learned {
                    self.attribution.learned_ancestry[id] += 1;
                }
            }
        }
    }

    /// Emits a heartbeat if at least `heartbeat_every` conflicts have
    /// accumulated since the last one. Called once per conflict, after the
    /// learnt clause is attached and the solver has backtracked.
    fn maybe_heartbeat(&mut self) {
        let every = self.config.heartbeat_every;
        if every == 0 || self.stats.conflicts < self.hb_last_conflicts + every {
            return;
        }
        self.hb_last_conflicts = self.stats.conflicts;
        self.hb_seq += 1;
        // Level-0 assignments always form a prefix of the trail, bounded by
        // the first decision marker (or the whole trail if none).
        let vars_assigned_at_root = self
            .assignment
            .trail_lim
            .first()
            .copied()
            .unwrap_or(self.assignment.trail.len()) as u64;
        let heartbeat = Heartbeat {
            seq: self.hb_seq,
            conflicts: self.stats.conflicts,
            decisions: self.stats.decisions,
            propagations: self.stats.propagations,
            restarts: self.stats.restarts,
            trail_depth: self.assignment.trail.len() as u64,
            learnt_clauses: self.db.num_learnt as u64,
            vars_assigned_at_root,
            total_vars: self.num_vars() as u64,
            conflicts_by_family: self.attribution.conflicts_by_family.clone(),
        };
        if self.heartbeat_ring.len() == HEARTBEAT_RING_CAP {
            self.heartbeat_ring.pop_front();
        }
        self.heartbeat_ring.push_back(heartbeat.clone());
        if let Some(hook) = self.heartbeat_hook.as_mut() {
            hook(&heartbeat);
        }
    }

    /// Handles a conflict clause reported by the theory. Returns `false` if
    /// the problem became unsatisfiable.
    pub(crate) fn handle_theory_conflict<T: Theory>(
        &mut self,
        clause: Vec<Lit>,
        theory: &mut T,
    ) -> bool {
        self.stats.conflicts += 1;
        self.attribution.conflicts_by_family[usize::from(FAMILY_THEORY)] += 1;
        self.analysis_mask = family_bit(FAMILY_THEORY);
        debug_assert!(
            clause
                .iter()
                .all(|&l| self.assignment.value_lit(l) == LBool::False),
            "theory conflict clause must be falsified"
        );
        // A lazily-discovered theory conflict may consist entirely of literals
        // assigned below the current decision level; realign first.
        let level = self.backtrack_to_conflict_level(&clause, theory);
        if level == 0 {
            self.record_conflict_involvement(false);
            self.ok = false;
            return false;
        }
        let (learnt, backtrack_level, lbd) = self.analyze_lits(&clause);
        self.record_conflict_involvement(true);
        self.cancel_until(backtrack_level);
        theory.backtrack_to(backtrack_level);
        let asserting = learnt[0];
        let cref = self.add_learnt_clause(learnt, lbd);
        if !self.ok {
            return false;
        }
        if self.assignment.value_lit(asserting) == LBool::Undef {
            self.enqueue(asserting, cref);
        }
        self.decay_activities();
        self.maybe_heartbeat();
        true
    }
}

/// Outcome of one restart-bounded search episode.
pub(crate) enum SearchResult {
    Sat,
    Unsat,
    Restart,
    Budget,
}

impl Solver {
    /// Runs CDCL search until a model is found, unsatisfiability is proven,
    /// the restart budget is exhausted, or the global conflict budget is hit.
    pub(crate) fn search<T: Theory>(
        &mut self,
        theory: &mut T,
        restart_budget: u64,
        learnt_limit: &mut usize,
        start_conflicts: u64,
    ) -> SearchResult {
        let mut conflicts_this_restart: u64 = 0;

        loop {
            let conflict = self.propagate();

            if let Some(conflicting) = conflict {
                self.stats.conflicts += 1;
                conflicts_this_restart += 1;
                let (conflict_family, conflict_mask) = {
                    let clause = self.db.get(conflicting);
                    (clause.family, clause.mask)
                };
                self.attribution.conflicts_by_family[usize::from(conflict_family)] += 1;
                self.analysis_mask = conflict_mask;

                if self.assignment.decision_level() == 0 {
                    self.record_conflict_involvement(false);
                    return SearchResult::Unsat;
                }

                let conflict_lits: Vec<Lit> = self.db.get(conflicting).lits.clone();
                self.bump_clause(conflicting);
                let (learnt, backtrack_level, lbd) = self.analyze_lits(&conflict_lits);
                self.record_conflict_involvement(true);
                self.cancel_until(backtrack_level);
                theory.backtrack_to(backtrack_level);
                let asserting = learnt[0];
                let cref = self.add_learnt_clause(learnt, lbd);
                if !self.ok {
                    return SearchResult::Unsat;
                }
                self.enqueue(asserting, cref);
                self.decay_activities();
                self.maybe_heartbeat();

                if let Some(max) = self.config.max_conflicts {
                    if self.stats.conflicts - start_conflicts >= max {
                        return SearchResult::Budget;
                    }
                }
                if conflicts_this_restart >= restart_budget {
                    return SearchResult::Restart;
                }
                continue;
            }

            // Propagation reached a fixpoint; notify the theory about any
            // literals it has not seen yet.
            if let Some(clause) = self.notify_theory(theory) {
                self.stats.theory_conflicts += 1;
                conflicts_this_restart += 1;
                if !self.handle_theory_conflict(clause, theory) {
                    return SearchResult::Unsat;
                }
                if let Some(max) = self.config.max_conflicts {
                    if self.stats.conflicts - start_conflicts >= max {
                        return SearchResult::Budget;
                    }
                }
                if conflicts_this_restart >= restart_budget {
                    return SearchResult::Restart;
                }
                continue;
            }

            if self.config.reduce_db && self.db.num_learnt > *learnt_limit {
                self.reduce_learnt_db();
                *learnt_limit += *learnt_limit / 10;
            }

            match self.pick_branch_lit() {
                None => return SearchResult::Sat,
                Some(lit) => {
                    self.stats.decisions += 1;
                    self.assignment.new_decision_level();
                    self.enqueue(lit, None);
                }
            }
        }
    }

    /// Pushes trail literals the theory has not yet seen. Returns a conflict
    /// clause if the theory detects inconsistency.
    fn notify_theory<T: Theory>(&mut self, theory: &mut T) -> Option<Vec<Lit>> {
        while self.theory_head < self.assignment.trail.len() {
            let lit = self.assignment.trail[self.theory_head];
            self.theory_head += 1;
            let level = self.assignment.level(lit.var());
            match theory.assert_literal(lit, level) {
                TheoryResult::Consistent => {}
                TheoryResult::Conflict(clause) => return Some(clause),
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(solver_vars: &[Var], i: usize, neg: bool) -> Lit {
        Lit::new(solver_vars[i], neg)
    }

    fn new_vars(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn empty_problem_is_sat() {
        let mut solver = Solver::new();
        assert_eq!(solver.solve(), SolveOutcome::Sat);
    }

    #[test]
    fn unit_clauses_propagate() {
        let mut solver = Solver::new();
        let vars = new_vars(&mut solver, 2);
        solver.add_clause([lit(&vars, 0, false)]);
        solver.add_clause([lit(&vars, 0, true), lit(&vars, 1, false)]);
        assert_eq!(solver.solve(), SolveOutcome::Sat);
        let model = solver.model().unwrap();
        assert!(model.value(vars[0]));
        assert!(model.value(vars[1]));
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut solver = Solver::new();
        let vars = new_vars(&mut solver, 1);
        solver.add_clause([lit(&vars, 0, false)]);
        solver.add_clause([lit(&vars, 0, true)]);
        assert_eq!(solver.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn simple_3sat_instance_is_sat() {
        let mut solver = Solver::new();
        let v = new_vars(&mut solver, 3);
        solver.add_clause([lit(&v, 0, false), lit(&v, 1, false), lit(&v, 2, false)]);
        solver.add_clause([lit(&v, 0, true), lit(&v, 1, false)]);
        solver.add_clause([lit(&v, 1, true), lit(&v, 2, false)]);
        solver.add_clause([lit(&v, 2, true), lit(&v, 0, true)]);
        let outcome = solver.solve();
        assert_eq!(outcome, SolveOutcome::Sat);
        let m = solver.model().unwrap();
        // Verify the model satisfies every clause.
        assert!(m.value(v[0]) || m.value(v[1]) || m.value(v[2]));
        assert!(!m.value(v[0]) || m.value(v[1]));
        assert!(!m.value(v[1]) || m.value(v[2]));
        assert!(!m.value(v[2]) || !m.value(v[0]));
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // Three pigeons, two holes: var p_{i,j} = pigeon i in hole j.
        let mut solver = Solver::new();
        let mut p = [[Var::from_index(0); 2]; 3];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = solver.new_var();
            }
        }
        // Each pigeon is in some hole.
        for row in &p {
            solver.add_clause([Lit::positive(row[0]), Lit::positive(row[1])]);
        }
        // No two pigeons share a hole.
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (slot1, slot2) in row1.iter().zip(row2) {
                    solver.add_clause([Lit::negative(*slot1), Lit::negative(*slot2)]);
                }
            }
        }
        assert_eq!(solver.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn tautological_clause_is_ignored() {
        let mut solver = Solver::new();
        let v = new_vars(&mut solver, 1);
        solver.add_clause([lit(&v, 0, false), lit(&v, 0, true)]);
        assert_eq!(solver.solve(), SolveOutcome::Sat);
    }

    #[test]
    fn empty_clause_makes_problem_unsat() {
        let mut solver = Solver::new();
        let _ = new_vars(&mut solver, 1);
        assert!(!solver.add_clause(std::iter::empty()));
        assert_eq!(solver.solve(), SolveOutcome::Unsat);
        assert!(!solver.is_ok());
    }

    #[test]
    fn incremental_solving_with_blocking_clauses() {
        // Enumerate all four models of two unconstrained variables by adding
        // blocking clauses, then observe UNSAT.
        let mut solver = Solver::new();
        let v = new_vars(&mut solver, 2);
        let mut count = 0;
        loop {
            match solver.solve() {
                SolveOutcome::Sat => {
                    count += 1;
                    let m = solver.model().unwrap().clone();
                    let blocking: Vec<Lit> =
                        v.iter().map(|&var| Lit::new(var, m.value(var))).collect();
                    solver.add_clause(blocking);
                }
                SolveOutcome::Unsat => break,
                SolveOutcome::Unknown => panic!("unexpected unknown"),
            }
            assert!(count <= 4, "too many models enumerated");
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn conflict_budget_returns_unknown_or_decides() {
        let config = SolverConfig {
            max_conflicts: Some(1),
            ..SolverConfig::default()
        };
        let mut solver = Solver::with_config(config);
        // A modest pigeonhole instance that needs more than one conflict.
        let n = 5;
        let mut p = vec![vec![Var::from_index(0); n - 1]; n];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = solver.new_var();
            }
        }
        for row in &p {
            solver.add_clause(row.iter().map(|&v| Lit::positive(v)));
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (slot1, slot2) in row1.iter().zip(row2) {
                    solver.add_clause([Lit::negative(*slot1), Lit::negative(*slot2)]);
                }
            }
        }
        assert_eq!(solver.solve(), SolveOutcome::Unknown);
    }

    #[test]
    fn naive_decision_order_also_works() {
        let config = SolverConfig {
            use_vsids: false,
            ..SolverConfig::default()
        };
        let mut solver = Solver::with_config(config);
        let v = new_vars(&mut solver, 3);
        solver.add_clause([lit(&v, 0, true), lit(&v, 1, false)]);
        solver.add_clause([lit(&v, 1, true), lit(&v, 2, false)]);
        solver.add_clause([lit(&v, 0, false)]);
        assert_eq!(solver.solve(), SolveOutcome::Sat);
        let m = solver.model().unwrap();
        assert!(m.value(v[0]) && m.value(v[1]) && m.value(v[2]));
    }

    #[test]
    fn stats_reflect_problem_size() {
        let mut solver = Solver::new();
        let v = new_vars(&mut solver, 2);
        solver.add_clause([lit(&v, 0, false), lit(&v, 1, false)]);
        assert_eq!(solver.stats().variables, 2);
        assert_eq!(solver.stats().clauses, 1);
        assert_eq!(solver.stats().literals, 2);
    }
}
