//! Property-based tests of the solver flight recorder: per-family conflict
//! attribution must partition the conflict counter exactly, and heartbeat
//! sequences must be strictly monotone within a solve call.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use isopredict_sat::{Heartbeat, Lit, Solver, SolverConfig, Var};

/// Raw clause material: variable indices are reduced modulo the instance's
/// variable count when the formula is built.
fn cnf_strategy() -> impl Strategy<Value = (usize, Vec<Vec<(u8, bool)>>)> {
    (
        3usize..9,
        prop::collection::vec(prop::collection::vec((0u8..32, any::<bool>()), 1..4), 8..40),
    )
}

/// Builds a solver whose clauses are spread across three interned axiom
/// families (round-robin), exercising the tagging path the encoder uses.
fn build_tagged(
    num_vars: usize,
    raw: &[Vec<(u8, bool)>],
    preprocess: bool,
    max_conflicts: Option<u64>,
    heartbeat_every: u64,
) -> Solver {
    let mut config = SolverConfig::default();
    config.preprocess.enabled = preprocess;
    config.max_conflicts = max_conflicts;
    config.heartbeat_every = heartbeat_every;
    let mut solver = Solver::with_config(config);
    let families = [
        solver.intern_family("feasibility"),
        solver.intern_family("isolation:causal"),
        solver.intern_family("unserializability"),
    ];
    let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
    for (index, clause) in raw.iter().enumerate() {
        solver.set_emit_family(families[index % families.len()]);
        solver.add_clause(
            clause
                .iter()
                .map(|&(v, neg)| Lit::new(vars[usize::from(v) % num_vars], neg)),
        );
    }
    solver
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The per-family conflict partition must sum exactly to
    /// `SolverStats.conflicts`, whatever the outcome (including budget
    /// exhaustion) and with preprocessing on or off.
    #[test]
    fn conflict_attribution_partitions_the_conflict_counter(
        (num_vars, raw) in cnf_strategy(),
        preprocess in any::<bool>(),
        budgeted in any::<bool>(),
        budget_raw in 1u64..20,
    ) {
        let budget = budgeted.then_some(budget_raw);
        let mut solver = build_tagged(num_vars, &raw, preprocess, budget, 0);
        let _ = solver.solve();
        let attribution = solver.attribution();
        prop_assert_eq!(
            attribution.total_conflicts(),
            solver.stats().conflicts,
            "partition {:?} does not sum to the conflict counter",
            &attribution.conflicts_by_family
        );
        // Involvement is at least as large as the partition per family: the
        // falsified clause's own mask always carries its family bit.
        for id in 0..attribution.families.len().min(32) {
            prop_assert!(
                attribution.conflicts_involving[id] >= attribution.conflicts_by_family[id],
                "family {} involved less often than it was charged",
                &attribution.families[id]
            );
        }
    }

    /// Attribution stays an exact partition across incremental solve calls
    /// (blocking clauses, restored variables and all).
    #[test]
    fn attribution_survives_incremental_solving(
        (num_vars, raw) in cnf_strategy(),
    ) {
        let mut solver = build_tagged(num_vars, &raw, true, None, 0);
        for _ in 0..3 {
            if !solver.solve().is_sat() {
                break;
            }
            let model = solver.model().expect("sat outcome has a model").clone();
            let blocking: Vec<Lit> = (0..num_vars)
                .map(|v| {
                    let var = Var::from_index(v as u32);
                    Lit::new(var, model.value(var))
                })
                .collect();
            solver.add_clause(blocking);
        }
        prop_assert_eq!(
            solver.attribution().total_conflicts(),
            solver.stats().conflicts
        );
    }

    /// Heartbeat `seq` must increase by exactly one per sample and the
    /// conflict counts must be strictly monotone within a solve call; the
    /// retained ring must be a suffix of the emitted stream.
    #[test]
    fn heartbeats_are_strictly_monotone_within_a_solve(
        (num_vars, raw) in cnf_strategy(),
        every in 1u64..5,
    ) {
        let mut solver = build_tagged(num_vars, &raw, false, None, every);
        let seen: Arc<Mutex<Vec<Heartbeat>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        solver.set_heartbeat_hook(Some(Box::new(move |hb: &Heartbeat| {
            sink.lock().expect("hook lock").push(hb.clone());
        })));
        let _ = solver.solve();
        let seen = seen.lock().expect("test lock").clone();
        for (index, hb) in seen.iter().enumerate() {
            prop_assert_eq!(hb.seq, index as u64 + 1, "seq must count from 1");
            prop_assert_eq!(
                hb.conflicts_by_family.iter().sum::<u64>(),
                hb.conflicts,
                "heartbeat partition must sum to its conflict count"
            );
            prop_assert!(hb.trail_depth <= hb.total_vars);
            prop_assert!(hb.vars_assigned_at_root <= hb.trail_depth);
        }
        for pair in seen.windows(2) {
            prop_assert!(
                pair[1].conflicts > pair[0].conflicts,
                "conflict counts must be strictly increasing"
            );
        }
        // The ring retained by the solver is the tail of the emitted stream.
        let ring = solver.heartbeats();
        prop_assert!(ring.len() <= seen.len());
        prop_assert_eq!(&seen[seen.len() - ring.len()..], &ring[..]);
    }
}

#[test]
fn postmortem_names_a_dominant_family_for_a_budgeted_unknown() {
    // Pigeonhole 6-into-5, all clauses tagged as one axiom family, tiny
    // budget: the solve must end Unknown and the post-mortem must attribute
    // the fight to that family.
    let mut config = SolverConfig::default();
    config.preprocess.enabled = false;
    config.max_conflicts = Some(50);
    config.heartbeat_every = 5;
    let mut solver = Solver::with_config(config);
    let fam = solver.intern_family("isolation:snapshot");
    solver.set_emit_family(fam);
    let n = 6;
    let holes = 5;
    let p: Vec<Vec<Var>> = (0..n)
        .map(|_| (0..holes).map(|_| solver.new_var()).collect())
        .collect();
    for row in &p {
        solver.add_clause(row.iter().map(|&v| Lit::positive(v)));
    }
    for (i, row1) in p.iter().enumerate() {
        for row2 in &p[i + 1..] {
            for (s1, s2) in row1.iter().zip(row2) {
                solver.add_clause([Lit::negative(*s1), Lit::negative(*s2)]);
            }
        }
    }
    assert!(!solver.solve().is_sat());
    let postmortem = solver.postmortem();
    assert_eq!(postmortem.budget, Some(50));
    assert!(postmortem.conflicts_in_call >= 50);
    assert!(
        !postmortem.heartbeats.is_empty(),
        "ring must retain samples"
    );
    let (name, involved) = postmortem
        .attribution
        .dominant_family()
        .expect("conflicts were attributed");
    assert_eq!(name, "isolation:snapshot");
    assert!(involved > 0);
    assert_eq!(
        postmortem.attribution.total_conflicts(),
        postmortem.stats.conflicts
    );
}
