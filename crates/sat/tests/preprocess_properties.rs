//! Property-based tests of the preprocessing pipeline: for arbitrary CNF
//! formulas, preprocessing must be equisatisfiable and the reconstructed
//! models must satisfy every original clause.

use proptest::prelude::*;

use isopredict_sat::{Lit, SolveOutcome, Solver, SolverConfig, Var};

/// Raw clause material: variable indices are reduced modulo the instance's
/// variable count when the formula is built (the vendored proptest has no
/// `prop_flat_map`, so sizes and contents are drawn independently).
fn cnf_strategy() -> impl Strategy<Value = (usize, Vec<Vec<(u8, bool)>>)> {
    (
        3usize..9,
        prop::collection::vec(prop::collection::vec((0u8..32, any::<bool>()), 1..4), 1..24),
    )
}

/// Reduces raw clause material to in-range variable indices.
fn normalize(num_vars: usize, raw: &[Vec<(u8, bool)>]) -> Vec<Vec<(u8, bool)>> {
    raw.iter()
        .map(|clause| {
            clause
                .iter()
                .map(|&(v, neg)| (v % num_vars as u8, neg))
                .collect()
        })
        .collect()
}

fn build(num_vars: usize, clauses: &[Vec<(u8, bool)>], preprocess: bool) -> Solver {
    let mut config = SolverConfig::default();
    config.preprocess.enabled = preprocess;
    let mut solver = Solver::with_config(config);
    let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
    for clause in clauses {
        solver.add_clause(
            clause
                .iter()
                .map(|&(v, neg)| Lit::new(vars[v as usize], neg)),
        );
    }
    solver
}

fn check_model(
    solver: &Solver,
    clauses: &[Vec<(u8, bool)>],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let model = solver.model().expect("sat outcome has a model");
    for (index, clause) in clauses.iter().enumerate() {
        prop_assert!(
            clause
                .iter()
                .any(|&(v, neg)| model.value(Var::from_index(u32::from(v))) != neg),
            "model violates original clause {}: {:?}",
            index,
            clause
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Preprocessing (UP, equivalent literals, subsumption, strengthening,
    /// probing, variable elimination) must never change satisfiability, and
    /// models must reconstruct through the elimination stack to assignments
    /// that satisfy the *original* formula.
    #[test]
    fn preprocessing_is_equisatisfiable_and_models_reconstruct(
        (num_vars, raw) in cnf_strategy()
    ) {
        let clauses = normalize(num_vars, &raw);
        let mut plain = build(num_vars, &clauses, false);
        let mut preprocessed = build(num_vars, &clauses, true);
        let plain_outcome = plain.solve();
        let pp_outcome = preprocessed.solve();
        prop_assert_eq!(plain_outcome, pp_outcome, "preprocessing changed the verdict");
        if pp_outcome == SolveOutcome::Sat {
            check_model(&plain, &clauses)?;
            check_model(&preprocessed, &clauses)?;
        }
    }

    /// Incremental use after preprocessing: adding clauses that mention
    /// eliminated or substituted variables must transparently restore them,
    /// and re-solving must stay correct against a from-scratch solver.
    #[test]
    fn incremental_clauses_after_preprocessing_stay_correct(
        (num_vars, raw) in cnf_strategy(),
        extra_raw in prop::collection::vec(
            prop::collection::vec((0u8..32, any::<bool>()), 1..3),
            1..4,
        ),
    ) {
        let clauses = normalize(num_vars, &raw);
        let extra = normalize(num_vars, &extra_raw);

        let mut preprocessed = build(num_vars, &clauses, true);
        let first = preprocessed.solve();

        // Reference: a fresh solver over the combined formula, no pp.
        let mut combined = clauses.clone();
        combined.extend(extra.iter().cloned());
        let mut reference = build(num_vars, &combined, false);
        let reference_outcome = reference.solve();

        if first == SolveOutcome::Unsat {
            // Adding clauses cannot make an unsat formula sat.
            prop_assert_eq!(reference_outcome, SolveOutcome::Unsat);
            return Ok(());
        }
        for clause in &extra {
            preprocessed.add_clause(
                clause
                    .iter()
                    .map(|&(v, neg)| Lit::new(Var::from_index(u32::from(v)), neg)),
            );
        }
        let second = preprocessed.solve();
        prop_assert_eq!(second, reference_outcome, "incremental resolve disagrees");
        if second == SolveOutcome::Sat {
            check_model(&preprocessed, &combined)?;
        }
    }
}
