//! The on-disk corpus: content-addressed trace objects plus a manifest index.
//!
//! # Layout
//!
//! ```text
//! <root>/
//!   manifest.json          index: one entry per (benchmark, workload config,
//!                          seed, isolation, store version) key
//!   objects/<sha256>.json  canonical trace JSON, addressed by the SHA-256
//!                          of exactly those bytes
//! ```
//!
//! Objects are immutable once written; the manifest maps lookup keys to
//! object hashes. Nothing is assumed about hashes being collision-free:
//! storing a trace whose address already exists compares the canonical bytes
//! against the existing object and reports a [`CorpusError::HashCollision`]
//! on mismatch, and loading re-hashes the object to detect on-disk
//! corruption.

use std::fs;
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use isopredict_history::{History, OpTrace, Trace, TraceMeta};
use isopredict_obs::Obs;
use isopredict_store::StoreMode;
use isopredict_workloads::WorkloadConfig;

use crate::hash::sha256_hex;
use crate::import::{normalize, ImportError};

/// The exact-match lookup key of a corpus entry.
///
/// Every field participates in equality: two traces share an entry only if
/// they name the same benchmark, workload shape, seed, recording mode *and*
/// recorder version. Lookups never fall back to "close enough" keys.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusKey {
    /// Benchmark (application) name.
    pub benchmark: String,
    /// Workload RNG seed.
    pub seed: u64,
    /// Number of client sessions.
    pub sessions: usize,
    /// Transactions attempted per session.
    pub txns_per_session: usize,
    /// Workload data-size knob.
    pub scale: usize,
    /// Store-mode label the trace was recorded under.
    pub isolation: String,
    /// Version of the recording store crate.
    pub store_version: String,
}

impl CorpusKey {
    /// The key of a trace, read off its provenance metadata.
    #[must_use]
    pub fn from_meta(meta: &TraceMeta) -> CorpusKey {
        CorpusKey {
            benchmark: meta.benchmark.clone(),
            seed: meta.seed,
            sessions: meta.sessions,
            txns_per_session: meta.txns_per_session,
            scale: meta.scale,
            isolation: meta.isolation.clone(),
            store_version: meta.store_version.clone(),
        }
    }

    /// The key an *observed* recording of `benchmark` under `config` gets
    /// from this workspace's recorder: serializable record mode, current
    /// store version. This is what campaigns look up before deciding to
    /// re-record.
    #[must_use]
    pub fn observed(benchmark: &str, config: &WorkloadConfig) -> CorpusKey {
        CorpusKey {
            benchmark: benchmark.to_string(),
            seed: config.seed,
            sessions: config.sessions,
            txns_per_session: config.txns_per_session,
            scale: config.scale,
            isolation: StoreMode::SerializableRecord.label(),
            store_version: isopredict_store::VERSION.to_string(),
        }
    }
}

impl std::fmt::Display for CorpusKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} seed={} {}s×{}t scale={} [{}] v{}",
            self.benchmark,
            self.seed,
            self.sessions,
            self.txns_per_session,
            self.scale,
            self.isolation,
            self.store_version
        )
    }
}

/// One manifest entry: a lookup key, the object it resolves to, and summary
/// statistics cheap enough to show in listings without loading the object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// The exact-match lookup key.
    pub key: CorpusKey,
    /// Content address of the trace object (`objects/<hash>.json`).
    pub hash: String,
    /// Wall-clock microseconds the original recording took — what a warm
    /// campaign saves by loading this entry instead of re-recording.
    pub record_us: u64,
    /// Committed transactions in the trace.
    pub txns: usize,
    /// Read events in committed transactions.
    pub reads: usize,
    /// Write events in committed transactions.
    pub writes: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Manifest {
    version: u32,
    entries: Vec<ManifestEntry>,
}

impl Manifest {
    fn empty() -> Manifest {
        Manifest {
            version: 1,
            entries: Vec::new(),
        }
    }
}

/// Why a corpus operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CorpusError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error message.
        error: String,
    },
    /// The manifest or an object file does not parse.
    Malformed(String),
    /// Two different canonical byte strings hashed to the same address.
    HashCollision {
        /// The colliding content address.
        hash: String,
    },
    /// The key is already bound to a different trace. The recorder is
    /// deterministic, so this means the recording changed without a
    /// `store_version` bump (or a stale entry needs `gc`).
    KeyConflict {
        /// The conflicting key.
        key: Box<CorpusKey>,
        /// Hash already in the manifest.
        existing: String,
        /// Hash of the trace being stored.
        incoming: String,
    },
    /// The trace has no provenance metadata, so it cannot be indexed.
    MissingMeta,
    /// An object's bytes no longer hash to its address (on-disk corruption).
    CorruptObject {
        /// The expected address.
        hash: String,
        /// The hash the bytes actually have.
        actual: String,
    },
    /// No (or more than one) object matches the given hash or prefix.
    UnknownHash(String),
    /// An external trace failed validation.
    Import(ImportError),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Io { path, error } => write!(f, "{path}: {error}"),
            CorpusError::Malformed(what) => write!(f, "corpus data malformed: {what}"),
            CorpusError::HashCollision { hash } => write!(
                f,
                "content address collision on {hash}: two different traces \
                 hash identically — refusing to overwrite"
            ),
            CorpusError::KeyConflict {
                key,
                existing,
                incoming,
            } => write!(
                f,
                "key ({key}) is already bound to {existing} but the new \
                 recording hashes to {incoming}; recordings are expected to \
                 be deterministic — bump the store version or remove the \
                 stale entry"
            ),
            CorpusError::MissingMeta => write!(
                f,
                "trace has no provenance metadata to index it by; stamp it \
                 (or import it with explicit --benchmark/--seed/--isolation)"
            ),
            CorpusError::CorruptObject { hash, actual } => write!(
                f,
                "object {hash} is corrupt on disk (bytes hash to {actual})"
            ),
            CorpusError::UnknownHash(hash) => {
                write!(f, "no unique corpus object matches `{hash}`")
            }
            CorpusError::Import(error) => write!(f, "import rejected: {error}"),
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<ImportError> for CorpusError {
    fn from(error: ImportError) -> Self {
        CorpusError::Import(error)
    }
}

fn io_error(path: &Path, error: &std::io::Error) -> CorpusError {
    CorpusError::Io {
        path: path.display().to_string(),
        error: error.to_string(),
    }
}

/// Receipt of a store operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreReceipt {
    /// Content address of the stored trace.
    pub hash: String,
    /// `false` when the key was already present (the store was a no-op).
    pub fresh: bool,
}

/// A corpus trace resolved into the pieces a campaign needs: the canonical
/// history to analyze and the committed plan indices a steered validation
/// replay requires.
#[derive(Debug, Clone)]
pub struct LoadedTrace {
    /// The trace itself.
    pub trace: Trace,
    /// The canonical history rebuilt from the trace. Analyses must run on
    /// this (rather than a live recorder's history) so that verdicts are
    /// identical whether the trace was just recorded or loaded from disk.
    pub history: History,
    /// Per session, the plan indices of committed transactions. Taken from
    /// the trace's provenance; when absent (external traces), committed
    /// transactions are assumed to be plan entries `0..n` with no aborted
    /// attempts in between.
    pub committed_indices: Vec<Vec<usize>>,
}

impl LoadedTrace {
    /// Resolves a trace into its analysis form.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Malformed`] when the trace is not a valid
    /// history.
    pub fn new(trace: Trace) -> Result<LoadedTrace, CorpusError> {
        let history = trace
            .to_history()
            .map_err(|error| CorpusError::Malformed(error.to_string()))?;
        let committed_indices = trace
            .meta
            .as_ref()
            .and_then(|meta| meta.committed_plan_indices.clone())
            .unwrap_or_else(|| {
                trace
                    .sessions
                    .iter()
                    .map(|session| {
                        (0..session.transactions.iter().filter(|t| t.committed).count()).collect()
                    })
                    .collect()
            });
        Ok(LoadedTrace {
            trace,
            history,
            committed_indices,
        })
    }
}

/// Summary statistics of a trace's committed transactions.
fn trace_stats(trace: &Trace) -> (usize, usize, usize) {
    let mut txns = 0;
    let mut reads = 0;
    let mut writes = 0;
    for session in &trace.sessions {
        for txn in &session.transactions {
            if !txn.committed {
                continue;
            }
            txns += 1;
            for op in &txn.ops {
                match op {
                    OpTrace::Read { .. } => reads += 1,
                    OpTrace::Write { .. } => writes += 1,
                }
            }
        }
    }
    (txns, reads, writes)
}

/// Report of a [`Corpus::verify`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Manifest entries checked.
    pub checked: usize,
    /// Human-readable problems found (empty means the corpus is sound).
    pub problems: Vec<String>,
}

/// Report of a [`Corpus::gc`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Unreferenced objects removed.
    pub removed: usize,
    /// Referenced objects kept.
    pub kept: usize,
}

/// An on-disk, content-addressed trace corpus (see the [module docs](self)).
///
/// The handle is `Sync`: the manifest is guarded by a mutex, so campaign
/// worker threads may record-or-load cells concurrently through one
/// `Corpus`. Concurrent *processes* are not coordinated — point them at
/// different roots.
#[derive(Debug)]
pub struct Corpus {
    root: PathBuf,
    objects: PathBuf,
    manifest_path: PathBuf,
    manifest: Mutex<Manifest>,
    /// Telemetry handle (disabled by default; see [`Corpus::set_obs`]).
    obs: Obs,
}

impl Corpus {
    /// Opens (creating if necessary) the corpus rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Io`] when the directories cannot be created or
    /// read, and [`CorpusError::Malformed`] when an existing manifest does
    /// not parse.
    pub fn open(root: impl AsRef<Path>) -> Result<Corpus, CorpusError> {
        let root = root.as_ref().to_path_buf();
        let objects = root.join("objects");
        fs::create_dir_all(&objects).map_err(|e| io_error(&objects, &e))?;
        let manifest_path = root.join("manifest.json");
        let manifest = if manifest_path.exists() {
            let text =
                fs::read_to_string(&manifest_path).map_err(|e| io_error(&manifest_path, &e))?;
            let manifest: Manifest = serde_json::from_str(&text)
                .map_err(|e| CorpusError::Malformed(format!("{}: {e}", manifest_path.display())))?;
            let supported = Manifest::empty().version;
            if manifest.version != supported {
                return Err(CorpusError::Malformed(format!(
                    "{}: corpus manifest version {} is not supported by this \
                     build (expected {supported})",
                    manifest_path.display(),
                    manifest.version
                )));
            }
            manifest
        } else {
            Manifest::empty()
        };
        Ok(Corpus {
            root,
            objects,
            manifest_path,
            manifest: Mutex::new(manifest),
            obs: Obs::off(),
        })
    }

    /// Routes corpus telemetry through `obs`: `corpus.hit` / `corpus.miss`
    /// counters on [`Corpus::load_observed`], `corpus.record_saved_us` for
    /// the recording time a hit avoided, and `corpus.stored` for freshly
    /// persisted traces. Off by default ([`Obs::off`]).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The corpus root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of indexed traces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.manifest.lock().entries.len()
    }

    /// Whether the corpus indexes no traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the manifest entries, in insertion order.
    #[must_use]
    pub fn entries(&self) -> Vec<ManifestEntry> {
        self.manifest.lock().entries.clone()
    }

    /// Looks up the entry for `key`, exact-match on every field.
    #[must_use]
    pub fn lookup(&self, key: &CorpusKey) -> Option<ManifestEntry> {
        self.manifest
            .lock()
            .entries
            .iter()
            .find(|entry| &entry.key == key)
            .cloned()
    }

    /// Stores a provenance-stamped trace, indexing it under the key derived
    /// from its metadata. `record_us` is the wall-clock cost of the recording
    /// (what a later warm load saves). Storing the same trace under the same
    /// key again is a no-op (`fresh: false`).
    ///
    /// # Errors
    ///
    /// [`CorpusError::MissingMeta`] when the trace has no metadata,
    /// [`CorpusError::KeyConflict`] when the key is bound to different bytes,
    /// [`CorpusError::HashCollision`] when the address is taken by different
    /// bytes, and [`CorpusError::Io`] on filesystem failures.
    pub fn store(&self, trace: &Trace, record_us: u64) -> Result<StoreReceipt, CorpusError> {
        let meta = trace.meta.as_ref().ok_or(CorpusError::MissingMeta)?;
        let key = CorpusKey::from_meta(meta);
        let canonical = trace.to_canonical_json();
        let hash = sha256_hex(canonical.as_bytes());
        let (txns, reads, writes) = trace_stats(trace);

        let mut manifest = self.manifest.lock();
        if let Some(existing) = manifest.entries.iter().find(|entry| entry.key == key) {
            if existing.hash != hash {
                return Err(CorpusError::KeyConflict {
                    key: Box::new(key),
                    existing: existing.hash.clone(),
                    incoming: hash,
                });
            }
            return Ok(StoreReceipt { hash, fresh: false });
        }

        self.write_object(&hash, &canonical)?;
        manifest.entries.push(ManifestEntry {
            key,
            hash: hash.clone(),
            record_us,
            txns,
            reads,
            writes,
        });
        self.save_manifest(&manifest)?;
        self.obs.count("corpus.stored", 1);
        Ok(StoreReceipt { hash, fresh: true })
    }

    /// Ingests external trace JSON: validates and normalizes it (see
    /// [`crate::import::normalize`]), attaches `fallback_meta` when the trace
    /// carries no provenance of its own, and stores it.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Import`] when the trace is malformed, plus every error
    /// [`Corpus::store`] can return.
    pub fn import(
        &self,
        json: &str,
        fallback_meta: impl FnOnce(&Trace) -> TraceMeta,
    ) -> Result<StoreReceipt, CorpusError> {
        let mut trace = normalize(json)?;
        if trace.meta.is_none() {
            trace.meta = Some(fallback_meta(&trace));
        }
        self.store(&trace, 0)
    }

    /// Loads and integrity-checks the trace at `hash` (a full content
    /// address).
    ///
    /// # Errors
    ///
    /// [`CorpusError::UnknownHash`] when no such object exists,
    /// [`CorpusError::CorruptObject`] when its bytes no longer hash to the
    /// address, and [`CorpusError::Malformed`] when they do not parse.
    pub fn load(&self, hash: &str) -> Result<Trace, CorpusError> {
        let path = self.object_path(hash);
        let bytes = match fs::read_to_string(&path) {
            Ok(bytes) => bytes,
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => {
                return Err(CorpusError::UnknownHash(hash.to_string()))
            }
            Err(error) => return Err(io_error(&path, &error)),
        };
        let actual = sha256_hex(bytes.as_bytes());
        if actual != hash {
            return Err(CorpusError::CorruptObject {
                hash: hash.to_string(),
                actual,
            });
        }
        Trace::from_json(&bytes)
            .map_err(|error| CorpusError::Malformed(format!("{}: {error}", path.display())))
    }

    /// Resolves a (possibly abbreviated) content address against the
    /// manifest; the prefix must match exactly one entry.
    ///
    /// # Errors
    ///
    /// [`CorpusError::UnknownHash`] when zero or several entries match.
    pub fn resolve(&self, prefix: &str) -> Result<String, CorpusError> {
        let manifest = self.manifest.lock();
        let mut matches = manifest
            .entries
            .iter()
            .map(|entry| entry.hash.as_str())
            .filter(|hash| hash.starts_with(prefix));
        match (matches.next(), matches.next()) {
            (Some(hash), None) => Ok(hash.to_string()),
            _ => Err(CorpusError::UnknownHash(prefix.to_string())),
        }
    }

    /// Record-or-load for an observed benchmark cell: returns the trace under
    /// [`CorpusKey::observed`] if present.
    ///
    /// # Errors
    ///
    /// Propagates [`Corpus::load`] errors for the indexed object.
    pub fn load_observed(
        &self,
        benchmark: &str,
        config: &WorkloadConfig,
    ) -> Result<Option<(ManifestEntry, LoadedTrace)>, CorpusError> {
        let key = CorpusKey::observed(benchmark, config);
        match self.lookup(&key) {
            None => {
                self.obs.count("corpus.miss", 1);
                Ok(None)
            }
            Some(entry) => {
                let trace = self.load(&entry.hash)?;
                self.obs.count("corpus.hit", 1);
                self.obs.count("corpus.record_saved_us", entry.record_us);
                Ok(Some((entry, LoadedTrace::new(trace)?)))
            }
        }
    }

    /// Checks every manifest entry: the object exists, its bytes hash to its
    /// address, they parse, and they form a valid history whose provenance
    /// still matches the index key.
    ///
    /// # Errors
    ///
    /// Only [`CorpusError::Io`] for filesystem failures; per-entry defects
    /// are collected in the report, not raised.
    pub fn verify(&self) -> Result<VerifyReport, CorpusError> {
        let entries = self.entries();
        let mut report = VerifyReport::default();
        for entry in entries {
            report.checked += 1;
            match self.load(&entry.hash) {
                Err(error) => report.problems.push(format!("{}: {error}", entry.hash)),
                Ok(trace) => {
                    if let Err(error) = trace.to_history() {
                        report
                            .problems
                            .push(format!("{}: invalid history: {error}", entry.hash));
                    }
                    match trace.meta.as_ref() {
                        None => report
                            .problems
                            .push(format!("{}: object lost its provenance", entry.hash)),
                        Some(meta) if CorpusKey::from_meta(meta) != entry.key => {
                            report.problems.push(format!(
                                "{}: provenance disagrees with index key ({})",
                                entry.hash, entry.key
                            ));
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        Ok(report)
    }

    /// Removes objects not referenced by any manifest entry.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] when the objects directory cannot be read or an
    /// unreferenced object cannot be removed.
    pub fn gc(&self) -> Result<GcReport, CorpusError> {
        let manifest = self.manifest.lock();
        let referenced: Vec<&str> = manifest
            .entries
            .iter()
            .map(|entry| entry.hash.as_str())
            .collect();
        let mut report = GcReport::default();
        let listing = fs::read_dir(&self.objects).map_err(|e| io_error(&self.objects, &e))?;
        for dir_entry in listing {
            let dir_entry = dir_entry.map_err(|e| io_error(&self.objects, &e))?;
            let path = dir_entry.path();
            let stem = path
                .file_stem()
                .and_then(|stem| stem.to_str())
                .unwrap_or_default();
            if referenced.contains(&stem) {
                report.kept += 1;
            } else {
                fs::remove_file(&path).map_err(|e| io_error(&path, &e))?;
                report.removed += 1;
            }
        }
        Ok(report)
    }

    fn object_path(&self, hash: &str) -> PathBuf {
        self.objects.join(format!("{hash}.json"))
    }

    /// Writes `canonical` to the object at `hash`, tolerating an existing
    /// identical object and refusing to clobber different bytes.
    fn write_object(&self, hash: &str, canonical: &str) -> Result<(), CorpusError> {
        let path = self.object_path(hash);
        match fs::read_to_string(&path) {
            Ok(existing) => {
                if existing == canonical {
                    return Ok(());
                }
                return Err(CorpusError::HashCollision {
                    hash: hash.to_string(),
                });
            }
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => {}
            Err(error) => return Err(io_error(&path, &error)),
        }
        // Write-then-rename so readers never observe a torn object.
        let tmp = self.objects.join(format!("{hash}.tmp"));
        fs::write(&tmp, canonical).map_err(|e| io_error(&tmp, &e))?;
        fs::rename(&tmp, &path).map_err(|e| io_error(&path, &e))?;
        Ok(())
    }

    fn save_manifest(&self, manifest: &Manifest) -> Result<(), CorpusError> {
        let text = serde_json::to_string_pretty(manifest).expect("manifest serialization");
        let tmp = self.root.join("manifest.tmp");
        fs::write(&tmp, text).map_err(|e| io_error(&tmp, &e))?;
        fs::rename(&tmp, &self.manifest_path).map_err(|e| io_error(&self.manifest_path, &e))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::scratch_dir;
    use isopredict_store::StoreMode;
    use isopredict_workloads::{run, Benchmark, Schedule};

    fn recorded_trace(seed: u64) -> (Trace, WorkloadConfig) {
        let config = WorkloadConfig::small(seed);
        let output = run(
            Benchmark::Smallbank,
            &config,
            StoreMode::SerializableRecord,
            &Schedule::RoundRobin,
        );
        (output.trace(), config)
    }

    #[test]
    fn store_lookup_load_round_trip() {
        let dir = scratch_dir("roundtrip");
        let corpus = Corpus::open(dir.path()).expect("open");
        assert!(corpus.is_empty());

        let (trace, config) = recorded_trace(0);
        let receipt = corpus.store(&trace, 1234).expect("store");
        assert!(receipt.fresh);
        assert_eq!(corpus.len(), 1);

        // Exact-match lookup under the observed key.
        let entry = corpus
            .lookup(&CorpusKey::observed("Smallbank", &config))
            .expect("indexed");
        assert_eq!(entry.hash, receipt.hash);
        assert_eq!(entry.record_us, 1234);
        assert!(entry.txns > 0);

        // Loading verifies integrity and returns the identical trace.
        let loaded = corpus.load(&entry.hash).expect("load");
        assert_eq!(loaded, trace);

        // A different seed is a different key.
        let other = WorkloadConfig::small(1);
        assert!(corpus
            .lookup(&CorpusKey::observed("Smallbank", &other))
            .is_none());

        // Storing the same trace again is a cached no-op.
        let again = corpus.store(&trace, 99).expect("store again");
        assert!(!again.fresh);
        assert_eq!(corpus.len(), 1);
    }

    #[test]
    fn corpus_state_survives_reopen() {
        let dir = scratch_dir("reopen");
        let (trace, config) = recorded_trace(2);
        let hash = {
            let corpus = Corpus::open(dir.path()).expect("open");
            corpus.store(&trace, 7).expect("store").hash
        };
        let corpus = Corpus::open(dir.path()).expect("reopen");
        assert_eq!(corpus.len(), 1);
        let (entry, loaded) = corpus
            .load_observed("Smallbank", &config)
            .expect("load")
            .expect("present");
        assert_eq!(entry.hash, hash);
        assert_eq!(loaded.trace, trace);
        assert_eq!(
            loaded.committed_indices,
            trace
                .meta
                .as_ref()
                .unwrap()
                .committed_plan_indices
                .clone()
                .unwrap()
        );
        assert!(loaded.history.committed_transactions().count() > 0);
    }

    #[test]
    fn unsupported_manifest_versions_are_rejected_on_open() {
        let dir = scratch_dir("version");
        {
            let corpus = Corpus::open(dir.path()).expect("open");
            let (trace, _) = recorded_trace(0);
            corpus.store(&trace, 0).expect("store");
        }
        let manifest_path = dir.path().join("manifest.json");
        let text = fs::read_to_string(&manifest_path).expect("manifest exists");
        fs::write(
            &manifest_path,
            text.replace("\"version\": 1", "\"version\": 2"),
        )
        .expect("rewrite");
        let error = Corpus::open(dir.path()).unwrap_err();
        assert!(
            error.to_string().contains("version 2 is not supported"),
            "{error}"
        );
    }

    #[test]
    fn traces_without_meta_cannot_be_indexed() {
        let dir = scratch_dir("nometa");
        let corpus = Corpus::open(dir.path()).expect("open");
        let (mut trace, _) = recorded_trace(0);
        trace.meta = None;
        assert_eq!(corpus.store(&trace, 0), Err(CorpusError::MissingMeta));
    }

    #[test]
    fn key_conflicts_are_detected_not_overwritten() {
        let dir = scratch_dir("conflict");
        let corpus = Corpus::open(dir.path()).expect("open");
        let (trace, _) = recorded_trace(0);
        corpus.store(&trace, 0).expect("store");

        // Same key, different body: drop a session's transactions.
        let mut tampered = trace.clone();
        tampered.sessions[0].transactions.clear();
        let error = corpus.store(&tampered, 0).unwrap_err();
        assert!(
            matches!(error, CorpusError::KeyConflict { .. }),
            "{error:?}"
        );
        assert!(error.to_string().contains("store version"));
    }

    #[test]
    fn corruption_is_detected_on_load_and_verify() {
        let dir = scratch_dir("corrupt");
        let corpus = Corpus::open(dir.path()).expect("open");
        let (trace, _) = recorded_trace(0);
        let hash = corpus.store(&trace, 0).expect("store").hash;

        // Flip the object's bytes on disk.
        let path = dir.path().join("objects").join(format!("{hash}.json"));
        fs::write(&path, "{\"sessions\":[],\"meta\":null}").expect("tamper");

        let error = corpus.load(&hash).unwrap_err();
        assert!(matches!(error, CorpusError::CorruptObject { .. }));

        let report = corpus.verify().expect("verify runs");
        assert_eq!(report.checked, 1);
        assert_eq!(report.problems.len(), 1);
        assert!(report.problems[0].contains("corrupt"));
    }

    #[test]
    fn verify_passes_on_a_sound_corpus_and_gc_removes_orphans() {
        let dir = scratch_dir("gc");
        let corpus = Corpus::open(dir.path()).expect("open");
        let (trace, _) = recorded_trace(0);
        corpus.store(&trace, 0).expect("store");

        let report = corpus.verify().expect("verify");
        assert_eq!(report.checked, 1);
        assert!(report.problems.is_empty(), "{:?}", report.problems);

        // Drop an orphan object next to the real one.
        let orphan = dir
            .path()
            .join("objects")
            .join(format!("{}.json", "ab".repeat(32)));
        fs::write(&orphan, "{}").expect("orphan");
        let gc = corpus.gc().expect("gc");
        assert_eq!(gc.removed, 1);
        assert_eq!(gc.kept, 1);
        assert!(!orphan.exists());
    }

    #[test]
    fn prefix_resolution_requires_uniqueness() {
        let dir = scratch_dir("resolve");
        let corpus = Corpus::open(dir.path()).expect("open");
        let (a, _) = recorded_trace(0);
        let (b, _) = recorded_trace(1);
        let ha = corpus.store(&a, 0).expect("store a").hash;
        let hb = corpus.store(&b, 0).expect("store b").hash;
        assert_eq!(corpus.resolve(&ha[..12]).expect("unique"), ha);
        assert_eq!(corpus.resolve(&hb).expect("full"), hb);
        // The empty prefix matches both.
        assert!(corpus.resolve("").is_err());
        assert!(corpus.resolve("zzzz").is_err());
    }

    #[test]
    fn import_accepts_external_traces_and_synthesizes_meta() {
        let dir = scratch_dir("import");
        let corpus = Corpus::open(dir.path()).expect("open");
        let json = r#"{
            "sessions": [
                {"name": "ext-1", "transactions": [
                    {"id": 10, "committed": true, "ops": [
                        {"op": "read", "key": "k", "from": 0},
                        {"op": "write", "key": "k"}
                    ]}
                ]},
                {"name": "ext-2", "transactions": [
                    {"id": 11, "committed": true, "ops": [
                        {"op": "read", "key": "k", "from": 10}
                    ]}
                ]}
            ]
        }"#;
        let receipt = corpus
            .import(json, |trace| TraceMeta {
                benchmark: "external".to_string(),
                seed: 0,
                sessions: trace.sessions.len(),
                txns_per_session: 1,
                scale: 0,
                isolation: "external".to_string(),
                store_version: "external".to_string(),
                committed_plan_indices: None,
            })
            .expect("import");
        assert!(receipt.fresh);

        // The stored object is canonical and analyzable.
        let trace = corpus.load(&receipt.hash).expect("load");
        let loaded = LoadedTrace::new(trace).expect("valid");
        assert_eq!(loaded.history.committed_transactions().count(), 2);
        // External trace without plan indices: identity fallback.
        assert_eq!(loaded.committed_indices, vec![vec![0], vec![0]]);

        // Malformed imports are rejected with the normalizer's error.
        let error = corpus
            .import("{\"sessions\": []}", |_| unreachable!("never stored"))
            .unwrap_err();
        assert!(matches!(error, CorpusError::Import(ImportError::Empty)));
    }
}
