//! Hand-rolled SHA-256 (FIPS 180-4) for content addressing.
//!
//! The corpus is offline-first: no crates.io hashing dependency is available,
//! so the digest is implemented here. Content addresses are the lowercase hex
//! digest of a trace's canonical JSON bytes. Correctness is pinned against
//! the FIPS test vectors below; collisions are *still* checked for at store
//! time (byte comparison against the existing object) rather than assumed
//! impossible.

/// Round constants: the first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// One compression round over a 64-byte block. `w` is caller-provided
/// scratch so hot loops allocate nothing.
fn compress(state: &mut [u32; 8], block: &[u8], w: &mut [u32; 64]) {
    debug_assert_eq!(block.len(), 64);
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes([
            block[4 * i],
            block[4 * i + 1],
            block[4 * i + 2],
            block[4 * i + 3],
        ]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let temp1 = h
            .wrapping_add(big_s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = big_s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }

    for (word, add) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *word = word.wrapping_add(add);
    }
}

/// Computes the SHA-256 digest of `bytes`.
///
/// Streams 64-byte blocks straight off the borrowed slice — the input is
/// never copied (this runs on every corpus store *and* every
/// integrity-checked load); only the final block(s) are materialized to
/// append the `0x80 ‖ zeros ‖ 64-bit big-endian bit length` padding.
#[must_use]
pub fn sha256(bytes: &[u8]) -> [u8; 32] {
    let mut state = H0;
    let mut w = [0u32; 64];
    let mut chunks = bytes.chunks_exact(64);
    for chunk in &mut chunks {
        compress(&mut state, chunk, &mut w);
    }

    let remainder = chunks.remainder();
    let bit_len = (bytes.len() as u64).wrapping_mul(8);
    let mut block = [0u8; 64];
    block[..remainder.len()].copy_from_slice(remainder);
    block[remainder.len()] = 0x80;
    if remainder.len() >= 56 {
        // No room for the length in this block; it goes in an extra one.
        compress(&mut state, &block, &mut w);
        block = [0u8; 64];
    }
    block[56..].copy_from_slice(&bit_len.to_be_bytes());
    compress(&mut state, &block, &mut w);

    let mut digest = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        digest[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    digest
}

/// The SHA-256 digest of `bytes` as lowercase hex — the corpus's content
/// address format.
#[must_use]
pub fn sha256_hex(bytes: &[u8]) -> String {
    let digest = sha256(bytes);
    let mut out = String::with_capacity(64);
    for byte in digest {
        use std::fmt::Write;
        write!(out, "{byte:02x}").expect("writing to a String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_test_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        assert_eq!(
            sha256_hex(b"The quick brown fox jumps over the lazy dog"),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
        );
    }

    #[test]
    fn padding_boundaries_are_handled() {
        // Lengths straddling the 56-byte padding boundary within one block
        // and spilling into a second block.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0x61u8; len];
            let digest = sha256_hex(&data);
            assert_eq!(digest.len(), 64, "len {len}");
            // Digest differs from neighbours (sanity, not a collision proof).
            let other = vec![0x61u8; len + 1];
            assert_ne!(digest, sha256_hex(&other), "len {len}");
        }
        // A known multi-block vector: one million 'a's.
        let million = vec![0x61u8; 1_000_000];
        assert_eq!(
            sha256_hex(&million),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }
}
