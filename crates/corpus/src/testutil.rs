//! Scratch directories for corpus tests (this crate's and downstream
//! crates'): unique per process and counter, removed on drop.
//!
//! The workspace has no `tempfile` dependency (offline build), so this tiny
//! equivalent lives here. It is public because the orchestrator's
//! corpus-integration tests need scratch corpora too; it is not part of the
//! corpus API proper.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

static COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A directory under the system temp dir, removed (best-effort) on drop.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// The directory's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Creates a fresh scratch directory whose name contains `label`, the process
/// id, and a process-wide counter (so concurrent tests never share one).
///
/// # Panics
///
/// Panics when the directory cannot be created.
#[must_use]
pub fn scratch_dir(label: &str) -> ScratchDir {
    let path = std::env::temp_dir().join(format!(
        "isopredict-corpus-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&path).expect("create scratch dir");
    ScratchDir { path }
}
