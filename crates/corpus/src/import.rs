//! Ingestion of external trace JSON: parsing, structural validation, and
//! normalization into the canonical [`Trace`] form.
//!
//! The predictor is defined over abstract execution histories, not over this
//! repository's recorder, so the corpus accepts traces produced by *other*
//! systems as long as they speak the trace format (see the README's "Trace
//! corpus" section for the spec). Ingestion is strict: a malformed history
//! would make the analysis answer a question nobody asked, so every
//! structural defect is rejected with an error naming the defect and the
//! offending transaction or session.

use isopredict_history::{OpTrace, Trace, TraceError};

/// Why an external trace was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// The text is not valid trace JSON (syntax error, missing fields, or an
    /// unknown operation kind).
    Json(String),
    /// The trace parsed but is not a valid history (dangling reads, duplicate
    /// or reserved transaction ids).
    History(TraceError),
    /// A session name appears more than once, so its transactions would be
    /// split into non-contiguous blocks — session order must be contiguous.
    DuplicateSession(String),
    /// A transaction reads from itself.
    SelfRead {
        /// The offending transaction id.
        txn: u32,
    },
    /// The trace contains no committed transactions, so there is nothing to
    /// analyze.
    Empty,
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Json(error) => write!(
                f,
                "malformed trace JSON: {error} (ops must be \
                 {{\"op\":\"read\",\"key\":...,\"from\":...}} or \
                 {{\"op\":\"write\",\"key\":...}})"
            ),
            ImportError::History(TraceError::UnknownWriter { writer, reader }) => write!(
                f,
                "dangling read: transaction {reader} reads from transaction \
                 {writer}, which is not in the trace"
            ),
            ImportError::History(error) => write!(f, "invalid history: {error}"),
            ImportError::DuplicateSession(name) => write!(
                f,
                "session `{name}` appears more than once: each session's \
                 transactions must form one contiguous block in session order"
            ),
            ImportError::SelfRead { txn } => {
                write!(f, "transaction {txn} reads from itself")
            }
            ImportError::Empty => {
                write!(f, "trace contains no committed transactions")
            }
        }
    }
}

impl std::error::Error for ImportError {}

/// Parses and validates external trace JSON, returning the normalized trace.
///
/// Normalization is semantic, not textual: whatever whitespace, key order or
/// numeric spelling the source used, the returned [`Trace`] re-serializes to
/// the canonical byte form that content addresses are computed over.
///
/// # Errors
///
/// Returns an [`ImportError`] naming the first structural defect found:
/// malformed JSON or unknown ops, duplicated session names, self-reads,
/// dangling reads, duplicate or reserved transaction ids, or an empty trace.
pub fn normalize(json: &str) -> Result<Trace, ImportError> {
    let trace = Trace::from_json(json).map_err(ImportError::Json)?;

    // Session order must be contiguous: one block per session name.
    for (index, session) in trace.sessions.iter().enumerate() {
        if trace.sessions[..index]
            .iter()
            .any(|earlier| earlier.name == session.name)
        {
            return Err(ImportError::DuplicateSession(session.name.clone()));
        }
    }

    // No transaction may read from itself.
    for session in &trace.sessions {
        for txn in &session.transactions {
            for op in &txn.ops {
                if let OpTrace::Read { from, .. } = op {
                    // `from == 0` always means the initial state t0, even on
                    // a (reserved, rejected-later) transaction id of 0.
                    if *from != 0 && *from == txn.id {
                        return Err(ImportError::SelfRead { txn: txn.id });
                    }
                }
            }
        }
    }

    // Everything else — dangling reads, duplicate ids, the reserved id 0 —
    // is checked by the history conversion.
    let history = trace.to_history().map_err(ImportError::History)?;
    if history.committed_transactions().count() == 0 {
        return Err(ImportError::Empty);
    }

    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALID: &str = r#"{
        "sessions": [
            {"name": "a", "transactions": [
                {"id": 1, "committed": true, "ops": [
                    {"op": "read", "key": "x", "from": 0},
                    {"op": "write", "key": "x"}
                ]}
            ]},
            {"name": "b", "transactions": [
                {"id": 2, "committed": true, "ops": [
                    {"op": "read", "key": "x", "from": 1}
                ]}
            ]}
        ]
    }"#;

    #[test]
    fn valid_external_traces_normalize() {
        let trace = normalize(VALID).expect("valid trace");
        assert_eq!(trace.sessions.len(), 2);
        // Normalization is canonicalizing: re-serialized bytes are compact.
        assert!(!trace.to_canonical_json().contains('\n'));
    }

    #[test]
    fn syntax_errors_are_rejected_with_context() {
        let error = normalize("{not json").unwrap_err();
        assert!(matches!(error, ImportError::Json(_)));
        assert!(error.to_string().contains("malformed trace JSON"));
    }

    #[test]
    fn unknown_ops_are_rejected() {
        let json = VALID.replace("\"op\": \"write\"", "\"op\": \"increment\"");
        let error = normalize(&json).unwrap_err();
        assert!(matches!(error, ImportError::Json(_)), "{error}");
        assert!(error.to_string().contains("unknown variant `increment`"));
    }

    #[test]
    fn dangling_reads_are_rejected() {
        let json = VALID.replace("\"from\": 1", "\"from\": 99");
        let error = normalize(&json).unwrap_err();
        assert_eq!(
            error,
            ImportError::History(TraceError::UnknownWriter {
                writer: 99,
                reader: 2
            })
        );
        assert!(error.to_string().contains("dangling read"));
    }

    #[test]
    fn non_contiguous_sessions_are_rejected() {
        let json = VALID.replace("\"name\": \"b\"", "\"name\": \"a\"");
        let error = normalize(&json).unwrap_err();
        assert_eq!(error, ImportError::DuplicateSession("a".to_string()));
        assert!(error.to_string().contains("contiguous"));
    }

    #[test]
    fn self_reads_are_rejected() {
        let json = VALID.replace("\"from\": 1", "\"from\": 2");
        let error = normalize(&json).unwrap_err();
        assert_eq!(error, ImportError::SelfRead { txn: 2 });
    }

    #[test]
    fn empty_traces_are_rejected() {
        let error = normalize(r#"{"sessions": []}"#).unwrap_err();
        assert_eq!(error, ImportError::Empty);
        let json = VALID.replace("\"committed\": true", "\"committed\": false");
        assert_eq!(normalize(&json).unwrap_err(), ImportError::Empty);
    }

    #[test]
    fn duplicate_and_reserved_ids_are_rejected() {
        // Session b reuses id 1 on a write-only transaction (no self-read in
        // the way), so the duplicate id is what gets reported.
        let json = VALID.replace(
            r#"{"op": "read", "key": "x", "from": 1}"#,
            r#"{"op": "write", "key": "x"}"#,
        );
        let json = json.replace("\"id\": 2", "\"id\": 1");
        assert!(matches!(
            normalize(&json).unwrap_err(),
            ImportError::History(TraceError::DuplicateTxnId(1))
        ));
        let json = VALID.replace("\"id\": 1,", "\"id\": 0,");
        assert!(matches!(
            normalize(&json).unwrap_err(),
            ImportError::History(TraceError::ReservedId)
        ));
    }
}
