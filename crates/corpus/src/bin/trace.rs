//! Command-line front end for the trace corpus.
//!
//! Usage:
//! `cargo run --release -p isopredict-corpus --bin trace -- <command> --corpus DIR [...]`
//!
//! Commands:
//! * `record  --corpus DIR [--benchmarks smallbank,voter,...] [--seeds N] [--size small|large] [--metrics PATH | --metrics-stdout]`
//!   — record observed executions and persist them (cached cells are
//!   skipped). `--metrics PATH` streams per-cell `record` spans and
//!   `corpus.*` counters as JSONL events to `PATH`.
//! * `ls      --corpus DIR` — list indexed traces.
//! * `show    --corpus DIR HASH` — print a trace (hash may be abbreviated).
//! * `import  --corpus DIR FILE [--benchmark NAME] [--seed N] [--isolation LABEL]`
//!   — ingest external trace JSON; malformed traces are rejected with the
//!   specific defect.
//! * `verify  --corpus DIR` — integrity-check every indexed object.
//! * `gc      --corpus DIR` — remove unreferenced objects.

use std::process::ExitCode;
use std::time::Instant;

use isopredict_corpus::hash::sha256;
use isopredict_corpus::{Corpus, CorpusError};
use isopredict_history::TraceMeta;
use isopredict_obs::{metrics_registry, Obs};
use isopredict_store::StoreMode;
use isopredict_workloads::{run, Benchmark, Schedule, WorkloadConfig, WorkloadSize};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let Some(command) = args.get(1).map(String::as_str) else {
        eprintln!("usage: trace <record|ls|show|import|verify|gc> --corpus DIR [...]");
        return ExitCode::FAILURE;
    };
    let Some(dir) = arg(&args, "--corpus") else {
        eprintln!("trace {command}: --corpus DIR is required");
        return ExitCode::FAILURE;
    };
    let registry = metrics_registry(&args);
    let obs = registry.as_ref().map_or_else(Obs::off, |r| r.obs());
    let mut corpus = match Corpus::open(&dir) {
        Ok(corpus) => corpus,
        Err(error) => {
            eprintln!("trace: cannot open corpus at {dir}: {error}");
            return ExitCode::FAILURE;
        }
    };
    corpus.set_obs(obs.clone());
    let result = match command {
        "record" => record(&corpus, &args, &obs),
        "ls" => ls(&corpus),
        "show" => show(&corpus, &args),
        "import" => import(&corpus, &args),
        "verify" => verify(&corpus),
        "gc" => gc(&corpus),
        other => {
            eprintln!("trace: unknown command `{other}`");
            return ExitCode::FAILURE;
        }
    };
    if let Some(registry) = &registry {
        registry.flush();
    }
    match result {
        Ok(code) => code,
        Err(error) => {
            eprintln!("trace {command}: {error}");
            ExitCode::FAILURE
        }
    }
}

fn record(corpus: &Corpus, args: &[String], obs: &Obs) -> Result<ExitCode, CorpusError> {
    let benchmarks: Vec<Benchmark> = match arg(args, "--benchmarks") {
        Some(list) => list.split(',').map(parse_benchmark).collect(),
        None => Benchmark::extended().to_vec(),
    };
    let seeds: u64 = arg(args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let size = match arg(args, "--size").as_deref() {
        Some("large") => WorkloadSize::Large,
        _ => WorkloadSize::Small,
    };

    println!(
        "{:<11} {:>5} {:<8} {:>6} {:>9}  Hash",
        "Program", "Seed", "Source", "Txns", "Record"
    );
    for &benchmark in &benchmarks {
        for seed in 0..seeds {
            let seed_label = seed.to_string();
            let cell_span = obs.span_with(
                "record",
                &[("benchmark", benchmark.name()), ("seed", &seed_label)],
            );
            let config = WorkloadConfig::sized(size, seed);
            if let Some((entry, _)) = corpus.load_observed(benchmark.name(), &config)? {
                cell_span.label("source", "corpus");
                println!(
                    "{:<11} {:>5} {:<8} {:>6} {:>8.1}ms  {}",
                    benchmark.name(),
                    seed,
                    "corpus",
                    entry.txns,
                    entry.record_us as f64 / 1e3,
                    &entry.hash[..12],
                );
                continue;
            }
            // detlint: allow(wall-clock) — record_us is provenance metadata,
            // not part of the canonical (content-addressed) trace bytes.
            let start = Instant::now();
            let output = run(
                benchmark,
                &config,
                StoreMode::SerializableRecord,
                &Schedule::RoundRobin,
            );
            let record_us = start.elapsed().as_micros() as u64;
            let receipt = corpus.store(&output.trace(), record_us)?;
            cell_span.label("source", "recorded");
            println!(
                "{:<11} {:>5} {:<8} {:>6} {:>8.1}ms  {}",
                benchmark.name(),
                seed,
                "recorded",
                output.history.committed_transactions().count(),
                record_us as f64 / 1e3,
                &receipt.hash[..12],
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn ls(corpus: &Corpus) -> Result<ExitCode, CorpusError> {
    println!(
        "{:<14} {:<11} {:>5} {:>8} {:>6} {:>6} {:>6}  Recorded under",
        "Hash", "Program", "Seed", "Shape", "Txns", "Reads", "Writes"
    );
    for entry in corpus.entries() {
        println!(
            "{:<14} {:<11} {:>5} {:>8} {:>6} {:>6} {:>6}  {} (v{})",
            &entry.hash[..12],
            entry.key.benchmark,
            entry.key.seed,
            format!("{}s×{}t", entry.key.sessions, entry.key.txns_per_session),
            entry.txns,
            entry.reads,
            entry.writes,
            entry.key.isolation,
            entry.key.store_version,
        );
    }
    println!("{} trace(s)", corpus.len());
    Ok(ExitCode::SUCCESS)
}

fn show(corpus: &Corpus, args: &[String]) -> Result<ExitCode, CorpusError> {
    let Some(prefix) = positional(args) else {
        eprintln!("trace show: a hash (or unique prefix) is required");
        return Ok(ExitCode::FAILURE);
    };
    let hash = corpus.resolve(&prefix)?;
    let trace = corpus.load(&hash)?;
    println!("{}", trace.to_json());
    Ok(ExitCode::SUCCESS)
}

fn import(corpus: &Corpus, args: &[String]) -> Result<ExitCode, CorpusError> {
    let Some(file) = positional(args) else {
        eprintln!("trace import: a trace JSON file is required");
        return Ok(ExitCode::FAILURE);
    };
    let json = std::fs::read_to_string(&file).map_err(|error| CorpusError::Io {
        path: file.clone(),
        error: error.to_string(),
    })?;
    // Identity defaults that cannot collide across distinct imports: the
    // benchmark falls back to the file stem and the seed to the trace's own
    // content hash, so only byte-identical traces share a key (and those
    // dedupe as `cached`, which is correct).
    let benchmark = arg(args, "--benchmark").unwrap_or_else(|| {
        std::path::Path::new(&file)
            .file_stem()
            .map(|stem| stem.to_string_lossy().into_owned())
            .unwrap_or_else(|| "external".to_string())
    });
    let seed: Option<u64> = arg(args, "--seed").and_then(|v| v.parse().ok());
    let isolation = arg(args, "--isolation").unwrap_or_else(|| "external".to_string());
    let result = corpus.import(&json, |trace| TraceMeta {
        benchmark,
        seed: seed.unwrap_or_else(|| {
            let digest = sha256(trace.to_canonical_json().as_bytes());
            u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"))
        }),
        sessions: trace.sessions.len(),
        txns_per_session: trace
            .sessions
            .iter()
            .map(|session| session.transactions.len())
            .max()
            .unwrap_or(0),
        scale: 0,
        isolation,
        store_version: "external".to_string(),
        committed_plan_indices: None,
    });
    let receipt = match result {
        Ok(receipt) => receipt,
        Err(error @ CorpusError::KeyConflict { .. }) => {
            eprintln!(
                "trace import: {error}\n\
                 hint: another import already owns this identity; pass a \
                 distinct --benchmark and/or --seed for this trace"
            );
            return Ok(ExitCode::FAILURE);
        }
        Err(error) => return Err(error),
    };
    println!(
        "{} {}",
        receipt.hash,
        if receipt.fresh { "imported" } else { "cached" }
    );
    Ok(ExitCode::SUCCESS)
}

fn verify(corpus: &Corpus) -> Result<ExitCode, CorpusError> {
    let report = corpus.verify()?;
    for problem in &report.problems {
        eprintln!("{problem}");
    }
    println!(
        "{} entr{} checked, {} problem(s)",
        report.checked,
        if report.checked == 1 { "y" } else { "ies" },
        report.problems.len()
    );
    Ok(if report.problems.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn gc(corpus: &Corpus) -> Result<ExitCode, CorpusError> {
    let report = corpus.gc()?;
    println!("{} object(s) removed, {} kept", report.removed, report.kept);
    Ok(ExitCode::SUCCESS)
}

fn parse_benchmark(name: &str) -> Benchmark {
    name.parse().unwrap_or_else(|error| panic!("{error}"))
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The first non-flag argument after the command (skipping flag values).
fn positional(args: &[String]) -> Option<String> {
    let mut index = 2;
    while index < args.len() {
        let token = &args[index];
        if token.starts_with("--") {
            index += 2;
        } else {
            return Some(token.clone());
        }
    }
    None
}
