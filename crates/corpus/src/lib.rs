//! On-disk trace corpus: content-addressed persistence, exact-match indexing,
//! and external trace ingestion.
//!
//! IsoPredict's pipeline is observe → predict → validate. The predictor is
//! defined over an abstract execution history, not over this workspace's
//! recorder — so recorded traces are first-class artifacts worth persisting
//! and re-analyzing, and histories produced by *other* systems are just as
//! analyzable, the same separation CLOTHO draws between test generation and
//! replay artifacts. This crate provides that persistence layer:
//!
//! * **Canonical content addressing** — traces serialize to canonical JSON
//!   ([`isopredict_history::Trace::to_canonical_json`]) and are addressed by
//!   the SHA-256 of those bytes ([`hash`]), with collisions *detected* (byte
//!   comparison on store) rather than assumed away.
//! * **Exact-match indexing** — a manifest maps
//!   `(benchmark, workload config, seed, isolation, store version)` keys
//!   ([`CorpusKey`]) to object hashes, so a campaign can ask "has this exact
//!   cell been recorded by this exact recorder?" and skip its record phase on
//!   a hit.
//! * **Ingestion** — [`Corpus::import`] accepts external trace JSON,
//!   normalizes it, and rejects malformed histories (dangling reads,
//!   non-contiguous session order, unknown ops, self-reads) with errors that
//!   name the defect ([`import`]).
//! * **Maintenance** — [`Corpus::verify`] re-hashes and re-validates every
//!   indexed object; [`Corpus::gc`] removes unreferenced objects. The `trace`
//!   binary exposes all of it on the command line
//!   (`record`/`ls`/`show`/`import`/`verify`/`gc`).
//!
//! # Example
//!
//! ```
//! use isopredict_corpus::{Corpus, CorpusKey, testutil::scratch_dir};
//! use isopredict_store::StoreMode;
//! use isopredict_workloads::{run, Benchmark, Schedule, WorkloadConfig};
//!
//! let dir = scratch_dir("doc");
//! let corpus = Corpus::open(dir.path()).unwrap();
//!
//! // Record once, persist…
//! let config = WorkloadConfig::small(0);
//! let output = run(
//!     Benchmark::Smallbank,
//!     &config,
//!     StoreMode::SerializableRecord,
//!     &Schedule::RoundRobin,
//! );
//! let receipt = corpus.store(&output.trace(), 0).unwrap();
//!
//! // …and later runs load instead of re-recording.
//! let (entry, loaded) = corpus.load_observed("Smallbank", &config).unwrap().unwrap();
//! assert_eq!(entry.hash, receipt.hash);
//! assert_eq!(loaded.history.len(), output.trace().to_history().unwrap().len());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod corpus;
pub mod hash;
pub mod import;
pub mod testutil;

pub use corpus::{
    Corpus, CorpusError, CorpusKey, GcReport, LoadedTrace, ManifestEntry, StoreReceipt,
    VerifyReport,
};
pub use import::{normalize, ImportError};
