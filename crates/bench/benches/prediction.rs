//! End-to-end prediction latency per benchmark (the per-benchmark rows of
//! Tables 4 and 5, small workload, Approx-Relaxed under causal).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isopredict::{IsolationLevel, Predictor, PredictorConfig, Strategy};
use isopredict_bench::harness::record_observed;
use isopredict_workloads::{Benchmark, WorkloadConfig};

fn bench_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("prediction/approx-relaxed-causal");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    for benchmark in [Benchmark::Smallbank, Benchmark::Wikipedia] {
        let config = WorkloadConfig::small(0);
        let observed = record_observed(benchmark, &config).history;
        group.bench_with_input(
            BenchmarkId::from_parameter(benchmark.name()),
            &observed,
            |b, observed| {
                b.iter(|| {
                    let predictor = Predictor::new(PredictorConfig {
                        strategy: Strategy::ApproxRelaxed,
                        isolation: IsolationLevel::Causal,
                        ..PredictorConfig::default()
                    });
                    criterion::black_box(predictor.predict(observed));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_benchmarks);
criterion_main!(benches);
