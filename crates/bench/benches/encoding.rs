//! Benchmarks the constraint-generation + solving pipeline for the different
//! prediction strategies (the ablation behind Tables 4/5's strategy rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isopredict::{IsolationLevel, Predictor, PredictorConfig, Strategy};
use isopredict_bench::harness::record_observed;
use isopredict_workloads::{Benchmark, WorkloadConfig};

fn bench_strategies(c: &mut Criterion) {
    let config = WorkloadConfig::small(0);
    let observed = record_observed(Benchmark::Smallbank, &config).history;

    let mut group = c.benchmark_group("encoding/smallbank-small");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for strategy in [
        Strategy::ExactStrict,
        Strategy::ApproxStrict,
        Strategy::ApproxRelaxed,
    ] {
        group.bench_with_input(
            BenchmarkId::new("causal", strategy.name()),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let predictor = Predictor::new(PredictorConfig {
                        strategy,
                        isolation: IsolationLevel::Causal,
                        // Cap the exact strategy's enumeration so the ablation
                        // measures its per-candidate cost rather than running
                        // the full search on every sample.
                        max_exact_candidates: 8,
                        ..PredictorConfig::default()
                    });
                    criterion::black_box(predictor.predict(&observed));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
