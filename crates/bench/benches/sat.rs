//! Micro-benchmarks of the CDCL SAT substrate, including the VSIDS and
//! clause-database-reduction ablations called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isopredict_sat::{Lit, Solver, SolverConfig, Var};

/// Builds an unsatisfiable pigeonhole instance with `n` pigeons and `n - 1` holes.
fn pigeonhole(solver: &mut Solver, n: usize) {
    let holes = n - 1;
    let mut vars = vec![vec![Var::from_index(0); holes]; n];
    for row in &mut vars {
        for slot in row.iter_mut() {
            *slot = solver.new_var();
        }
    }
    for row in &vars {
        solver.add_clause(row.iter().map(|&v| Lit::positive(v)));
    }
    for (p1, row1) in vars.iter().enumerate() {
        for row2 in &vars[p1 + 1..] {
            for (slot1, slot2) in row1.iter().zip(row2) {
                solver.add_clause([Lit::negative(*slot1), Lit::negative(*slot2)]);
            }
        }
    }
}

fn bench_pigeonhole(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat/pigeonhole");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    for n in [6usize, 7] {
        group.bench_with_input(BenchmarkId::new("vsids", n), &n, |b, &n| {
            b.iter(|| {
                let mut solver = Solver::new();
                pigeonhole(&mut solver, n);
                assert!(solver.solve().is_unsat());
            });
        });
        group.bench_with_input(BenchmarkId::new("naive-order", n), &n, |b, &n| {
            b.iter(|| {
                let mut solver = Solver::with_config(SolverConfig {
                    use_vsids: false,
                    ..SolverConfig::default()
                });
                pigeonhole(&mut solver, n);
                assert!(solver.solve().is_unsat());
            });
        });
        group.bench_with_input(BenchmarkId::new("no-db-reduction", n), &n, |b, &n| {
            b.iter(|| {
                let mut solver = Solver::with_config(SolverConfig {
                    reduce_db: false,
                    ..SolverConfig::default()
                });
                pigeonhole(&mut solver, n);
                assert!(solver.solve().is_unsat());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pigeonhole);
criterion_main!(benches);
