//! Benchmarks the serializability checker (used by validation, the exact
//! strategy's candidate checks, and the Table 6/7 "Unser" columns).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isopredict_bench::harness::record_observed;
use isopredict_history::serializability;
use isopredict_store::{IsolationLevel, StoreMode};
use isopredict_workloads::{run, Benchmark, Schedule, WorkloadConfig};

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("serializability/check");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));

    // A serializable history (observed execution).
    let observed = record_observed(Benchmark::Smallbank, &WorkloadConfig::small(0)).history;
    group.bench_with_input(
        BenchmarkId::from_parameter("smallbank-observed"),
        &observed,
        |b, history| {
            b.iter(|| {
                assert!(serializability::check(history).is_serializable());
            });
        },
    );

    // A weakly isolated (likely unserializable) history.
    let weak = run(
        Benchmark::Smallbank,
        &WorkloadConfig::small(0),
        StoreMode::WeakRandom {
            level: IsolationLevel::Causal,
            seed: 3,
        },
        &Schedule::RoundRobin,
    )
    .history;
    group.bench_with_input(
        BenchmarkId::from_parameter("smallbank-weak"),
        &weak,
        |b, history| {
            b.iter(|| {
                criterion::black_box(serializability::check(history));
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);
