//! Benchmarks of the parallel prediction orchestrator: campaign latency at
//! several worker counts, and whole-history versus sharded analysis of a
//! key-disjoint history.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use isopredict::{IsolationLevel, Predictor, PredictorConfig, Strategy};
use isopredict_history::{History, HistoryBuilder, TxnId};
use isopredict_orchestrator::{
    merge_outcomes, Campaign, CampaignOptions, ShardPlan, ShardPolicy, ShardUnit,
};
use isopredict_workloads::Benchmark;

fn campaign() -> Campaign {
    Campaign::new()
        .benchmarks([Benchmark::Smallbank, Benchmark::Voter])
        .seeds([0, 1])
        .strategies([Strategy::ApproxRelaxed])
        .isolations([IsolationLevel::ReadCommitted])
        .txns_per_session(3)
}

fn bench_campaign_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("orchestrator/campaign");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    let campaign = campaign();
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    criterion::black_box(campaign.run(&CampaignOptions {
                        workers,
                        conflict_budget: Some(2_000_000),
                        shard_policy: ShardPolicy::default(),
                        corpus: None,
                        ..CampaignOptions::default()
                    }))
                });
            },
        );
    }
    group.finish();
}

/// `pairs` key-disjoint racing-deposit components.
fn disjoint_history(pairs: usize) -> History {
    let mut b = HistoryBuilder::new();
    for p in 0..pairs {
        let key = format!("acct-{p}");
        let s1 = b.session(format!("s{p}a"));
        let s2 = b.session(format!("s{p}b"));
        let t1 = b.begin(s1);
        b.read(t1, &key, TxnId::INITIAL);
        b.write(t1, &key);
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, &key, t1);
        b.write(t2, &key);
        b.commit(t2);
    }
    b.finish()
}

fn bench_sharded_vs_whole(c: &mut Criterion) {
    let mut group = c.benchmark_group("orchestrator/sharding");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    let observed = disjoint_history(6);
    let predictor = Predictor::new(PredictorConfig {
        strategy: Strategy::ApproxRelaxed,
        isolation: IsolationLevel::Causal,
        ..PredictorConfig::default()
    });

    group.bench_with_input(
        BenchmarkId::from_parameter("whole-history"),
        &observed,
        |b, observed| {
            b.iter(|| criterion::black_box(predictor.predict(observed)));
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("per-shard-merged"),
        &observed,
        |b, observed| {
            b.iter(|| {
                let plan = ShardPlan::new(observed, ShardPolicy::Always);
                let outcomes: Vec<_> = plan
                    .units
                    .iter()
                    .map(|unit| match unit {
                        ShardUnit::Whole => predictor.predict(observed),
                        ShardUnit::Component { txns, .. } => {
                            predictor.predict_restricted(observed, txns)
                        }
                    })
                    .collect();
                criterion::black_box(merge_outcomes(observed, &outcomes, plan.sharded))
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_campaign_workers, bench_sharded_vs_whole);
criterion_main!(benches);
