//! Regenerates Tables 6 and 7: comparison between MonkeyDB-style random
//! exploration, IsoPredict, and (for read committed) a "regular execution"
//! baseline that models a single-node MySQL server.
//!
//! Usage:
//! `cargo run --release -p isopredict-bench --bin table6_7 -- [--isolation causal|rc] [--size small|large] [--seeds N] [--runs-per-seed N]`

use isopredict::{IsolationLevel, Strategy};
use isopredict_bench::harness::{run_experiment, ExperimentOutcome};
use isopredict_bench::tables::ComparisonRow;
use isopredict_history::serializability;
use isopredict_workloads::{run, Benchmark, Schedule, WorkloadConfig, WorkloadSize};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let isolation = match arg(&args, "--isolation").as_deref() {
        Some("rc") | Some("read-committed") => IsolationLevel::ReadCommitted,
        _ => IsolationLevel::Causal,
    };
    let size = match arg(&args, "--size").as_deref() {
        Some("large") => WorkloadSize::Large,
        _ => WorkloadSize::Small,
    };
    let seeds: u64 = arg(&args, "--seeds").and_then(|v| v.parse().ok()).unwrap_or(10);
    let runs_per_seed: u64 = arg(&args, "--runs-per-seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);

    // The paper uses the best-performing strategy per isolation level:
    // Approx-Relaxed under causal (Table 6), Approx-Strict under rc (Table 7).
    let strategy = match isolation {
        IsolationLevel::Causal => Strategy::ApproxRelaxed,
        IsolationLevel::ReadCommitted => Strategy::ApproxStrict,
    };
    let table = match isolation {
        IsolationLevel::Causal => "Table 6",
        IsolationLevel::ReadCommitted => "Table 7",
    };
    println!(
        "{table}: MonkeyDB vs IsoPredict ({strategy}) under {isolation} ({size} workload, {seeds} seeds × {runs_per_seed} runs)"
    );
    println!(
        "{:<10} {:>7} {:>7} {:>7} {:>7}",
        "Program", "MK-Fail", "MK-Uns", "Iso-Uns", "SQL-Fail"
    );

    for benchmark in Benchmark::all() {
        let mut monkey_fail = 0u64;
        let mut monkey_unser = 0u64;
        let mut regular_fail = 0u64;
        let mut total = 0u64;
        for seed in 0..seeds {
            let config = WorkloadConfig::sized(size, seed);
            for run_index in 0..runs_per_seed {
                total += 1;
                let monkey = run(
                    benchmark,
                    &config,
                    isopredict_store::StoreMode::WeakRandom {
                        level: isolation,
                        seed: seed * 1000 + run_index,
                    },
                    &Schedule::RoundRobin,
                );
                if !monkey.violations.is_empty() {
                    monkey_fail += 1;
                }
                if !serializability::check(&monkey.history).is_serializable() {
                    monkey_unser += 1;
                }
                if isolation == IsolationLevel::ReadCommitted {
                    let regular = run(
                        benchmark,
                        &config,
                        isopredict_store::StoreMode::RealisticRc,
                        &Schedule::Shuffled {
                            seed: seed * 1000 + run_index,
                        },
                    );
                    if !regular.violations.is_empty() {
                        regular_fail += 1;
                    }
                }
            }
        }

        let mut validated = 0u64;
        for seed in 0..seeds {
            let config = WorkloadConfig::sized(size, seed);
            let result = run_experiment(benchmark, &config, strategy, isolation, Some(2_000_000));
            if result.outcome == ExperimentOutcome::Validated {
                validated += 1;
            }
        }

        let row = ComparisonRow {
            benchmark,
            isolation,
            monkeydb_fail: monkey_fail as f64 / total as f64,
            monkeydb_unser: monkey_unser as f64 / total as f64,
            isopredict_unser: validated as f64 / seeds as f64,
            regular_fail: (isolation == IsolationLevel::ReadCommitted)
                .then(|| regular_fail as f64 / total as f64),
        };
        println!("{}", row.render());
    }
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
