//! Regenerates Tables 6 and 7: comparison between MonkeyDB-style random
//! exploration, IsoPredict, and (for read committed) a "regular execution"
//! baseline that models a single-node MySQL server.
//!
//! Per-seed work (random exploration batches and the IsoPredict pipeline)
//! runs on the orchestrator's worker pool; counters aggregate identically
//! regardless of worker count.
//!
//! Usage:
//! `cargo run --release -p isopredict-bench --bin table6_7 -- [--isolation causal|rc|si] [--size small|large] [--seeds N] [--runs-per-seed N] [--budget N] [--workers N] [--corpus DIR] [--metrics PATH | --metrics-stdout]`
//!
//! `--corpus DIR` applies to the IsoPredict pipeline's observed executions
//! (the MonkeyDB-style random exploration is inherently re-executed).
//! `--metrics PATH` streams the run's telemetry (exploration and pipeline
//! spans, solver counters) as JSONL events to `PATH`.

use isopredict::{IsolationLevel, Obs, Strategy};
use isopredict_bench::harness::{run_experiment_observed, ExperimentOutcome};
use isopredict_bench::tables::ComparisonRow;
use isopredict_corpus::Corpus;
use isopredict_history::serializability;
use isopredict_obs::metrics_registry;
use isopredict_orchestrator::WorkerPool;
use isopredict_workloads::{run, Benchmark, Schedule, WorkloadConfig, WorkloadSize};

/// Per-(benchmark, seed) tallies produced by one pool task.
#[derive(Default)]
struct SeedTally {
    runs: u64,
    monkey_fail: u64,
    monkey_unser: u64,
    regular_fail: u64,
    validated: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let isolation = arg(&args, "--isolation")
        .map(|name| name.parse().unwrap_or_else(|error| panic!("{error}")))
        .unwrap_or(IsolationLevel::Causal);
    let size = match arg(&args, "--size").as_deref() {
        Some("large") => WorkloadSize::Large,
        _ => WorkloadSize::Small,
    };
    let seeds: u64 = arg(&args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let runs_per_seed: u64 = arg(&args, "--runs-per-seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let budget: u64 = arg(&args, "--budget")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);
    let pool = match arg(&args, "--workers").and_then(|v| v.parse().ok()) {
        Some(workers) => WorkerPool::new(workers),
        None => WorkerPool::auto(),
    };
    let registry = metrics_registry(&args);
    let obs = registry.as_ref().map_or_else(Obs::off, |r| r.obs());
    let corpus: Option<Corpus> = arg(&args, "--corpus").map(|dir| {
        let mut corpus = Corpus::open(&dir)
            .unwrap_or_else(|error| panic!("cannot open corpus at {dir}: {error}"));
        corpus.set_obs(obs.clone());
        corpus
    });

    // The paper uses the best-performing strategy per isolation level:
    // Approx-Relaxed under causal (Table 6), Approx-Strict under rc
    // (Table 7). Levels beyond the paper default to Approx-Relaxed, whose
    // relaxed boundary keeps whole transactions (and hence snapshot
    // isolation's write conflicts) in play, and label themselves so a
    // future seam row gets a correct title without touching this binary.
    let strategy = if isolation == IsolationLevel::ReadCommitted {
        Strategy::ApproxStrict
    } else {
        Strategy::ApproxRelaxed
    };
    let table = if isolation == IsolationLevel::Causal {
        "Table 6".to_string()
    } else if isolation == IsolationLevel::ReadCommitted {
        "Table 7".to_string()
    } else {
        format!("{isolation} comparison (beyond the paper)")
    };
    println!(
        "{table}: MonkeyDB vs IsoPredict ({strategy}) under {isolation} ({size} workload, {seeds} seeds × {runs_per_seed} runs, {} workers)",
        pool.workers()
    );
    println!(
        "{:<10} {:>7} {:>7} {:>7} {:>7}",
        "Program", "MK-Fail", "MK-Uns", "Iso-Uns", "SQL-Fail"
    );

    let cells: Vec<(Benchmark, u64)> = Benchmark::all()
        .into_iter()
        .flat_map(|benchmark| (0..seeds).map(move |seed| (benchmark, seed)))
        .collect();
    let matrix_span = obs.span("table6_7");
    let tallies = pool.run(&cells, |_, &(benchmark, seed)| {
        let config = WorkloadConfig::sized(size, seed);
        let seed_label = seed.to_string();
        let cell_span = matrix_span.obs().span_with(
            "cell",
            &[("benchmark", benchmark.name()), ("seed", &seed_label)],
        );
        let mut tally = SeedTally::default();
        let exploration_span = cell_span.obs().span("exploration");
        for run_index in 0..runs_per_seed {
            tally.runs += 1;
            let monkey = run(
                benchmark,
                &config,
                isopredict_store::StoreMode::WeakRandom {
                    level: isolation,
                    seed: seed * 1000 + run_index,
                },
                &Schedule::RoundRobin,
            );
            if !monkey.violations.is_empty() {
                tally.monkey_fail += 1;
            }
            if !serializability::check(&monkey.history).is_serializable() {
                tally.monkey_unser += 1;
            }
            if isolation == IsolationLevel::ReadCommitted {
                let regular = run(
                    benchmark,
                    &config,
                    isopredict_store::StoreMode::RealisticRc,
                    &Schedule::Shuffled {
                        seed: seed * 1000 + run_index,
                    },
                );
                if !regular.violations.is_empty() {
                    tally.regular_fail += 1;
                }
            }
        }
        exploration_span.finish();
        let result = run_experiment_observed(
            benchmark,
            &config,
            strategy,
            isolation,
            Some(budget),
            corpus.as_ref(),
            cell_span.obs(),
        );
        if result.outcome == ExperimentOutcome::Validated {
            tally.validated += 1;
        }
        tally
    });
    matrix_span.finish();
    if let Some(registry) = &registry {
        registry.flush();
    }

    for (block, benchmark) in Benchmark::all().into_iter().enumerate() {
        let slice = &tallies[block * seeds as usize..(block + 1) * seeds as usize];
        let total: u64 = slice.iter().map(|t| t.runs).sum();
        let monkey_fail: u64 = slice.iter().map(|t| t.monkey_fail).sum();
        let monkey_unser: u64 = slice.iter().map(|t| t.monkey_unser).sum();
        let regular_fail: u64 = slice.iter().map(|t| t.regular_fail).sum();
        let validated: u64 = slice.iter().map(|t| t.validated).sum();

        let row = ComparisonRow {
            benchmark,
            isolation,
            monkeydb_fail: monkey_fail as f64 / total as f64,
            monkeydb_unser: monkey_unser as f64 / total as f64,
            isopredict_unser: validated as f64 / seeds as f64,
            regular_fail: (isolation == IsolationLevel::ReadCommitted)
                .then(|| regular_fail as f64 / total as f64),
        };
        println!("{}", row.render());
    }
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
