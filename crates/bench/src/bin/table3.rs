//! Regenerates Table 3: workload characteristics (average KV accesses and
//! committed transactions over ten observed executions).
//!
//! Usage: `cargo run -p isopredict-bench --bin table3 [-- --seeds N]`

use isopredict_bench::harness::record_observed;
use isopredict_bench::tables::CharacteristicsRow;
use isopredict_workloads::{Benchmark, WorkloadCharacteristics, WorkloadConfig, WorkloadSize};

fn main() {
    let seeds = arg_value("--seeds").unwrap_or(10);
    println!("Table 3: average events and committed transactions over {seeds} trials");
    println!(
        "{:<10} {:<6} {:>8} {:>8} {:>8} {:>8}",
        "Program", "Size", "Reads", "Writes", "Txns", "(RO)"
    );
    for size in [WorkloadSize::Small, WorkloadSize::Large] {
        for benchmark in Benchmark::all() {
            let samples: Vec<WorkloadCharacteristics> = (0..seeds)
                .map(|seed| {
                    let config = WorkloadConfig::sized(size, seed);
                    let output = record_observed(benchmark, &config);
                    WorkloadCharacteristics::of(&output.history)
                })
                .collect();
            let row = CharacteristicsRow {
                benchmark,
                size,
                characteristics: WorkloadCharacteristics::average(&samples),
            };
            println!("{}", row.render());
        }
        println!();
    }
}

fn arg_value(name: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
