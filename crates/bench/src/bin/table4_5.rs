//! Regenerates Tables 4 and 5: IsoPredict's effectiveness and performance
//! under causal consistency (Table 4) and read committed (Table 5).
//!
//! The benchmark × strategy × seed matrix is executed by the orchestrator's
//! worker pool; results aggregate into the same rows regardless of worker
//! count.
//!
//! Usage:
//! `cargo run --release -p isopredict-bench --bin table4_5 -- [--isolation causal|rc|si] [--size small|large] [--seeds N] [--budget N] [--workers N]`

use isopredict::{IsolationLevel, Strategy};
use isopredict_bench::harness::run_experiment;
use isopredict_bench::tables::PredictionRow;
use isopredict_orchestrator::WorkerPool;
use isopredict_workloads::{Benchmark, WorkloadConfig, WorkloadSize};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let isolation = arg(&args, "--isolation")
        .map(|name| name.parse().unwrap_or_else(|error| panic!("{error}")))
        .unwrap_or(IsolationLevel::Causal);
    let size = match arg(&args, "--size").as_deref() {
        Some("large") => WorkloadSize::Large,
        _ => WorkloadSize::Small,
    };
    let seeds: u64 = arg(&args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let budget: u64 = arg(&args, "--budget")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);
    let pool = match arg(&args, "--workers").and_then(|v| v.parse().ok()) {
        Some(workers) => WorkerPool::new(workers),
        None => WorkerPool::auto(),
    };

    // Levels beyond the paper's two tables label themselves, so a future
    // seam row gets a correct title without touching this binary.
    let table = if isolation == IsolationLevel::Causal {
        "Table 4".to_string()
    } else if isolation == IsolationLevel::ReadCommitted {
        "Table 5".to_string()
    } else {
        format!("{isolation} matrix (beyond the paper)")
    };
    println!(
        "{table}: prediction under {isolation} ({size} workload, {seeds} seeds, {} workers)",
        pool.workers()
    );
    println!("{}", PredictionRow::header());

    // One experiment per matrix cell, drained by the worker pool; rows then
    // aggregate over each (benchmark, strategy) slice of the results.
    let cells: Vec<(Benchmark, Strategy, u64)> = Benchmark::all()
        .into_iter()
        .flat_map(|benchmark| {
            Strategy::all()
                .into_iter()
                .flat_map(move |strategy| (0..seeds).map(move |seed| (benchmark, strategy, seed)))
        })
        .collect();
    let results = pool.run(&cells, |_, &(benchmark, strategy, seed)| {
        let config = WorkloadConfig::sized(size, seed);
        run_experiment(benchmark, &config, strategy, isolation, Some(budget))
    });

    let seeds = seeds as usize;
    for (block, benchmark) in Benchmark::all().into_iter().enumerate() {
        for (offset, strategy) in Strategy::all().into_iter().enumerate() {
            let start = (block * Strategy::all().len() + offset) * seeds;
            let row = PredictionRow::aggregate(benchmark, strategy, &results[start..start + seeds]);
            println!("{}", row.render());
        }
        println!();
    }
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
