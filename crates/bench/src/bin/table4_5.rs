//! Regenerates Tables 4 and 5: IsoPredict's effectiveness and performance
//! under causal consistency (Table 4) and read committed (Table 5).
//!
//! Usage:
//! `cargo run --release -p isopredict-bench --bin table4_5 -- [--isolation causal|rc] [--size small|large] [--seeds N] [--budget N]`

use isopredict::{IsolationLevel, Strategy};
use isopredict_bench::harness::run_experiment;
use isopredict_bench::tables::PredictionRow;
use isopredict_workloads::{Benchmark, WorkloadConfig, WorkloadSize};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let isolation = match arg(&args, "--isolation").as_deref() {
        Some("rc") | Some("read-committed") => IsolationLevel::ReadCommitted,
        _ => IsolationLevel::Causal,
    };
    let size = match arg(&args, "--size").as_deref() {
        Some("large") => WorkloadSize::Large,
        _ => WorkloadSize::Small,
    };
    let seeds: u64 = arg(&args, "--seeds").and_then(|v| v.parse().ok()).unwrap_or(10);
    let budget: u64 = arg(&args, "--budget")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);

    let table = match isolation {
        IsolationLevel::Causal => "Table 4",
        IsolationLevel::ReadCommitted => "Table 5",
    };
    println!("{table}: prediction under {isolation} ({size} workload, {seeds} seeds)");
    println!("{}", PredictionRow::header());

    for benchmark in Benchmark::all() {
        for strategy in Strategy::all() {
            let results: Vec<_> = (0..seeds)
                .map(|seed| {
                    let config = WorkloadConfig::sized(size, seed);
                    run_experiment(benchmark, &config, strategy, isolation, Some(budget))
                })
                .collect();
            let row = PredictionRow::aggregate(benchmark, strategy, &results);
            println!("{}", row.render());
        }
        println!();
    }
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
