//! Regenerates Tables 4 and 5: IsoPredict's effectiveness and performance
//! under causal consistency (Table 4) and read committed (Table 5).
//!
//! The benchmark × strategy × seed matrix is executed by the orchestrator's
//! worker pool; results aggregate into the same rows regardless of worker
//! count.
//!
//! Usage:
//! `cargo run --release -p isopredict-bench --bin table4_5 -- [--isolation causal|rc|si] [--size small|large] [--seeds N] [--budget N] [--workers N] [--corpus DIR] [--metrics PATH | --metrics-stdout]`
//!
//! With `--corpus DIR`, observed executions already in the trace corpus are
//! loaded instead of re-recorded, and fresh recordings are persisted there.
//! `--metrics PATH` streams the run's telemetry (phase spans, solver
//! counters) as JSONL events to `PATH`.

use isopredict::{IsolationLevel, Obs, Strategy};
use isopredict_bench::harness::run_experiment_observed;
use isopredict_bench::tables::PredictionRow;
use isopredict_corpus::Corpus;
use isopredict_obs::{metrics_registry, MetricsSection};
use isopredict_orchestrator::WorkerPool;
use isopredict_workloads::{Benchmark, WorkloadConfig, WorkloadSize};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let isolation = arg(&args, "--isolation")
        .map(|name| name.parse().unwrap_or_else(|error| panic!("{error}")))
        .unwrap_or(IsolationLevel::Causal);
    let size = match arg(&args, "--size").as_deref() {
        Some("large") => WorkloadSize::Large,
        _ => WorkloadSize::Small,
    };
    let seeds: u64 = arg(&args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let budget: u64 = arg(&args, "--budget")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);
    let pool = match arg(&args, "--workers").and_then(|v| v.parse().ok()) {
        Some(workers) => WorkerPool::new(workers),
        None => WorkerPool::auto(),
    };
    let registry = metrics_registry(&args);
    let obs = registry.as_ref().map_or_else(Obs::off, |r| r.obs());
    let corpus: Option<Corpus> = arg(&args, "--corpus").map(|dir| {
        let mut corpus = Corpus::open(&dir)
            .unwrap_or_else(|error| panic!("cannot open corpus at {dir}: {error}"));
        corpus.set_obs(obs.clone());
        corpus
    });

    // Levels beyond the paper's two tables label themselves, so a future
    // seam row gets a correct title without touching this binary.
    let table = if isolation == IsolationLevel::Causal {
        "Table 4".to_string()
    } else if isolation == IsolationLevel::ReadCommitted {
        "Table 5".to_string()
    } else {
        format!("{isolation} matrix (beyond the paper)")
    };
    println!(
        "{table}: prediction under {isolation} ({size} workload, {seeds} seeds, {} workers)",
        pool.workers()
    );
    println!("{}", PredictionRow::header());

    // One experiment per matrix cell, drained by the worker pool; rows then
    // aggregate over each (benchmark, strategy) slice of the results.
    let cells: Vec<(Benchmark, Strategy, u64)> = Benchmark::all()
        .into_iter()
        .flat_map(|benchmark| {
            Strategy::all()
                .into_iter()
                .flat_map(move |strategy| (0..seeds).map(move |seed| (benchmark, strategy, seed)))
        })
        .collect();
    let matrix_span = obs.span("table4_5");
    let results = pool.run(&cells, |_, &(benchmark, strategy, seed)| {
        let config = WorkloadConfig::sized(size, seed);
        let seed_label = seed.to_string();
        let cell_span = matrix_span.obs().span_with(
            "experiment",
            &[
                ("benchmark", benchmark.name()),
                ("strategy", strategy.name()),
                ("seed", &seed_label),
            ],
        );
        run_experiment_observed(
            benchmark,
            &config,
            strategy,
            isolation,
            Some(budget),
            corpus.as_ref(),
            cell_span.obs(),
        )
    });
    let matrix_root = matrix_span.id();
    matrix_span.finish();
    if corpus.is_some() {
        // Count unique observed executions, not experiments: each (benchmark,
        // seed) trace serves every strategy.
        let loaded: std::collections::HashSet<(Benchmark, u64)> = cells
            .iter()
            .zip(&results)
            .filter(|(_, result)| result.trace_source == "corpus")
            .map(|(&(benchmark, _, seed), _)| (benchmark, seed))
            .collect();
        let observed: std::collections::HashSet<(Benchmark, u64)> = cells
            .iter()
            .map(|&(benchmark, _, seed)| (benchmark, seed))
            .collect();
        eprintln!(
            "corpus: {}/{} observed executions loaded (record phase skipped)",
            loaded.len(),
            observed.len()
        );
    }

    if let (Some(registry), Some(root)) = (&registry, matrix_root) {
        let metrics = MetricsSection::for_span(&registry.snapshot(), root);
        eprintln!(
            "metrics: {} span paths; {} solver conflicts, {} propagations",
            metrics.spans.len(),
            metrics.counter("solver.conflicts"),
            metrics.counter("solver.propagations"),
        );
        registry.flush();
    }

    let seeds = seeds as usize;
    for (block, benchmark) in Benchmark::all().into_iter().enumerate() {
        for (offset, strategy) in Strategy::all().into_iter().enumerate() {
            let start = (block * Strategy::all().len() + offset) * seeds;
            let row = PredictionRow::aggregate(benchmark, strategy, &results[start..start + seeds]);
            println!("{}", row.render());
        }
        println!();
    }
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
