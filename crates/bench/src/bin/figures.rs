//! Emits Graphviz renderings of observed/predicted execution pairs for the
//! paper's example figures (Figures 7, 8 and 10): for each benchmark, the
//! first seed with a successful causal prediction is rendered.
//!
//! Usage: `cargo run -p isopredict-bench --bin figures [-- --out DIR]`

use std::fs;
use std::path::PathBuf;

use isopredict::{report, IsolationLevel, PredictionOutcome, Predictor, PredictorConfig, Strategy};
use isopredict_bench::harness::record_observed;
use isopredict_history::dot::{render, Overlay};
use isopredict_workloads::{Benchmark, WorkloadConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("figures"));
    fs::create_dir_all(&out_dir).expect("create output directory");

    for benchmark in Benchmark::all() {
        let mut found = false;
        for seed in 0..10u64 {
            let config = WorkloadConfig::small(seed);
            let observed = record_observed(benchmark, &config);
            let predictor = Predictor::new(PredictorConfig {
                strategy: Strategy::ApproxRelaxed,
                isolation: IsolationLevel::Causal,
                ..PredictorConfig::default()
            });
            if let PredictionOutcome::Prediction(prediction) = predictor.predict(&observed.history)
            {
                let name = benchmark.name().to_lowercase().replace('-', "");
                let observed_dot = render(
                    &observed.history,
                    &Overlay {
                        edges: Vec::new(),
                        caption: Some(format!("{benchmark} observed execution (seed {seed})")),
                    },
                );
                let predicted_dot = report::dot_report(&prediction);
                let observed_path = out_dir.join(format!("{name}_seed{seed}_observed.dot"));
                let predicted_path = out_dir.join(format!("{name}_seed{seed}_predicted.dot"));
                fs::write(&observed_path, observed_dot).expect("write observed figure");
                fs::write(&predicted_path, predicted_dot).expect("write predicted figure");
                println!(
                    "{benchmark}: wrote {} and {}",
                    observed_path.display(),
                    predicted_path.display()
                );
                println!("{}", report::text_report(&observed.history, &prediction));
                found = true;
                break;
            }
        }
        if !found {
            println!(
                "{benchmark}: no causal prediction found for seeds 0..10 (expected for Voter)"
            );
        }
    }
}
