//! The experiment harness: end-to-end record → predict → validate pipelines
//! and the aggregation logic behind the paper's tables.
//!
//! The binaries in `src/bin/` regenerate the paper's tables:
//!
//! * `table3` — workload characteristics (Table 3),
//! * `table4_5` — prediction effectiveness and performance under causal
//!   consistency and read committed (Tables 4 and 5),
//! * `table6_7` — the comparison with MonkeyDB-style random exploration and
//!   with a "regular execution" read-committed baseline (Tables 6 and 7),
//! * `figures` — Graphviz renderings of observed/predicted execution pairs
//!   (Figures 7, 8 and 10).
//!
//! The Criterion benches in `benches/` cover the solver substrate, encoding
//! sizes, prediction latency and the serializability checker.

#![deny(missing_docs)]

pub mod tables;

pub use isopredict_orchestrator::harness;
pub use isopredict_orchestrator::harness::{
    run_experiment, run_experiment_in, run_experiment_observed, ExperimentOutcome, ExperimentResult,
};
