//! Aggregation and text rendering of the paper's tables.

use std::time::Duration;

use isopredict::{IsolationLevel, Strategy};
use isopredict_workloads::{Benchmark, WorkloadCharacteristics, WorkloadSize};

use crate::harness::{ExperimentOutcome, ExperimentResult};

/// One row of Table 4 or 5: a benchmark × strategy aggregate over several seeds.
#[derive(Debug, Clone)]
pub struct PredictionRow {
    /// Benchmark of this row.
    pub benchmark: Benchmark,
    /// Strategy of this row.
    pub strategy: Strategy,
    /// Number of runs where the solver gave up ("T/O" / "Unk").
    pub unknown: usize,
    /// Number of runs with no prediction ("Unsat").
    pub unsat: usize,
    /// Number of runs with a prediction ("Sat").
    pub sat: usize,
    /// Number of predictions whose validating execution was unserializable.
    pub validated: usize,
    /// Number of validating executions that diverged.
    pub diverged: usize,
    /// Average number of literals in the generated constraints.
    pub literals: f64,
    /// Average constraint generation time.
    pub constraint_gen_time: Duration,
    /// Average solving time over successful predictions.
    pub solving_time_sat: Option<Duration>,
    /// Average solving time over failed predictions.
    pub solving_time_unsat: Option<Duration>,
}

impl PredictionRow {
    /// Aggregates per-seed results into a row.
    #[must_use]
    pub fn aggregate(
        benchmark: Benchmark,
        strategy: Strategy,
        results: &[ExperimentResult],
    ) -> Self {
        let mut row = PredictionRow {
            benchmark,
            strategy,
            unknown: 0,
            unsat: 0,
            sat: 0,
            validated: 0,
            diverged: 0,
            literals: 0.0,
            constraint_gen_time: Duration::ZERO,
            solving_time_sat: None,
            solving_time_unsat: None,
        };
        let mut literal_samples = Vec::new();
        let mut gen_samples = Vec::new();
        let mut sat_times = Vec::new();
        let mut unsat_times = Vec::new();
        for result in results {
            match result.outcome {
                ExperimentOutcome::Unknown => row.unknown += 1,
                ExperimentOutcome::NoPrediction => {
                    row.unsat += 1;
                    unsat_times.push(result.solving_time);
                }
                ExperimentOutcome::Validated => {
                    row.sat += 1;
                    row.validated += 1;
                    sat_times.push(result.solving_time);
                }
                ExperimentOutcome::FailedValidation => {
                    row.sat += 1;
                    sat_times.push(result.solving_time);
                }
            }
            if result.diverged {
                row.diverged += 1;
            }
            if result.stats.literals > 0 {
                literal_samples.push(result.stats.literals as f64);
                gen_samples.push(result.constraint_gen_time);
            }
        }
        row.literals = mean(&literal_samples);
        row.constraint_gen_time = mean_duration(&gen_samples);
        row.solving_time_sat = (!sat_times.is_empty()).then(|| mean_duration(&sat_times));
        row.solving_time_unsat = (!unsat_times.is_empty()).then(|| mean_duration(&unsat_times));
        row
    }

    /// Renders the row in the style of Tables 4 and 5.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{:<10} {:<14} {:>4} {:>6} {:>4} {:>10} {:>10} {:>9.1}K {:>10} {:>10} {:>10}",
            self.benchmark.name(),
            self.strategy.name(),
            self.unknown,
            self.unsat,
            self.sat,
            format!("{} ", self.validated),
            format!("({})", self.diverged),
            self.literals / 1000.0,
            format_duration(Some(self.constraint_gen_time)),
            format_duration(self.solving_time_sat),
            format_duration(self.solving_time_unsat),
        )
    }

    /// The header matching [`PredictionRow::render`].
    #[must_use]
    pub fn header() -> String {
        format!(
            "{:<10} {:<14} {:>4} {:>6} {:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "Program",
            "Strategy",
            "Unk",
            "Unsat",
            "Sat",
            "Validated",
            "(Diverged)",
            "#Literals",
            "Gen time",
            "Solve sat",
            "Solve uns"
        )
    }
}

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct CharacteristicsRow {
    /// Benchmark of this row.
    pub benchmark: Benchmark,
    /// Workload size.
    pub size: WorkloadSize,
    /// Averaged characteristics.
    pub characteristics: WorkloadCharacteristics,
}

impl CharacteristicsRow {
    /// Renders the row in the style of Table 3.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{:<10} {:<6} {:>8.1} {:>8.1} {:>8.1} ({:>5.1})",
            self.benchmark.name(),
            self.size.to_string(),
            self.characteristics.reads,
            self.characteristics.writes,
            self.characteristics.committed,
            self.characteristics.read_only,
        )
    }
}

/// One row of Table 6 or 7.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Benchmark of this row.
    pub benchmark: Benchmark,
    /// Isolation level of the comparison.
    pub isolation: IsolationLevel,
    /// MonkeyDB-style random exploration: fraction of runs with an assertion failure.
    pub monkeydb_fail: f64,
    /// MonkeyDB-style random exploration: fraction of unserializable runs.
    pub monkeydb_unser: f64,
    /// IsoPredict: fraction of seeds with a validated unserializable prediction.
    pub isopredict_unser: f64,
    /// Regular execution (latest-committed reads): fraction of runs with an
    /// assertion failure. Only reported for read committed (Table 7).
    pub regular_fail: Option<f64>,
}

impl ComparisonRow {
    /// Renders the row in the style of Tables 6 and 7.
    #[must_use]
    pub fn render(&self) -> String {
        let regular = match self.regular_fail {
            Some(f) => format!("{:>6.0}%", f * 100.0),
            None => format!("{:>7}", "-"),
        };
        format!(
            "{:<10} {:>6.0}% {:>6.0}% {:>6.0}% {}",
            self.benchmark.name(),
            self.monkeydb_fail * 100.0,
            self.monkeydb_unser * 100.0,
            self.isopredict_unser * 100.0,
            regular,
        )
    }
}

fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

fn mean_duration(samples: &[Duration]) -> Duration {
    if samples.is_empty() {
        Duration::ZERO
    } else {
        samples.iter().sum::<Duration>() / samples.len() as u32
    }
}

fn format_duration(duration: Option<Duration>) -> String {
    match duration {
        None => "-".to_string(),
        Some(d) if d.as_secs_f64() >= 1.0 => format!("{:.1} s", d.as_secs_f64()),
        Some(d) => format!("{:.1} ms", d.as_secs_f64() * 1e3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isopredict_smt::EncodingStats;

    fn result(outcome: ExperimentOutcome, diverged: bool) -> ExperimentResult {
        ExperimentResult {
            benchmark: Benchmark::Smallbank,
            seed: 0,
            strategy: Strategy::ApproxRelaxed,
            isolation: IsolationLevel::Causal,
            outcome,
            diverged,
            stats: EncodingStats {
                literals: 1000,
                ..EncodingStats::default()
            },
            constraint_gen_time: Duration::from_millis(10),
            solving_time: Duration::from_millis(20),
            observed: WorkloadCharacteristics::default(),
            trace_source: "recorded",
        }
    }

    #[test]
    fn aggregation_counts_outcomes() {
        let results = vec![
            result(ExperimentOutcome::Validated, false),
            result(ExperimentOutcome::FailedValidation, true),
            result(ExperimentOutcome::NoPrediction, false),
            result(ExperimentOutcome::Unknown, false),
        ];
        let row = PredictionRow::aggregate(Benchmark::Smallbank, Strategy::ApproxRelaxed, &results);
        assert_eq!(row.sat, 2);
        assert_eq!(row.validated, 1);
        assert_eq!(row.unsat, 1);
        assert_eq!(row.unknown, 1);
        assert_eq!(row.diverged, 1);
        assert!(row.literals > 0.0);
        let rendered = row.render();
        assert!(rendered.contains("Smallbank"));
        assert!(rendered.contains("Approx-Relaxed"));
        assert!(PredictionRow::header().contains("Validated"));
    }

    #[test]
    fn comparison_row_renders_percentages() {
        let row = ComparisonRow {
            benchmark: Benchmark::Voter,
            isolation: IsolationLevel::Causal,
            monkeydb_fail: 0.7,
            monkeydb_unser: 0.8,
            isopredict_unser: 0.0,
            regular_fail: None,
        };
        let text = row.render();
        assert!(text.contains("70%"));
        assert!(text.contains("80%"));
        assert!(text.contains('-'));
        let with_regular = ComparisonRow {
            regular_fail: Some(0.5),
            ..row
        };
        assert!(with_regular.render().contains("50%"));
    }

    #[test]
    fn characteristics_row_renders() {
        let row = CharacteristicsRow {
            benchmark: Benchmark::Tpcc,
            size: WorkloadSize::Small,
            characteristics: WorkloadCharacteristics {
                reads: 10.0,
                writes: 5.0,
                committed: 11.5,
                read_only: 0.5,
            },
        };
        let text = row.render();
        assert!(text.contains("TPC-C"));
        assert!(text.contains("10.0"));
    }
}
