//! Umbrella crate for the IsoPredict reproduction workspace.
//!
//! This crate exists to host the workspace-level examples (`examples/`) and
//! the cross-crate integration tests (`tests/`). The actual functionality
//! lives in:
//!
//! * [`isopredict`] — the predictive analysis and validation pipeline (the
//!   paper's contribution),
//! * [`isopredict_history`] — the execution-history formalism,
//! * [`isopredict_store`] — the MonkeyDB-substitute transactional KV store,
//! * [`isopredict_workloads`] — the OLTP-Bench-style client applications,
//! * [`isopredict_smt`] / [`isopredict_sat`] — the constraint-solving substrate,
//! * [`isopredict_orchestrator`] — history sharding and parallel analysis
//!   campaigns over the benchmark matrix.
//!
//! # Example
//!
//! ```
//! use isopredict_repro::prelude::*;
//!
//! let config = WorkloadConfig::small(0);
//! let observed = isopredict_workloads::run(
//!     Benchmark::Smallbank,
//!     &config,
//!     StoreMode::SerializableRecord,
//!     &Schedule::RoundRobin,
//! );
//! assert!(observed.history.len() > 1);
//!
//! let predictor = Predictor::new(PredictorConfig {
//!     strategy: Strategy::ApproxRelaxed,
//!     isolation: IsolationLevel::ReadCommitted,
//!     ..PredictorConfig::default()
//! });
//! let outcome = predictor.predict(&observed.history);
//! assert!(outcome.is_prediction() || outcome.is_no_prediction() || outcome.is_unknown());
//! ```

pub use isopredict;
pub use isopredict_history;
pub use isopredict_orchestrator;
pub use isopredict_sat;
pub use isopredict_smt;
pub use isopredict_store;
pub use isopredict_workloads;

/// Convenience re-exports used by the examples and integration tests.
pub mod prelude {
    pub use isopredict::{
        IsolationLevel, PredictionOutcome, Predictor, PredictorConfig, Strategy, ValidationOutcome,
        ValidationPlan,
    };
    pub use isopredict_history::{History, HistoryBuilder, SessionId, TxnId};
    pub use isopredict_orchestrator::{
        Campaign, CampaignOptions, CampaignReport, ShardPlan, ShardPolicy, WorkerPool,
    };
    pub use isopredict_store::{Engine, StoreMode, Value};
    pub use isopredict_workloads::{Benchmark, RunOutput, Schedule, WorkloadConfig};
}
