//! Predicting and validating **write skew** under snapshot isolation — the
//! anomaly that separates SI from serializability, end to end through the
//! isolation seam.
//!
//! Two tellers share a two-account invariant: a withdrawal from either
//! account is allowed while the *combined* balance covers it. Under
//! snapshot isolation both withdrawals can read the *same old snapshot* and
//! debit their own accounts without ever conflicting on a write —
//! first-committer-wins never fires, so the execution is SI-legal, yet no
//! serial order explains the crossed stale reads.
//!
//! Run with: `cargo run --release --example write_skew_si`

use isopredict::{validate, IsolationLevel, Predictor, PredictorConfig, Strategy};
use isopredict_history::{serializability, si, History};
use isopredict_store::{Divergence, Engine, StoreMode, Value};

/// Runs the two-teller application: each session checks the combined balance
/// and withdraws 60 from its own account if the funds are there.
fn run_tellers(mode: StoreMode, order: &[usize]) -> (History, Vec<Divergence>) {
    let engine = Engine::new(mode);
    engine.set_initial("checking", Value::Int(100));
    engine.set_initial("savings", Value::Int(100));
    let clients = [engine.client("teller-1"), engine.client("teller-2")];
    let own_keys = ["checking", "savings"];
    for &session in order {
        let mut t = clients[session].begin();
        // Snapshot-isolation clients declare their write intent up front so
        // the store can enforce first-committer-wins.
        t.declare_writes([own_keys[session]]);
        let checking = t.get_int("checking", 0);
        let savings = t.get_int("savings", 0);
        if checking + savings >= 60 {
            let own = if session == 0 { checking } else { savings };
            t.put(own_keys[session], own - 60);
        }
        t.commit();
    }
    (engine.history(), engine.divergences())
}

fn main() {
    // 1. Record the observed, serializable execution: teller 1 withdraws,
    //    then teller 2 withdraws seeing the drained checking balance.
    let (observed, _) = run_tellers(StoreMode::SerializableRecord, &[0, 1]);
    assert!(serializability::check(&observed).is_serializable());
    println!("observed execution is serializable (teller 2 saw teller 1's withdrawal)");

    // 2. Predict under snapshot isolation.
    let predictor = Predictor::new(PredictorConfig {
        strategy: Strategy::ApproxRelaxed,
        isolation: IsolationLevel::Snapshot,
        ..PredictorConfig::default()
    });
    let outcome = predictor.predict(&observed);
    let prediction = outcome
        .prediction()
        .expect("snapshot isolation admits the write-skew execution");
    println!(
        "predicted an unserializable SI execution ({} changed read{})",
        prediction.changed_reads.len(),
        if prediction.changed_reads.len() == 1 {
            ""
        } else {
            "s"
        },
    );
    for changed in &prediction.changed_reads {
        println!(
            "  session {} now reads {} from {} (was {})",
            changed.session.index(),
            changed.key,
            changed.predicted,
            changed.observed,
        );
    }
    assert!(si::is_si(&prediction.predicted), "prediction is SI-legal");
    assert!(
        !serializability::check(&prediction.predicted).is_serializable(),
        "prediction is unserializable"
    );

    // 3. Validate: replay the application with the store steered toward the
    //    predicted writers, preserving snapshot isolation.
    let committed = vec![vec![0], vec![0]];
    let plan = validate::plan_validation(prediction, &committed);
    let schedule: Vec<usize> = plan.schedule.iter().map(|&(session, _)| session).collect();
    let (validating, divergences) = run_tellers(
        StoreMode::Controlled {
            level: IsolationLevel::Snapshot,
            script: plan.script.clone(),
        },
        &schedule,
    );
    let assessment = validate::assess(&validating, &divergences);
    assert!(assessment.validated, "the replayed anomaly is real");
    assert!(si::is_si(&validating), "the replay preserved SI");
    println!(
        "validated: the steered replay is unserializable under snapshot isolation \
         (diverged: {}); both tellers withdrew against the same stale snapshot",
        assessment.diverged,
    );
}
