//! Smallbank audit: record an observed execution of the Smallbank workload,
//! predict an unserializable execution under causal consistency, and validate
//! it by replaying the workload against the controlled store (Section 5).
//!
//! Run with `cargo run --release --example smallbank_audit`.

use isopredict::{
    report, validate, IsolationLevel, PredictionOutcome, Predictor, PredictorConfig, Strategy,
};
use isopredict_store::StoreMode;
use isopredict_workloads::{run, Benchmark, Schedule, WorkloadConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0u64);
    let config = WorkloadConfig::small(seed);

    // 1. Record an observed, serializable execution.
    let observed = run(
        Benchmark::Smallbank,
        &config,
        StoreMode::SerializableRecord,
        &Schedule::RoundRobin,
    );
    println!(
        "observed Smallbank execution (seed {seed}): {} committed transactions, {} reads, {} writes",
        observed.history.committed_transactions().count(),
        observed.history.num_reads(),
        observed.history.num_writes()
    );

    // 2. Predict.
    let predictor = Predictor::new(PredictorConfig {
        strategy: Strategy::ApproxRelaxed,
        isolation: IsolationLevel::Causal,
        ..PredictorConfig::default()
    });
    let prediction = match predictor.predict(&observed.history) {
        PredictionOutcome::Prediction(p) => p,
        PredictionOutcome::NoPrediction { reason } => {
            println!("no prediction for this seed ({reason:?}); try another seed");
            return;
        }
        PredictionOutcome::Unknown { .. } => {
            println!("solver budget exhausted");
            return;
        }
    };
    println!("\n{}", report::text_report(&observed.history, &prediction));

    // 3. Validate by replaying the workload with the store steering reads
    //    toward the predicted writers.
    let plan = validate::plan_validation(&prediction, &observed.committed_indices);
    let validating = run(
        Benchmark::Smallbank,
        &config,
        StoreMode::Controlled {
            level: IsolationLevel::Causal,
            script: plan.script.clone(),
        },
        &Schedule::Explicit(plan.schedule.clone()),
    );
    let outcome = validate::assess(&validating.history, &validating.divergences);
    println!(
        "validation: unserializable = {}, diverged = {}, assertion violations = {}",
        outcome.validated,
        outcome.diverged,
        validating.violations.len()
    );
    for violation in &validating.violations {
        println!("  assertion failed: {violation}");
    }
}
