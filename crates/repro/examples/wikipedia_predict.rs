//! Wikipedia predictions (the paper's Figure 7): scan seeds of the Wikipedia
//! workload, report which observed executions admit a causal unserializable
//! prediction, and print the prediction for the first seed that does.
//!
//! Wikipedia is read-heavy, so — as in Table 4 — only some seeds yield
//! predictions under causal consistency.
//!
//! Run with `cargo run --release --example wikipedia_predict`.

use isopredict::{report, IsolationLevel, PredictionOutcome, Predictor, PredictorConfig, Strategy};
use isopredict_store::StoreMode;
use isopredict_workloads::{run, Benchmark, Schedule, WorkloadConfig};

fn main() {
    let seeds = 10u64;
    let mut first_prediction = None;
    let mut prediction_count = 0;

    for seed in 0..seeds {
        let config = WorkloadConfig::small(seed);
        let observed = run(
            Benchmark::Wikipedia,
            &config,
            StoreMode::SerializableRecord,
            &Schedule::RoundRobin,
        );
        let predictor = Predictor::new(PredictorConfig {
            strategy: Strategy::ApproxRelaxed,
            isolation: IsolationLevel::Causal,
            ..PredictorConfig::default()
        });
        match predictor.predict(&observed.history) {
            PredictionOutcome::Prediction(prediction) => {
                prediction_count += 1;
                println!("seed {seed}: causal unserializable prediction found");
                if first_prediction.is_none() {
                    first_prediction = Some((observed.history, prediction));
                }
            }
            PredictionOutcome::NoPrediction { .. } => {
                println!("seed {seed}: no causal prediction (few writing transactions)");
            }
            PredictionOutcome::Unknown { .. } => println!("seed {seed}: solver budget exhausted"),
        }
    }

    println!("\n{prediction_count}/{seeds} seeds admit a causal prediction");
    if let Some((observed, prediction)) = first_prediction {
        println!("\nFirst prediction in detail:\n");
        println!("{}", report::text_report(&observed, &prediction));
    }
}
