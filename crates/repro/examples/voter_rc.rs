//! Voter under causal consistency vs read committed.
//!
//! The paper observes (Section 7.2, footnote 5) that Voter admits **no**
//! unserializable prediction under causal consistency — every observed
//! execution has a single writing transaction — while under read committed a
//! transaction may legally read both the initial state and the write, so
//! predictions exist. This example reproduces that asymmetry for ten seeds.
//!
//! Run with `cargo run --release --example voter_rc`.

use isopredict::{IsolationLevel, Predictor, PredictorConfig, Strategy};
use isopredict_store::StoreMode;
use isopredict_workloads::{run, Benchmark, Schedule, WorkloadConfig};

fn main() {
    let mut causal_predictions = 0;
    let mut rc_predictions = 0;
    let seeds = 10u64;

    for seed in 0..seeds {
        let config = WorkloadConfig::small(seed);
        let observed = run(
            Benchmark::Voter,
            &config,
            StoreMode::SerializableRecord,
            &Schedule::RoundRobin,
        );
        let writing = observed
            .history
            .committed_transactions()
            .filter(|t| !t.is_read_only())
            .count();

        let causal = Predictor::new(PredictorConfig {
            strategy: Strategy::ApproxRelaxed,
            isolation: IsolationLevel::Causal,
            ..PredictorConfig::default()
        })
        .predict(&observed.history);
        let rc = Predictor::new(PredictorConfig {
            strategy: Strategy::ApproxRelaxed,
            isolation: IsolationLevel::ReadCommitted,
            ..PredictorConfig::default()
        })
        .predict(&observed.history);

        if causal.is_prediction() {
            causal_predictions += 1;
        }
        if rc.is_prediction() {
            rc_predictions += 1;
        }
        println!(
            "seed {seed}: {writing} writing txn(s); causal prediction = {}, rc prediction = {}",
            causal.is_prediction(),
            rc.is_prediction()
        );
    }

    println!("\ncausal predictions: {causal_predictions}/{seeds} (the paper reports 0/10)");
    println!("rc predictions:     {rc_predictions}/{seeds} (the paper reports 10/10)");
}
