//! Quickstart: the paper's motivating example (Figures 1–3).
//!
//! Two clients concurrently deposit into the same account. The observed
//! execution is serializable (the second deposit sees the first); IsoPredict
//! predicts the causally consistent but unserializable execution in which
//! both deposits read the initial balance, losing one of the updates.
//!
//! Run with `cargo run --example quickstart`.

use isopredict::{report, IsolationLevel, PredictionOutcome, Predictor, PredictorConfig, Strategy};
use isopredict_history::{serializability, HistoryBuilder, TxnId};

fn main() {
    // Build the observed execution of Figure 1a / 2a by hand. (The other
    // examples record observed executions by running workloads against the
    // bundled store; see `smallbank_audit.rs`.)
    let mut builder = HistoryBuilder::new();
    let client1 = builder.session("client-1");
    let client2 = builder.session("client-2");

    // deposit(acct, 50): reads balance 0 from the initial state, writes 50.
    let t1 = builder.begin(client1);
    builder.read(t1, "acct", TxnId::INITIAL);
    builder.write(t1, "acct");
    builder.commit(t1);

    // deposit(acct, 60): reads balance 50 from t1, writes 110.
    let t2 = builder.begin(client2);
    builder.read(t2, "acct", t1);
    builder.write(t2, "acct");
    builder.commit(t2);

    let observed = builder.finish();
    println!(
        "observed execution: {} transactions, serializable = {}",
        observed.committed_transactions().count(),
        serializability::check(&observed).is_serializable()
    );

    // Predict an unserializable execution that is still causally consistent.
    let predictor = Predictor::new(PredictorConfig {
        strategy: Strategy::ApproxRelaxed,
        isolation: IsolationLevel::Causal,
        ..PredictorConfig::default()
    });

    match predictor.predict(&observed) {
        PredictionOutcome::Prediction(prediction) => {
            println!("\n{}", report::text_report(&observed, &prediction));
            println!("Graphviz rendering of the predicted execution:\n");
            println!("{}", report::dot_report(&prediction));
        }
        PredictionOutcome::NoPrediction { reason } => {
            println!("no unserializable execution can be predicted: {reason:?}");
        }
        PredictionOutcome::Unknown { .. } => println!("solver budget exhausted"),
    }
}
