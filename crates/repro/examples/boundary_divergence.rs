//! Prediction boundaries and divergence (the paper's Figure 9).
//!
//! One session deposits; another withdraws (aborting on insufficient funds)
//! and deposits again. A relaxed-boundary prediction makes the withdrawal
//! read the initial balance — but replaying the application then takes the
//! "insufficient funds" branch and aborts, so the validating execution
//! *diverges* and may end up serializable. This example shows the strict and
//! relaxed boundaries side by side on that scenario.
//!
//! Run with `cargo run --example boundary_divergence`.

use isopredict::{report, IsolationLevel, Predictor, PredictorConfig, Strategy};
use isopredict_history::{HistoryBuilder, TxnId};

fn main() {
    // The observed execution of Figure 9a/9b: deposit 60; withdraw 50 (reads
    // 60, succeeds); deposit 5 (reads 10).
    let mut builder = HistoryBuilder::new();
    let s1 = builder.session("depositor");
    let s2 = builder.session("withdraw-then-deposit");

    let t1 = builder.begin(s1);
    builder.read(t1, "acct", TxnId::INITIAL);
    builder.write(t1, "acct");
    builder.commit(t1);

    let t2 = builder.begin(s2);
    builder.read(t2, "acct", t1);
    builder.write(t2, "acct");
    builder.commit(t2);

    let t3 = builder.begin(s2);
    builder.read(t3, "acct", t2);
    builder.write(t3, "acct");
    builder.commit(t3);

    let observed = builder.finish();

    for strategy in [Strategy::ApproxStrict, Strategy::ApproxRelaxed] {
        println!("=== {strategy} ===");
        let predictor = Predictor::new(PredictorConfig {
            strategy,
            isolation: IsolationLevel::Causal,
            ..PredictorConfig::default()
        });
        match predictor.predict(&observed) {
            isopredict::PredictionOutcome::Prediction(prediction) => {
                println!("{}", report::text_report(&observed, &prediction));
                println!(
                    "note: replaying the application may diverge here (the withdrawal \
                     aborts when it reads the initial balance), which is why the strict \
                     boundary refuses this prediction.\n"
                );
            }
            isopredict::PredictionOutcome::NoPrediction { reason } => {
                println!("no prediction ({reason:?}) — the strict boundary excludes the\n  events that could diverge, and what remains is serializable.\n");
            }
            isopredict::PredictionOutcome::Unknown { .. } => println!("budget exhausted\n"),
        }
    }
}
