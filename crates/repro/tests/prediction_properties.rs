//! Property-based tests of the predictive analysis itself: whatever the
//! predictor reports must hold up against the independent history-level
//! checkers.

use proptest::prelude::*;

use isopredict::Strategy as PredictionStrategy;
use isopredict::{IsolationLevel, PredictionOutcome, Predictor, PredictorConfig};
use isopredict_history::{serializability, History, HistoryBuilder, TxnId};

/// Builds a random *serializable-by-construction* observed history: sessions
/// execute read-modify-write transactions over a few keys, and every read
/// observes the globally latest committed write (as the recording store would).
fn observed_history(layout: &[Vec<Vec<u8>>]) -> History {
    let mut builder = HistoryBuilder::new();
    let sessions: Vec<_> = (0..layout.len())
        .map(|i| builder.session(format!("s{i}")))
        .collect();
    // latest writer per key (by key index).
    let mut latest: Vec<TxnId> = vec![TxnId::INITIAL; 4];

    let max_txns = layout.iter().map(Vec::len).max().unwrap_or(0);
    for txn_index in 0..max_txns {
        for (s, session_txns) in layout.iter().enumerate() {
            let Some(keys) = session_txns.get(txn_index) else {
                continue;
            };
            let txn = builder.begin(sessions[s]);
            for &key in keys {
                let key = (key % 4) as usize;
                let name = format!("k{key}");
                builder.read(txn, &name, latest[key]);
                builder.write(txn, &name);
                latest[key] = txn;
            }
            builder.commit(txn);
        }
    }
    builder.finish()
}

fn layout_strategy() -> impl Strategy<Value = Vec<Vec<Vec<u8>>>> {
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec(0u8..4, 1..3), 1..3),
        2..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Soundness of the approximate encoding: every prediction is a feasible
    /// prefix (observed histories here are serializable), unserializable, and
    /// valid under the requested isolation level.
    #[test]
    fn approx_predictions_are_sound(layout in layout_strategy()) {
        let observed = observed_history(&layout);
        prop_assert!(serializability::check(&observed).is_serializable());

        // Causal and read committed only: these generator layouts are
        // read-modify-write chains, where snapshot-isolation predictions
        // essentially never exist and the solver would spend the whole
        // budget on unsat proofs (SI soundness is covered by the dedicated
        // write-skew tests and the campaign smoke test).
        for isolation in [IsolationLevel::Causal, IsolationLevel::ReadCommitted] {
            let predictor = Predictor::new(PredictorConfig {
                strategy: PredictionStrategy::ApproxRelaxed,
                isolation,
                conflict_budget: Some(200_000),
                ..PredictorConfig::default()
            });
            match predictor.predict(&observed) {
                PredictionOutcome::Prediction(prediction) => {
                    prop_assert!(
                        !serializability::check(&prediction.predicted).is_serializable(),
                        "prediction must be unserializable"
                    );
                    prop_assert!(
                        isolation.is_conformant(&prediction.predicted),
                        "{}: prediction must conform to its level",
                        isolation
                    );
                    prop_assert!(!prediction.changed_reads.is_empty());
                }
                PredictionOutcome::NoPrediction { .. } | PredictionOutcome::Unknown { .. } => {}
            }
        }
    }

    /// Agreement between the approximate and exact strategies on the strict
    /// boundary: the approximate encoding is a sufficient condition, so it
    /// must never predict when the exact search proves nothing exists — and
    /// in the paper's experiments the two always coincide.
    #[test]
    fn approx_strict_never_contradicts_exact_strict(layout in layout_strategy()) {
        let observed = observed_history(&layout);
        let approx = Predictor::new(PredictorConfig {
            strategy: PredictionStrategy::ApproxStrict,
            isolation: IsolationLevel::Causal,
            conflict_budget: Some(200_000),
            ..PredictorConfig::default()
        })
        .predict(&observed);
        let exact = Predictor::new(PredictorConfig {
            strategy: PredictionStrategy::ExactStrict,
            isolation: IsolationLevel::Causal,
            conflict_budget: Some(200_000),
            max_exact_candidates: 64,
            ..PredictorConfig::default()
        })
        .predict(&observed);

        if approx.is_prediction() {
            prop_assert!(
                !exact.is_no_prediction(),
                "approximate strategy predicted but exact proved no prediction exists"
            );
        }
    }
}
