//! Cross-crate integration tests: record an observed execution with the
//! store, predict with the analysis, validate by replaying the workload.

use isopredict::{
    validate, IsolationLevel, PredictionOutcome, Predictor, PredictorConfig, Strategy,
};
use isopredict_history::{causal, serializability};
use isopredict_store::StoreMode;
use isopredict_workloads::{run, Benchmark, Schedule, WorkloadConfig};

fn predict(
    observed: &isopredict_history::History,
    strategy: Strategy,
    isolation: IsolationLevel,
) -> PredictionOutcome {
    Predictor::new(PredictorConfig {
        strategy,
        isolation,
        ..PredictorConfig::default()
    })
    .predict(observed)
}

#[test]
fn every_benchmark_records_a_serializable_observed_execution() {
    for benchmark in Benchmark::all() {
        for seed in 0..3 {
            let config = WorkloadConfig::small(seed);
            let observed = run(
                benchmark,
                &config,
                StoreMode::SerializableRecord,
                &Schedule::RoundRobin,
            );
            assert!(
                serializability::check(&observed.history).is_serializable(),
                "{benchmark} seed {seed}"
            );
            assert!(observed.violations.is_empty(), "{benchmark} seed {seed}");
        }
    }
}

#[test]
fn predictions_are_unserializable_and_respect_the_isolation_level() {
    for benchmark in [Benchmark::Smallbank, Benchmark::Tpcc] {
        for isolation in IsolationLevel::ALL {
            // Three transactions per session keep the debug-mode solves quick
            // while still leaving room for cross-session anomalies; snapshot
            // isolation gets two, because its no-prediction proofs are the
            // most expensive solver calls in the workspace.
            let txns_per_session = if isolation == IsolationLevel::Snapshot {
                2
            } else {
                3
            };
            let config = WorkloadConfig {
                txns_per_session,
                ..WorkloadConfig::small(0)
            };
            let observed = run(
                benchmark,
                &config,
                StoreMode::SerializableRecord,
                &Schedule::RoundRobin,
            );
            let outcome = predict(&observed.history, Strategy::ApproxRelaxed, isolation);
            if let PredictionOutcome::Prediction(prediction) = outcome {
                assert!(
                    !serializability::check(&prediction.predicted).is_serializable(),
                    "{benchmark} under {isolation}: prediction must be unserializable"
                );
                assert!(
                    isolation.is_conformant(&prediction.predicted),
                    "{benchmark} under {isolation}: prediction must conform to its level"
                );
            }
        }
    }
}

#[test]
fn rc_predictions_are_at_least_as_frequent_as_causal_ones() {
    // rc is strictly weaker than causal, so every causal prediction
    // opportunity is also an rc one (Tables 4 vs 5). A shortened workload
    // keeps the debug-mode unsatisfiability proofs cheap; the full sweep is
    // the table4_5 binary's job.
    for benchmark in Benchmark::all() {
        let mut causal_found = 0;
        let mut rc_found = 0;
        for seed in 0..1 {
            let config = WorkloadConfig {
                txns_per_session: 2,
                ..WorkloadConfig::small(seed)
            };
            let observed = run(
                benchmark,
                &config,
                StoreMode::SerializableRecord,
                &Schedule::RoundRobin,
            );
            if predict(
                &observed.history,
                Strategy::ApproxRelaxed,
                IsolationLevel::Causal,
            )
            .is_prediction()
            {
                causal_found += 1;
            }
            if predict(
                &observed.history,
                Strategy::ApproxRelaxed,
                IsolationLevel::ReadCommitted,
            )
            .is_prediction()
            {
                rc_found += 1;
            }
        }
        assert!(
            rc_found >= causal_found,
            "{benchmark}: rc found {rc_found}, causal found {causal_found}"
        );
    }
}

#[test]
fn smallbank_validation_confirms_the_prediction() {
    // Find a seed with a causal prediction and validate it end to end.
    for seed in 0..5 {
        let config = WorkloadConfig::small(seed);
        let observed = run(
            Benchmark::Smallbank,
            &config,
            StoreMode::SerializableRecord,
            &Schedule::RoundRobin,
        );
        let outcome = predict(
            &observed.history,
            Strategy::ApproxRelaxed,
            IsolationLevel::Causal,
        );
        let PredictionOutcome::Prediction(prediction) = outcome else {
            continue;
        };
        let plan = validate::plan_validation(&prediction, &observed.committed_indices);
        assert!(!plan.schedule.is_empty());
        let validating = run(
            Benchmark::Smallbank,
            &config,
            StoreMode::Controlled {
                level: IsolationLevel::Causal,
                script: plan.script.clone(),
            },
            &Schedule::Explicit(plan.schedule.clone()),
        );
        let assessment = validate::assess(&validating.history, &validating.divergences);
        // The validating execution must at least conform to the isolation level.
        assert!(causal::is_causal(&validating.history), "seed {seed}");
        // In the overwhelmingly common case (>99% in the paper) it is also
        // unserializable; accept a rare serializable divergence but require
        // that at least one seed validates.
        if assessment.validated {
            return;
        }
    }
    panic!("no seed in 0..5 produced a validated Smallbank prediction under causal");
}

/// The write-skew application: two sessions share a two-key invariant
/// (`x + y` must cover each withdrawal); each withdraws from its own key
/// after checking the combined balance. Balances are high enough that both
/// withdrawals commit even serially — so the observed history contains both
/// writes, and the predictable anomaly is the crossed stale reads (write
/// skew), not a suppressed guard. Drives the store directly (no workload
/// crate) so the test controls every event.
fn run_withdrawals(
    mode: isopredict_store::StoreMode,
    order: &[usize],
) -> (
    isopredict_history::History,
    Vec<isopredict_store::Divergence>,
) {
    let engine = isopredict_store::Engine::new(mode);
    engine.set_initial("x", isopredict_store::Value::Int(100));
    engine.set_initial("y", isopredict_store::Value::Int(100));
    let clients = [engine.client("alice"), engine.client("bob")];
    let own_keys = ["x", "y"];
    for &session in order {
        let mut t = clients[session].begin();
        t.declare_writes([own_keys[session]]);
        let x = t.get_int("x", 0);
        let y = t.get_int("y", 0);
        if x + y >= 60 {
            let own = if session == 0 { x } else { y };
            t.put(own_keys[session], own - 60);
        }
        t.commit();
    }
    (engine.history(), engine.divergences())
}

#[test]
fn snapshot_isolation_write_skew_predicts_and_validates_end_to_end() {
    // Record the serializable observation: both withdrawals commit, the
    // second observing the first's effect.
    let (observed, _) = run_withdrawals(StoreMode::SerializableRecord, &[0, 1]);
    assert!(serializability::check(&observed).is_serializable());

    // Predict under snapshot isolation: the only anomaly here is write skew.
    let outcome = predict(&observed, Strategy::ApproxRelaxed, IsolationLevel::Snapshot);
    let PredictionOutcome::Prediction(prediction) = outcome else {
        panic!("write skew must be predicted under snapshot isolation");
    };
    assert!(
        isopredict_history::si::is_si(&prediction.predicted),
        "prediction must be SI-legal"
    );
    assert!(
        !serializability::check(&prediction.predicted).is_serializable(),
        "prediction must be unserializable"
    );

    // Validate by steering a replay of the same application.
    let committed = vec![vec![0], vec![0]];
    let plan = validate::plan_validation(&prediction, &committed);
    let schedule: Vec<usize> = plan.schedule.iter().map(|&(session, _)| session).collect();
    let (validating, divergences) = run_withdrawals(
        StoreMode::Controlled {
            level: IsolationLevel::Snapshot,
            script: plan.script.clone(),
        },
        &schedule,
    );
    let assessment = validate::assess(&validating, &divergences);
    assert!(
        assessment.validated,
        "the validating execution must be unserializable: {assessment:?}"
    );
    assert!(!assessment.diverged, "{:?}", assessment.divergences);
    assert!(
        isopredict_history::si::is_si(&validating),
        "the validating execution must stay SI"
    );
}

#[test]
fn voter_reproduces_the_causal_rc_asymmetry() {
    let mut rc_predictions = 0;
    for seed in 0..2 {
        let config = WorkloadConfig {
            txns_per_session: 2,
            ..WorkloadConfig::small(seed)
        };
        let observed = run(
            Benchmark::Voter,
            &config,
            StoreMode::SerializableRecord,
            &Schedule::RoundRobin,
        );
        let causal_outcome = predict(
            &observed.history,
            Strategy::ApproxRelaxed,
            IsolationLevel::Causal,
        );
        assert!(
            causal_outcome.is_no_prediction(),
            "seed {seed}: Voter must have no causal prediction"
        );
        if predict(
            &observed.history,
            Strategy::ApproxRelaxed,
            IsolationLevel::ReadCommitted,
        )
        .is_prediction()
        {
            rc_predictions += 1;
        }
    }
    assert!(rc_predictions > 0, "Voter must have rc predictions");
}
