//! Property-based integration tests over the store's weak execution modes and
//! the history-level checkers.

use proptest::prelude::*;

use isopredict_history::{causal, readcommitted, serializability, si, HistoryBuilder, TxnId};
use isopredict_store::{Engine, IsolationLevel, StoreMode, Value};

/// A small random program: per session, a list of transactions, each a list
/// of (key index, is_write) operations.
fn program_strategy() -> impl Strategy<Value = Vec<Vec<Vec<(u8, bool)>>>> {
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec((0u8..3, any::<bool>()), 1..4), 1..4),
        1..4,
    )
}

fn run_program(program: &[Vec<Vec<(u8, bool)>>], mode: StoreMode) -> isopredict_history::History {
    let engine = Engine::new(mode);
    for key in 0..3u8 {
        engine.set_initial(&format!("k{key}"), Value::Int(0));
    }
    let clients: Vec<_> = (0..program.len())
        .map(|s| engine.client(format!("s{s}")))
        .collect();
    // Round-robin the sessions' transactions.
    let max_txns = program.iter().map(Vec::len).max().unwrap_or(0);
    for txn_index in 0..max_txns {
        for (session, txns) in program.iter().enumerate() {
            let Some(ops) = txns.get(txn_index) else {
                continue;
            };
            let mut txn = clients[session].begin();
            // Declare the write set up front, as a snapshot-isolation client
            // (ignored by the other levels).
            txn.declare_writes(
                ops.iter()
                    .filter(|(_, is_write)| *is_write)
                    .map(|(key, _)| format!("k{key}")),
            );
            for (key, is_write) in ops {
                let key = format!("k{key}");
                if *is_write {
                    let value = txn.get_int(&key, 0);
                    txn.put(&key, value + 1);
                } else {
                    let _ = txn.get(&key);
                }
            }
            txn.commit();
        }
    }
    engine.history()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serializable recording always yields serializable histories.
    #[test]
    fn serializable_recording_is_serializable(program in program_strategy()) {
        let history = run_program(&program, StoreMode::SerializableRecord);
        prop_assert!(serializability::check(&history).is_serializable());
        // Serializability is the strongest level of the seam: every weaker
        // checker — snapshot isolation included — must accept the history.
        for level in IsolationLevel::ALL {
            prop_assert!(level.is_conformant(&history), "{}", level);
        }
    }

    /// Random weak executions always conform to their isolation level.
    #[test]
    fn weak_random_causal_is_causal(program in program_strategy(), seed in 0u64..1000) {
        let history = run_program(
            &program,
            StoreMode::WeakRandom { level: IsolationLevel::Causal, seed },
        );
        prop_assert!(causal::is_causal(&history));
        // causal implies read committed.
        prop_assert!(readcommitted::is_read_committed(&history));
    }

    /// Random weak rc executions conform to read committed.
    #[test]
    fn weak_random_rc_is_read_committed(program in program_strategy(), seed in 0u64..1000) {
        let history = run_program(
            &program,
            StoreMode::WeakRandom { level: IsolationLevel::ReadCommitted, seed },
        );
        prop_assert!(readcommitted::is_read_committed(&history));
    }

    /// Random weak snapshot-isolation executions conform to SI — the
    /// declared-write-set chooser really does enforce first-committer-wins.
    #[test]
    fn weak_random_snapshot_is_si(program in program_strategy(), seed in 0u64..1000) {
        let history = run_program(
            &program,
            StoreMode::WeakRandom { level: IsolationLevel::Snapshot, seed },
        );
        prop_assert!(si::is_si(&history));
        // SI implies causal (and hence read committed) in this framework.
        prop_assert!(causal::is_causal(&history));
    }

    /// Serializability is monotone under event removal: dropping transactions
    /// (and the reads that observed them) from a serializable history keeps
    /// it serializable, because removing events only removes constraints.
    /// (Note that *retargeting* those reads to the initial state instead is a
    /// semantic change and may well introduce anomalies — that is exactly the
    /// kind of alternative execution the predictor searches for.)
    #[test]
    fn serializability_is_preserved_by_restriction(program in program_strategy(), keep_mask in any::<u16>()) {
        let history = run_program(&program, StoreMode::SerializableRecord);
        let keep: Vec<TxnId> = history
            .committed_transactions()
            .enumerate()
            .filter(|(i, _)| keep_mask & (1 << (i % 16)) != 0)
            .map(|(_, t)| t.id)
            .collect();
        let restricted = history.restrict(&keep, false);
        prop_assert!(serializability::check(&restricted).is_serializable());
    }
}

/// Deterministic regression: the checkers agree on the strictness ordering
/// serializable ⊂ snapshot isolation ⊂ causal ⊂ rc on the running examples.
#[test]
fn isolation_level_strictness_on_the_paper_examples() {
    // Racing deposits (a lost update): causal and rc but neither
    // serializable nor SI.
    let mut b = HistoryBuilder::new();
    let s1 = b.session("s1");
    let s2 = b.session("s2");
    let t1 = b.begin(s1);
    b.read(t1, "acct", TxnId::INITIAL);
    b.write(t1, "acct");
    b.commit(t1);
    let t2 = b.begin(s2);
    b.read(t2, "acct", TxnId::INITIAL);
    b.write(t2, "acct");
    b.commit(t2);
    let racing = b.finish();
    assert!(!serializability::check(&racing).is_serializable());
    assert!(!si::is_si(&racing));
    assert!(causal::is_causal(&racing));
    assert!(readcommitted::is_read_committed(&racing));

    // Write skew: SI (and so causal and rc) but not serializable.
    let mut b = HistoryBuilder::new();
    let s1 = b.session("s1");
    let s2 = b.session("s2");
    let t1 = b.begin(s1);
    b.read(t1, "x", TxnId::INITIAL);
    b.write(t1, "y");
    b.commit(t1);
    let t2 = b.begin(s2);
    b.read(t2, "y", TxnId::INITIAL);
    b.write(t2, "x");
    b.commit(t2);
    let skew = b.finish();
    assert!(!serializability::check(&skew).is_serializable());
    assert!(si::is_si(&skew));
    assert!(causal::is_causal(&skew));
    assert!(readcommitted::is_read_committed(&skew));
}
