//! Observability substrate for the IsoPredict pipeline.
//!
//! Every open performance question in the workspace — solver-bound campaigns,
//! budget-exhausted `unknown`s, expensive SI unsat proofs — needs the same
//! instrument: a way to say *which phase, which shard, and which solve call*
//! the time went to. This crate is that instrument, and it is deliberately
//! dependency-light (vendored workspace deps only) so every layer from the
//! SAT core's callers up to the CLIs can afford it.
//!
//! # Model
//!
//! * A [`Registry`] owns the run's telemetry: finished [`SpanRecord`]s,
//!   monotonic counters, gauges, and an optional **JSONL event sink** that
//!   streams every span and counter update as one JSON object per line.
//! * An [`Obs`] is a cheap, cloneable handle *into* a registry, carrying the
//!   current span context. The disabled handle ([`Obs::off`]) makes every
//!   operation a no-op, so instrumented code pays one branch when
//!   observability is off — the product code never needs `#[cfg]`s or
//!   `Option<&Registry>` plumbing.
//! * [`Obs::span`] opens a hierarchical timer; the returned [`Span`] closes
//!   it on drop (or explicit [`Span::finish`]) and hands out child contexts
//!   via [`Span::obs`]. Span *names* form stable taxonomy paths
//!   (`campaign/predict/shard-0/solve`); run-dependent detail (benchmark,
//!   seed, outcome, …) goes into labels.
//! * [`Snapshot`]/[`MetricsSection`] turn the registry's raw records into the
//!   aggregated `metrics` section embedded in campaign reports, and
//!   [`span_forest`] normalizes records into a timing-free [`SpanNode`] tree
//!   whose shape is deterministic across worker counts (pinned by the
//!   orchestrator's proptests).
//!
//! # Determinism contract
//!
//! Spans and counters describe *work*, which for a fixed campaign
//! specification is deterministic; only their timings and interleavings are
//! not. Consumers therefore split the same way campaign reports do: the
//! normalized span tree and final counter values may be compared across runs,
//! while durations, sequence numbers and event order may not.
//!
//! ```
//! use isopredict_obs::{span_forest, Registry};
//!
//! let registry = Registry::new();
//! let obs = registry.obs();
//! {
//!     let predict = obs.span("predict");
//!     let solve = predict.obs().span("solve");
//!     predict.obs().count("solver.conflicts", 42);
//!     solve.finish();
//! }
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("solver.conflicts"), 42);
//! let forest = span_forest(&snapshot.spans);
//! assert_eq!(forest[0].name, "predict");
//! assert_eq!(forest[0].children[0].name, "solve");
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod cli;
mod event;
mod metrics;
mod registry;
mod span;

pub use cli::metrics_registry;
pub use event::{
    validate_stream, Label, ObsEvent, StreamError, StreamSummary, MIN_SCHEMA_VERSION,
    SCHEMA_VERSION,
};
pub use metrics::{CounterValue, MetricsSection, SpanAggregate};
pub use registry::{BufferSink, HeartbeatSample, Obs, Registry, Span};
pub use span::{span_forest, Snapshot, SpanNode, SpanRecord};
