//! The thread-safe telemetry registry and its [`Obs`] handles.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::event::{Label, ObsEvent, SCHEMA_VERSION};
use crate::span::{Snapshot, SpanRecord};

/// Owns one run's telemetry: span records, counters, gauges, and the
/// optional JSONL sink. Handles into the registry are [`Obs`] values obtained
/// from [`Registry::obs`]; the registry itself stays with whoever will
/// aggregate the results (a CLI, a benchmark harness, a test).
pub struct Registry {
    inner: Arc<Inner>,
}

struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

struct State {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    seq: u64,
    sink: Option<Box<dyn Write + Send>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A registry without an event sink (spans and counters are still
    /// recorded and can be snapshot).
    #[must_use]
    pub fn new() -> Registry {
        Registry::build(None)
    }

    /// A registry streaming every event to `sink` as JSONL. The stream
    /// header (`run_start`) is written immediately.
    #[must_use]
    pub fn with_sink(sink: Box<dyn Write + Send>) -> Registry {
        Registry::build(Some(sink))
    }

    fn build(sink: Option<Box<dyn Write + Send>>) -> Registry {
        let registry = Registry {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State {
                    spans: Vec::new(),
                    counters: BTreeMap::new(),
                    gauges: BTreeMap::new(),
                    seq: 0,
                    sink,
                }),
            }),
        };
        registry.inner.emit(
            &mut registry.inner.state.lock(),
            &ObsEvent::RunStart {
                schema: SCHEMA_VERSION,
            },
        );
        registry
    }

    /// The root observation context.
    #[must_use]
    pub fn obs(&self) -> Obs {
        Obs {
            ctx: Some(Ctx {
                inner: Arc::clone(&self.inner),
                parent: None,
            }),
        }
    }

    /// A point-in-time copy of all telemetry recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.inner.snapshot()
    }

    /// Flushes the event sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = self.inner.state.lock().sink.as_mut() {
            let _ = sink.flush();
        }
    }
}

impl Inner {
    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn snapshot(&self) -> Snapshot {
        let state = self.state.lock();
        Snapshot {
            spans: state.spans.clone(),
            counters: state
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: state.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        }
    }

    /// Writes one event line; on the first sink failure the sink is dropped
    /// (telemetry must never take the analysis down with it).
    fn emit(&self, state: &mut State, event: &ObsEvent) {
        if let Some(sink) = state.sink.as_mut() {
            let line = serde_json::to_string(event).expect("events always serialize");
            if writeln!(sink, "{line}").is_err() {
                eprintln!("isopredict-obs: event sink failed; disabling the stream");
                state.sink = None;
            }
        }
    }
}

/// One solver progress sample, as handed to [`Obs::heartbeat`]. The caller
/// (whoever installed the solver's heartbeat hook) owns the wall clock and
/// computes `conflicts_per_sec`; everything else is copied straight from the
/// solver's count-only heartbeat.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HeartbeatSample {
    /// Heartbeat ordinal within the solve call, counting from 1.
    pub hb_seq: u64,
    /// Conflicts recorded by the solver so far.
    pub conflicts: u64,
    /// Conflict rate since the previous heartbeat (0.0 on the first).
    pub conflicts_per_sec: f64,
    /// Restarts so far.
    pub restarts: u64,
    /// Current assignment trail depth.
    pub trail_depth: u64,
    /// Learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Variables fixed at decision level 0.
    pub vars_assigned_at_root: u64,
    /// Total variables in the solver.
    pub total_vars: u64,
    /// Clause-family names, parallel to `conflicts_by_family`.
    pub families: Vec<String>,
    /// Per-family conflict partition (sums to `conflicts`).
    pub conflicts_by_family: Vec<u64>,
}

/// A cheap, cloneable handle into a [`Registry`], carrying the current span
/// context. The disabled handle ([`Obs::off`], also `Default`) turns every
/// operation into a no-op, so instrumented code takes an `&Obs` (or stores an
/// `Obs`) unconditionally.
#[derive(Clone, Default)]
pub struct Obs {
    ctx: Option<Ctx>,
}

#[derive(Clone)]
struct Ctx {
    inner: Arc<Inner>,
    parent: Option<u64>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.ctx {
            None => write!(f, "Obs(off)"),
            Some(ctx) => write!(f, "Obs(parent: {:?})", ctx.parent),
        }
    }
}

impl Obs {
    /// The disabled handle: every operation is a no-op.
    #[must_use]
    pub fn off() -> Obs {
        Obs { ctx: None }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.ctx.is_some()
    }

    /// Opens a span as a child of the current context.
    #[must_use]
    pub fn span(&self, name: &str) -> Span {
        self.span_with(name, &[])
    }

    /// Opens a span with labels attached from the start.
    #[must_use]
    pub fn span_with(&self, name: &str, labels: &[(&str, &str)]) -> Span {
        let Some(ctx) = &self.ctx else {
            return Span {
                obs: Obs::off(),
                start: None,
                finished: true,
            };
        };
        let start = Instant::now();
        let start_us = ctx.inner.now_us();
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        let mut state = ctx.inner.state.lock();
        let id = state.spans.len() as u64;
        state.spans.push(SpanRecord {
            id,
            parent: ctx.parent,
            name: name.to_string(),
            labels: labels.clone(),
            start_us,
            dur_us: None,
        });
        state.seq += 1;
        let event = ObsEvent::SpanStart {
            seq: state.seq,
            id,
            parent: ctx.parent,
            name: name.to_string(),
            at_us: start_us,
            labels: labels
                .into_iter()
                .map(|(key, value)| Label { key, value })
                .collect(),
        };
        ctx.inner.emit(&mut state, &event);
        drop(state);
        Span {
            obs: Obs {
                ctx: Some(Ctx {
                    inner: Arc::clone(&ctx.inner),
                    parent: Some(id),
                }),
            },
            start: Some(start),
            finished: false,
        }
    }

    /// Adds `delta` to the named monotonic counter (no-op when `delta == 0`).
    pub fn count(&self, name: &str, delta: u64) {
        let Some(ctx) = &self.ctx else { return };
        if delta == 0 {
            return;
        }
        let mut state = ctx.inner.state.lock();
        let total = {
            let entry = state.counters.entry(name.to_string()).or_insert(0);
            *entry = entry.saturating_add(delta);
            *entry
        };
        state.seq += 1;
        let event = ObsEvent::Counter {
            seq: state.seq,
            name: name.to_string(),
            delta,
            total,
        };
        ctx.inner.emit(&mut state, &event);
    }

    /// Emits a solver progress heartbeat (schema v2) to the event stream.
    ///
    /// Heartbeats are stream-only telemetry: they do not accumulate in the
    /// registry snapshot (their content is a point-in-time sample, not an
    /// aggregate), so a disabled handle or a sink-less registry makes this a
    /// no-op apart from the sequence number.
    pub fn heartbeat(&self, sample: HeartbeatSample) {
        let Some(ctx) = &self.ctx else { return };
        let at_us = ctx.inner.now_us();
        let mut state = ctx.inner.state.lock();
        state.seq += 1;
        let event = ObsEvent::Heartbeat {
            seq: state.seq,
            at_us,
            hb_seq: sample.hb_seq,
            conflicts: sample.conflicts,
            conflicts_per_sec: sample.conflicts_per_sec,
            restarts: sample.restarts,
            trail_depth: sample.trail_depth,
            learnt_clauses: sample.learnt_clauses,
            vars_assigned_at_root: sample.vars_assigned_at_root,
            total_vars: sample.total_vars,
            families: sample.families,
            conflicts_by_family: sample.conflicts_by_family,
        };
        ctx.inner.emit(&mut state, &event);
    }

    /// Sets the named gauge to `value`.
    pub fn gauge(&self, name: &str, value: u64) {
        let Some(ctx) = &self.ctx else { return };
        let mut state = ctx.inner.state.lock();
        state.gauges.insert(name.to_string(), value);
        state.seq += 1;
        let event = ObsEvent::Gauge {
            seq: state.seq,
            name: name.to_string(),
            value,
        };
        ctx.inner.emit(&mut state, &event);
    }

    /// A snapshot of the underlying registry (`None` when disabled).
    #[must_use]
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.ctx.as_ref().map(|ctx| ctx.inner.snapshot())
    }
}

/// An open span. Finishes (records its duration and emits `span_end`) on
/// [`Span::finish`] or on drop; child spans and metrics hang off
/// [`Span::obs`].
pub struct Span {
    /// Context whose parent is this span (or the disabled handle).
    obs: Obs,
    start: Option<Instant>,
    finished: bool,
}

impl Span {
    /// The observation context *inside* this span: children opened through
    /// it become this span's children.
    #[must_use]
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The span's registry id (`None` when observability is off).
    #[must_use]
    pub fn id(&self) -> Option<u64> {
        self.obs.ctx.as_ref().and_then(|ctx| ctx.parent)
    }

    /// Attaches a label (visible in the record and the `span_end` event).
    pub fn label(&self, key: &str, value: &str) {
        let Some(ctx) = &self.obs.ctx else { return };
        let Some(id) = ctx.parent else { return };
        let mut state = ctx.inner.state.lock();
        state.spans[id as usize]
            .labels
            .push((key.to_string(), value.to_string()));
    }

    /// Closes the span now (otherwise drop does).
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let (Some(ctx), Some(start)) = (&self.obs.ctx, self.start) else {
            return;
        };
        let Some(id) = ctx.parent else { return };
        let dur_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut state = ctx.inner.state.lock();
        state.spans[id as usize].dur_us = Some(dur_us);
        state.seq += 1;
        let record = &state.spans[id as usize];
        let event = ObsEvent::SpanEnd {
            seq: state.seq,
            id,
            name: record.name.clone(),
            path: record.path(&state.spans),
            dur_us,
            labels: record
                .labels
                .iter()
                .map(|(key, value)| Label {
                    key: key.clone(),
                    value: value.clone(),
                })
                .collect(),
        };
        ctx.inner.emit(&mut state, &event);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// An in-memory `Write` sink for tests and self-measurement: clone it, hand
/// one copy to [`Registry::with_sink`], and read the captured stream back
/// from the other.
#[derive(Clone, Default)]
pub struct BufferSink {
    buffer: Arc<Mutex<Vec<u8>>>,
}

impl BufferSink {
    /// An empty buffer sink.
    #[must_use]
    pub fn new() -> BufferSink {
        BufferSink::default()
    }

    /// The captured stream as UTF-8 text.
    #[must_use]
    pub fn contents(&self) -> String {
        String::from_utf8(self.buffer.lock().clone()).expect("event streams are UTF-8")
    }
}

impl Write for BufferSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.buffer.lock().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::validate_stream;
    use crate::span::span_forest;

    #[test]
    fn disabled_handle_is_a_no_op() {
        let obs = Obs::off();
        assert!(!obs.is_enabled());
        let span = obs.span("anything");
        span.obs().count("c", 5);
        span.obs().gauge("g", 1);
        assert!(span.id().is_none());
        span.finish();
        assert!(obs.snapshot().is_none());
        assert_eq!(format!("{obs:?}"), "Obs(off)");
    }

    #[test]
    fn spans_nest_and_counters_accumulate() {
        let registry = Registry::new();
        let obs = registry.obs();
        let outer = obs.span_with("outer", &[("k", "v")]);
        {
            let inner = outer.obs().span("inner");
            inner.obs().count("hits", 2);
            inner.obs().count("hits", 3);
            inner.obs().count("zero", 0);
            inner.obs().gauge("depth", 2);
        }
        outer.label("outcome", "done");
        outer.finish();

        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("hits"), 5);
        assert_eq!(snapshot.counter("zero"), 0);
        assert!(snapshot.counters.iter().all(|(name, _)| name != "zero"));
        assert_eq!(snapshot.gauge("depth"), Some(2));
        assert_eq!(snapshot.spans.len(), 2);
        assert!(snapshot.spans.iter().all(|s| s.dur_us.is_some()));

        let forest = span_forest(&snapshot.spans);
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].name, "outer");
        assert_eq!(
            forest[0].labels,
            vec![
                ("k".to_string(), "v".to_string()),
                ("outcome".to_string(), "done".to_string())
            ]
        );
        assert_eq!(forest[0].children[0].name, "inner");
    }

    #[test]
    fn dropped_spans_still_close() {
        let registry = Registry::new();
        {
            let _span = registry.obs().span("implicit");
        }
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.spans.len(), 1);
        assert!(snapshot.spans[0].dur_us.is_some());
    }

    #[test]
    fn sink_receives_a_valid_stream() {
        let sink = BufferSink::new();
        let registry = Registry::with_sink(Box::new(sink.clone()));
        let obs = registry.obs();
        let span = obs.span("phase");
        span.obs().count("n", 1);
        span.finish();
        registry.flush();

        let text = sink.contents();
        let summary = validate_stream(&text).expect("stream is valid");
        assert_eq!(summary.spans_started, 1);
        assert_eq!(summary.spans_finished, 1);
        assert_eq!(summary.counter_updates, 1);
        assert!(text.lines().next().unwrap().contains("run_start"));
    }

    #[test]
    fn heartbeats_flow_to_the_sink_and_validate() {
        let sink = BufferSink::new();
        let registry = Registry::with_sink(Box::new(sink.clone()));
        let obs = registry.obs();
        let span = obs.span("solve");
        span.obs().heartbeat(HeartbeatSample {
            hb_seq: 1,
            conflicts: 10,
            conflicts_per_sec: 0.0,
            restarts: 1,
            trail_depth: 6,
            learnt_clauses: 3,
            vars_assigned_at_root: 1,
            total_vars: 12,
            families: vec!["default".into(), "feasibility".into()],
            conflicts_by_family: vec![4, 6],
        });
        span.finish();
        registry.flush();
        let summary = validate_stream(&sink.contents()).expect("stream is valid");
        assert_eq!(summary.heartbeats, 1);
        assert_eq!(summary.schema, crate::event::SCHEMA_VERSION);

        // The disabled handle drops samples on the floor.
        Obs::off().heartbeat(HeartbeatSample::default());
    }

    #[test]
    fn concurrent_spans_record_under_their_own_parents() {
        let registry = Registry::new();
        let obs = registry.obs();
        let root = obs.span("root");
        std::thread::scope(|scope| {
            for i in 0..4 {
                let child_obs = root.obs().clone();
                scope.spawn(move || {
                    let label = i.to_string();
                    let span = child_obs.span_with("worker", &[("i", &label)]);
                    span.obs().count("work", 1);
                });
            }
        });
        root.finish();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("work"), 4);
        let forest = span_forest(&snapshot.spans);
        assert_eq!(forest[0].children.len(), 4);
        // Normalized order is by label, not by scheduling.
        let labels: Vec<String> = forest[0]
            .children
            .iter()
            .map(|c| c.labels[0].1.clone())
            .collect();
        assert_eq!(labels, ["0", "1", "2", "3"]);
    }
}
