//! Span records, registry snapshots, and the normalized span tree.

/// One finished (or still-open) hierarchical timer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Registry-unique identifier (also the record's index).
    pub id: u64,
    /// Identifier of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Taxonomy name (`"predict"`, `"solve"`, `"shard-0"`, …). Names form
    /// the aggregation path; run-dependent detail belongs in labels.
    pub name: String,
    /// Key–value labels (benchmark, seed, outcome, …), in attachment order.
    pub labels: Vec<(String, String)>,
    /// Start offset from the registry epoch, in microseconds.
    pub start_us: u64,
    /// Wall-clock duration in microseconds; `None` while the span is open.
    pub dur_us: Option<u64>,
}

impl SpanRecord {
    /// The `/`-joined name path from the root to this span, resolved against
    /// `spans` (a slice indexed by span id, as [`Snapshot::spans`] is).
    #[must_use]
    pub fn path(&self, spans: &[SpanRecord]) -> String {
        let mut parts = vec![self.name.as_str()];
        let mut parent = self.parent;
        while let Some(id) = parent {
            let record = &spans[id as usize];
            parts.push(record.name.as_str());
            parent = record.parent;
        }
        parts.reverse();
        parts.join("/")
    }
}

/// A point-in-time copy of a registry's telemetry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Every span opened so far, indexed by id.
    pub spans: Vec<SpanRecord>,
    /// Final counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Latest gauge values, sorted by name.
    pub gauges: Vec<(String, u64)>,
}

impl Snapshot {
    /// The value of the named counter (0 when never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The latest value of the named gauge, if ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// A node of the normalized, timing-free span tree: name, labels, and
/// children sorted recursively. Two runs of the same deterministic workload
/// produce equal forests no matter how many worker threads executed them or
/// how their spans interleaved.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanNode {
    /// The span's taxonomy name.
    pub name: String,
    /// The span's labels, sorted by key then value.
    pub labels: Vec<(String, String)>,
    /// Child nodes, sorted by `(name, labels, children)`.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Renders the tree as an indented outline (for test diagnostics).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.name);
        if !self.labels.is_empty() {
            let labels: Vec<String> = self
                .labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            out.push_str(&format!("[{}]", labels.join(",")));
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(depth + 1, out);
        }
    }
}

/// Builds the normalized span forest from raw records: one root node per
/// parentless span, children sorted recursively, timings discarded.
#[must_use]
pub fn span_forest(spans: &[SpanRecord]) -> Vec<SpanNode> {
    let mut children_of: Vec<Vec<u64>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<u64> = Vec::new();
    for record in spans {
        match record.parent {
            Some(parent) => children_of[parent as usize].push(record.id),
            None => roots.push(record.id),
        }
    }
    let mut forest: Vec<SpanNode> = roots
        .into_iter()
        .map(|id| build_node(id, spans, &children_of))
        .collect();
    forest.sort();
    forest
}

fn build_node(id: u64, spans: &[SpanRecord], children_of: &[Vec<u64>]) -> SpanNode {
    let record = &spans[id as usize];
    let mut labels = record.labels.clone();
    labels.sort();
    let mut children: Vec<SpanNode> = children_of[id as usize]
        .iter()
        .map(|&child| build_node(child, spans, children_of))
        .collect();
    children.sort();
    SpanNode {
        name: record.name.clone(),
        labels,
        children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, parent: Option<u64>, name: &str) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            labels: Vec::new(),
            start_us: id * 10,
            dur_us: Some(5),
        }
    }

    #[test]
    fn paths_join_ancestor_names() {
        let spans = vec![
            record(0, None, "campaign"),
            record(1, Some(0), "predict"),
            record(2, Some(1), "solve"),
        ];
        assert_eq!(spans[2].path(&spans), "campaign/predict/solve");
        assert_eq!(spans[0].path(&spans), "campaign");
    }

    #[test]
    fn forest_normalizes_sibling_order_and_ignores_timings() {
        let mut a = vec![
            record(0, None, "root"),
            record(1, Some(0), "beta"),
            record(2, Some(0), "alpha"),
        ];
        let b = vec![
            record(0, None, "root"),
            record(1, Some(0), "alpha"),
            record(2, Some(0), "beta"),
        ];
        // Different interleaving (ids/start times swapped) — same tree.
        a[1].start_us = 900;
        assert_eq!(span_forest(&a), span_forest(&b));
        let forest = span_forest(&a);
        let names: Vec<&str> = forest[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"]);
    }

    #[test]
    fn labels_distinguish_otherwise_equal_nodes() {
        let mut x = record(1, Some(0), "task");
        x.labels.push(("seed".into(), "0".into()));
        let mut y = record(2, Some(0), "task");
        y.labels.push(("seed".into(), "1".into()));
        let spans = vec![record(0, None, "root"), x, y];
        let forest = span_forest(&spans);
        assert_eq!(forest[0].children.len(), 2);
        assert_ne!(forest[0].children[0], forest[0].children[1]);
        assert!(forest[0].render().contains("task[seed=0]"));
    }

    #[test]
    fn snapshot_lookups_default_sensibly() {
        let snapshot = Snapshot {
            spans: Vec::new(),
            counters: vec![("a".into(), 3)],
            gauges: vec![("g".into(), 7)],
        };
        assert_eq!(snapshot.counter("a"), 3);
        assert_eq!(snapshot.counter("missing"), 0);
        assert_eq!(snapshot.gauge("g"), Some(7));
        assert_eq!(snapshot.gauge("missing"), None);
    }
}
