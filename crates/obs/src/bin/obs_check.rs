//! Validates a JSONL metrics event stream against the schema.
//!
//! Usage: `obs_check <events.jsonl> [--allow-open-spans]`
//!
//! Checks every line parses as an event, the header is present with a
//! supported schema version, sequence numbers strictly increase, and span
//! start/end events pair up with known parents. By default every started
//! span must also have finished (a complete run); `--allow-open-spans`
//! relaxes that for streams cut mid-run.
//!
//! Exits 0 and prints a one-line summary on success; exits 1 with the first
//! defect (and its line number) otherwise.

use std::process::ExitCode;

use isopredict_obs::validate_stream;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let allow_open = args.iter().any(|a| a == "--allow-open-spans");
    let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: obs_check <events.jsonl> [--allow-open-spans]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("obs_check: cannot read {path}: {error}");
            return ExitCode::FAILURE;
        }
    };
    match validate_stream(&text) {
        Ok(summary) => {
            if summary.spans_finished < summary.spans_started && !allow_open {
                eprintln!(
                    "obs_check: {}: {} span(s) never finished (pass --allow-open-spans for streams cut mid-run)",
                    path,
                    summary.spans_started - summary.spans_finished
                );
                return ExitCode::FAILURE;
            }
            println!(
                "obs_check: {path}: {} events OK, schema v{} ({} spans, {} counter updates, {} gauge updates, {} heartbeats)",
                summary.events,
                summary.schema,
                summary.spans_finished,
                summary.counter_updates,
                summary.gauge_updates,
                summary.heartbeats
            );
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("obs_check: {path}: {error}");
            ExitCode::FAILURE
        }
    }
}
