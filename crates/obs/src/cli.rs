//! CLI plumbing shared by the workspace binaries: `--metrics <path>` /
//! `--metrics-stdout` parsing into a sink-equipped [`Registry`].

use std::fs::File;
use std::io::{BufWriter, Write};

use crate::registry::Registry;

/// Builds a [`Registry`] from the standard metrics flags, if any are present:
///
/// * `--metrics <path>` — stream JSONL events to `path` (buffered; call
///   [`Registry::flush`] before exiting);
/// * `--metrics-stdout` — stream JSONL events to standard output.
///
/// Returns `None` when neither flag is given (telemetry off). `args` is the
/// full argument vector, `std::env::args().collect()` style.
///
/// # Panics
///
/// Panics when `--metrics` is given without a path or the file cannot be
/// created — metrics were explicitly requested, so failing silently would be
/// worse than failing loudly.
#[must_use]
pub fn metrics_registry(args: &[String]) -> Option<Registry> {
    let to_stdout = args.iter().any(|a| a == "--metrics-stdout");
    let to_file = args.iter().position(|a| a == "--metrics").map(|i| {
        args.get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .unwrap_or_else(|| panic!("--metrics requires a file path"))
            .clone()
    });
    let sink: Box<dyn Write + Send> = match (to_file, to_stdout) {
        (Some(path), _) => Box::new(BufWriter::new(
            File::create(&path)
                .unwrap_or_else(|error| panic!("cannot create metrics stream {path}: {error}")),
        )),
        (None, true) => Box::new(std::io::stdout()),
        (None, false) => return None,
    };
    Some(Registry::with_sink(sink))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn no_flags_means_no_registry() {
        assert!(metrics_registry(&argv(&["bin", "--out", "x.json"])).is_none());
    }

    #[test]
    fn metrics_flag_streams_to_the_file() {
        let dir = std::env::temp_dir().join("isopredict-obs-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        {
            let registry =
                metrics_registry(&argv(&["bin", "--metrics", &path_str])).expect("registry");
            registry.obs().span("phase").finish();
            registry.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = crate::event::validate_stream(&text).expect("valid stream");
        assert_eq!(summary.spans_finished, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "--metrics requires a file path")]
    fn metrics_flag_without_a_path_panics() {
        let _ = metrics_registry(&argv(&["bin", "--metrics", "--out"]));
    }
}
