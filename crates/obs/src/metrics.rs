//! Aggregation of raw telemetry into the report-embeddable metrics section.

use serde::{Deserialize, Serialize};

use crate::span::Snapshot;

/// All closed spans sharing one taxonomy path, aggregated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanAggregate {
    /// The `/`-joined taxonomy path (relative to the aggregation root).
    pub path: String,
    /// Number of spans on this path.
    pub count: u64,
    /// Summed wall-clock duration in microseconds.
    pub total_us: u64,
}

/// A named counter or gauge value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterValue {
    /// Metric name (e.g. `"solver.conflicts"`).
    pub name: String,
    /// Final (counter) or latest (gauge) value.
    pub value: u64,
}

/// The aggregated `metrics` section of a report: per-path span totals,
/// counters, gauges, and how much of the root span's wall time its direct
/// children account for.
///
/// Lives in the **non-deterministic** half of campaign reports (durations
/// vary run to run); the deterministic half must be byte-identical whether
/// metrics are collected or not.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSection {
    /// Per-path aggregates, sorted by path.
    pub spans: Vec<SpanAggregate>,
    /// Final counter values, sorted by name.
    pub counters: Vec<CounterValue>,
    /// Latest gauge values, sorted by name.
    pub gauges: Vec<CounterValue>,
    /// Fraction of the root span's wall time covered by its direct children
    /// (sequential phases sum below 1.0; overlapping parallel children can
    /// push it above).
    pub attributed_wall_fraction: f64,
}

impl MetricsSection {
    /// Aggregates the subtree rooted at span `root` (paths are relative to
    /// it, starting with its own name), together with the snapshot's
    /// counters and gauges. Spans still open are excluded from totals.
    #[must_use]
    pub fn for_span(snapshot: &Snapshot, root: u64) -> MetricsSection {
        // Walk the subtree: relative path per span id.
        let mut paths: Vec<Option<String>> = vec![None; snapshot.spans.len()];
        let root_index = root as usize;
        paths[root_index] = Some(snapshot.spans[root_index].name.clone());
        // Ids are allocated parent-before-child, so one forward pass resolves
        // every descendant.
        for record in &snapshot.spans[root_index..] {
            if paths[record.id as usize].is_some() {
                continue;
            }
            if let Some(parent) = record.parent {
                if let Some(parent_path) = &paths[parent as usize] {
                    paths[record.id as usize] = Some(format!("{parent_path}/{}", record.name));
                }
            }
        }

        let mut by_path: std::collections::BTreeMap<String, (u64, u64)> =
            std::collections::BTreeMap::new();
        let mut children_us: u64 = 0;
        for record in &snapshot.spans {
            let Some(path) = &paths[record.id as usize] else {
                continue;
            };
            let Some(dur) = record.dur_us else { continue };
            let entry = by_path.entry(path.clone()).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += dur;
            if record.parent == Some(root) {
                children_us += dur;
            }
        }
        let root_us = snapshot.spans[root_index].dur_us.unwrap_or(0);
        MetricsSection {
            spans: by_path
                .into_iter()
                .map(|(path, (count, total_us))| SpanAggregate {
                    path,
                    count,
                    total_us,
                })
                .collect(),
            counters: snapshot
                .counters
                .iter()
                .map(|(name, value)| CounterValue {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            gauges: snapshot
                .gauges
                .iter()
                .map(|(name, value)| CounterValue {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            attributed_wall_fraction: if root_us == 0 {
                0.0
            } else {
                children_us as f64 / root_us as f64
            },
        }
    }

    /// The aggregate for an exact path, if present.
    #[must_use]
    pub fn span(&self, path: &str) -> Option<&SpanAggregate> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// The value of a counter (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn aggregates_merge_same_path_spans_and_compute_coverage() {
        let registry = Registry::new();
        let obs = registry.obs();
        let campaign = obs.span("campaign");
        {
            let predict = campaign.obs().span("predict");
            for _ in 0..3 {
                let _solve = predict.obs().span("solve");
            }
        }
        {
            let _validate = campaign.obs().span("validate");
        }
        campaign.obs().count("solver.conflicts", 7);
        campaign.obs().gauge("workers", 2);
        let root = campaign.id().expect("enabled");
        campaign.finish();

        let metrics = MetricsSection::for_span(&registry.snapshot(), root);
        assert_eq!(metrics.span("campaign").unwrap().count, 1);
        assert_eq!(metrics.span("campaign/predict").unwrap().count, 1);
        let solves = metrics.span("campaign/predict/solve").unwrap();
        assert_eq!(solves.count, 3);
        assert_eq!(metrics.counter("solver.conflicts"), 7);
        assert_eq!(metrics.gauges[0].name, "workers");
        // Sleep-free spans are microsecond-scale; coverage just needs to be a
        // sane fraction.
        assert!(metrics.attributed_wall_fraction >= 0.0);

        let json = serde_json::to_string(&metrics).expect("serialize");
        let back: MetricsSection = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, metrics);
    }

    #[test]
    fn aggregation_scopes_to_the_requested_subtree() {
        let registry = Registry::new();
        let obs = registry.obs();
        let outside = obs.span("outside");
        outside.finish();
        let root = obs.span("root");
        let _child = root.obs().span("child");
        drop(_child);
        let root_id = root.id().unwrap();
        root.finish();

        let metrics = MetricsSection::for_span(&registry.snapshot(), root_id);
        assert!(metrics.span("outside").is_none());
        assert!(metrics.span("root/child").is_some());
    }
}
