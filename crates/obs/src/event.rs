//! The JSONL event stream: schema types and the stream validator.
//!
//! A run with a sink attached emits one JSON object per line:
//!
//! ```json
//! {"type": "run_start", "schema": 1}
//! {"type": "span_start", "seq": 1, "id": 0, "parent": null, "name": "campaign", "at_us": 2, "labels": []}
//! {"type": "counter", "seq": 2, "name": "solver.conflicts", "delta": 42, "total": 42}
//! {"type": "gauge", "seq": 3, "name": "workers", "value": 4}
//! {"type": "span_end", "seq": 4, "id": 0, "name": "campaign", "path": "campaign", "dur_us": 1234, "labels": []}
//! ```
//!
//! `seq` is a registry-global monotonic sequence number (events are emitted
//! under the registry lock, so it is strictly increasing down the file);
//! `at_us`/`dur_us` are microseconds relative to the registry epoch. The
//! stream is append-only and crash-legible: every prefix of a valid stream is
//! itself valid except for spans still open at the cut.

use serde::{Deserialize, Serialize};

/// Version of the JSONL schema, carried by the `run_start` event.
///
/// v2 added the `heartbeat` event kind (solver progress samples with
/// per-family conflict attribution). v1 streams are still accepted by
/// [`validate_stream`] read-only; they may not contain v2-only event kinds.
pub const SCHEMA_VERSION: u64 = 2;

/// Oldest schema version [`validate_stream`] still accepts.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// One span label on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Label {
    /// Label key (e.g. `"benchmark"`).
    pub key: String,
    /// Label value (e.g. `"Smallbank"`).
    pub value: String,
}

/// One line of the JSONL event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ObsEvent {
    /// Stream header: first line of every stream.
    RunStart {
        /// The stream's schema version ([`SCHEMA_VERSION`]).
        schema: u64,
    },
    /// A span was opened.
    SpanStart {
        /// Monotonic sequence number.
        seq: u64,
        /// Span identifier (unique within the run).
        id: u64,
        /// Identifier of the enclosing span, if any.
        parent: Option<u64>,
        /// Taxonomy name.
        name: String,
        /// Offset from the registry epoch, in microseconds.
        at_us: u64,
        /// Labels attached at creation.
        labels: Vec<Label>,
    },
    /// A span finished.
    SpanEnd {
        /// Monotonic sequence number.
        seq: u64,
        /// Identifier matching the earlier `span_start`.
        id: u64,
        /// Taxonomy name (repeated for grep-ability).
        name: String,
        /// Full `/`-joined taxonomy path from the root.
        path: String,
        /// Wall-clock duration in microseconds.
        dur_us: u64,
        /// All labels, including ones attached after creation.
        labels: Vec<Label>,
    },
    /// A counter was incremented.
    Counter {
        /// Monotonic sequence number.
        seq: u64,
        /// Counter name (e.g. `"solver.conflicts"`).
        name: String,
        /// Amount added by this update.
        delta: u64,
        /// Counter value after the update.
        total: u64,
    },
    /// A gauge was set.
    Gauge {
        /// Monotonic sequence number.
        seq: u64,
        /// Gauge name (e.g. `"campaign.workers"`).
        name: String,
        /// The new value.
        value: u64,
    },
    /// A solver progress sample (schema v2): emitted every N conflicts while
    /// a solve call runs, carrying counter deltas and the per-family conflict
    /// attribution so a budget-exhausted `unknown` is legible after the fact.
    Heartbeat {
        /// Monotonic sequence number.
        seq: u64,
        /// Offset from the registry epoch, in microseconds.
        at_us: u64,
        /// Heartbeat ordinal *within the solve call*, counting from 1.
        hb_seq: u64,
        /// Conflicts recorded by the solver so far.
        conflicts: u64,
        /// Conflict rate since the previous heartbeat (0.0 on the first).
        conflicts_per_sec: f64,
        /// Restarts so far.
        restarts: u64,
        /// Current assignment trail depth.
        trail_depth: u64,
        /// Learnt clauses currently in the database.
        learnt_clauses: u64,
        /// Variables fixed at decision level 0.
        vars_assigned_at_root: u64,
        /// Total variables in the solver.
        total_vars: u64,
        /// Clause-family names, parallel to `conflicts_by_family`.
        families: Vec<String>,
        /// Per-family conflict partition (sums to `conflicts`).
        conflicts_by_family: Vec<u64>,
    },
}

impl ObsEvent {
    /// The event's sequence number (`None` for the header).
    #[must_use]
    pub fn seq(&self) -> Option<u64> {
        match self {
            ObsEvent::RunStart { .. } => None,
            ObsEvent::SpanStart { seq, .. }
            | ObsEvent::SpanEnd { seq, .. }
            | ObsEvent::Counter { seq, .. }
            | ObsEvent::Gauge { seq, .. }
            | ObsEvent::Heartbeat { seq, .. } => Some(*seq),
        }
    }
}

/// Every event kind the current schema knows, as it appears on the wire.
const KNOWN_KINDS: [&str; 6] = [
    "run_start",
    "span_start",
    "span_end",
    "counter",
    "gauge",
    "heartbeat",
];

/// A defect found while validating an event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for StreamError {}

/// What a valid stream contained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Total event lines (header included).
    pub events: usize,
    /// Spans that started.
    pub spans_started: usize,
    /// Spans that finished.
    pub spans_finished: usize,
    /// Counter updates.
    pub counter_updates: usize,
    /// Gauge updates.
    pub gauge_updates: usize,
    /// Solver heartbeats (schema v2 streams only).
    pub heartbeats: usize,
    /// The schema version the stream declared.
    pub schema: u64,
}

/// Validates a JSONL event stream against the schema and its structural
/// invariants: the first line is a `run_start` with a supported schema
/// version (v1 streams are accepted read-only), every line parses and names a
/// known event kind, sequence numbers strictly increase, span ids are unique,
/// parents and ends refer to spans that already started, no span ends twice,
/// and heartbeat conflict partitions sum to their conflict counts. v2-only
/// event kinds inside a stream that declared schema 1 are rejected. Returns a
/// content summary on success.
///
/// # Errors
///
/// The first [`StreamError`] encountered, with its line number.
pub fn validate_stream(text: &str) -> Result<StreamSummary, StreamError> {
    let mut summary = StreamSummary::default();
    let mut last_seq: Option<u64> = None;
    let mut started: Vec<u64> = Vec::new();
    let mut finished: Vec<u64> = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let number = index + 1;
        let error = |message: String| StreamError {
            line: number,
            message,
        };
        if line.trim().is_empty() {
            return Err(error("blank line in event stream".to_string()));
        }
        // Look at the raw `type` tag first so an unrecognized kind gets a
        // precise diagnostic instead of a generic enum-parse failure.
        let raw: serde::Content = serde_json::from_str(line)
            .map_err(|parse| error(format!("not a valid event: {parse}")))?;
        match raw.get("type").as_str() {
            None => return Err(error("event has no `type` field".to_string())),
            Some(kind) if !KNOWN_KINDS.contains(&kind) => {
                return Err(error(format!("unknown event kind `{kind}`")))
            }
            Some(_) => {}
        }
        let event: ObsEvent = serde_json::from_str(line)
            .map_err(|parse| error(format!("not a valid event: {parse}")))?;
        summary.events += 1;
        if index == 0 {
            match event {
                ObsEvent::RunStart { schema }
                    if (MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema) =>
                {
                    summary.schema = schema;
                    continue;
                }
                ObsEvent::RunStart { schema } => {
                    return Err(error(format!(
                        "unsupported schema version {schema} (expected {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
                    )))
                }
                _ => return Err(error("stream must begin with run_start".to_string())),
            }
        }
        if let Some(seq) = event.seq() {
            if let Some(last) = last_seq {
                if seq <= last {
                    return Err(error(format!(
                        "sequence number {seq} does not increase past {last}"
                    )));
                }
            }
            last_seq = Some(seq);
        } else {
            return Err(error("duplicate run_start".to_string()));
        }
        match event {
            ObsEvent::RunStart { .. } => unreachable!("handled above"),
            ObsEvent::SpanStart { id, parent, .. } => {
                if started.contains(&id) {
                    return Err(error(format!("span {id} started twice")));
                }
                if let Some(parent) = parent {
                    if !started.contains(&parent) {
                        return Err(error(format!("span {id} names unknown parent {parent}")));
                    }
                }
                started.push(id);
                summary.spans_started += 1;
            }
            ObsEvent::SpanEnd { id, path, name, .. } => {
                if !started.contains(&id) {
                    return Err(error(format!("span {id} ended without starting")));
                }
                if finished.contains(&id) {
                    return Err(error(format!("span {id} ended twice")));
                }
                if path != name && !path.ends_with(&format!("/{name}")) {
                    return Err(error(format!(
                        "span {id} path `{path}` does not end with its name `{name}`"
                    )));
                }
                finished.push(id);
                summary.spans_finished += 1;
            }
            ObsEvent::Counter { .. } => summary.counter_updates += 1,
            ObsEvent::Gauge { .. } => summary.gauge_updates += 1,
            ObsEvent::Heartbeat {
                conflicts,
                families,
                conflicts_by_family,
                ..
            } => {
                if summary.schema < 2 {
                    return Err(error(format!(
                        "heartbeat events require schema 2, but the stream declared schema {}",
                        summary.schema
                    )));
                }
                if families.len() != conflicts_by_family.len() {
                    return Err(error(format!(
                        "heartbeat names {} families but carries {} conflict counts",
                        families.len(),
                        conflicts_by_family.len()
                    )));
                }
                let sum: u64 = conflicts_by_family.iter().sum();
                if sum != conflicts {
                    return Err(error(format!(
                        "heartbeat family partition sums to {sum}, not its conflict count {conflicts}"
                    )));
                }
                summary.heartbeats += 1;
            }
        }
    }
    if summary.events == 0 {
        return Err(StreamError {
            line: 1,
            message: "empty event stream".to_string(),
        });
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            ObsEvent::RunStart {
                schema: SCHEMA_VERSION,
            },
            ObsEvent::SpanStart {
                seq: 1,
                id: 0,
                parent: None,
                name: "campaign".into(),
                at_us: 3,
                labels: vec![Label {
                    key: "workers".into(),
                    value: "2".into(),
                }],
            },
            ObsEvent::Counter {
                seq: 2,
                name: "solver.conflicts".into(),
                delta: 5,
                total: 5,
            },
            ObsEvent::Gauge {
                seq: 3,
                name: "campaign.experiments".into(),
                value: 12,
            },
            ObsEvent::Heartbeat {
                seq: 4,
                at_us: 120,
                hb_seq: 1,
                conflicts: 7,
                conflicts_per_sec: 350.5,
                restarts: 1,
                trail_depth: 9,
                learnt_clauses: 4,
                vars_assigned_at_root: 2,
                total_vars: 40,
                families: vec!["default".into(), "learned".into()],
                conflicts_by_family: vec![3, 4],
            },
            ObsEvent::SpanEnd {
                seq: 5,
                id: 0,
                name: "campaign".into(),
                path: "campaign".into(),
                dur_us: 99,
                labels: Vec::new(),
            },
        ];
        for event in events {
            let line = serde_json::to_string(&event).expect("serialize");
            let back: ObsEvent = serde_json::from_str(&line).expect("parse");
            assert_eq!(back, event, "{line}");
        }
    }

    fn stream(lines: &[&str]) -> String {
        lines.join("\n")
    }

    #[test]
    fn valid_stream_summarizes() {
        let text = stream(&[
            r#"{"type": "run_start", "schema": 1}"#,
            r#"{"type": "span_start", "seq": 1, "id": 0, "parent": null, "name": "a", "at_us": 0, "labels": []}"#,
            r#"{"type": "span_start", "seq": 2, "id": 1, "parent": 0, "name": "b", "at_us": 1, "labels": []}"#,
            r#"{"type": "counter", "seq": 3, "name": "c", "delta": 1, "total": 1}"#,
            r#"{"type": "span_end", "seq": 4, "id": 1, "name": "b", "path": "a/b", "dur_us": 5, "labels": []}"#,
            r#"{"type": "span_end", "seq": 5, "id": 0, "name": "a", "path": "a", "dur_us": 9, "labels": []}"#,
        ]);
        let summary = validate_stream(&text).expect("valid");
        assert_eq!(summary.spans_started, 2);
        assert_eq!(summary.spans_finished, 2);
        assert_eq!(summary.counter_updates, 1);
    }

    #[test]
    fn defects_are_rejected_with_line_numbers() {
        let missing_header =
            stream(&[r#"{"type": "counter", "seq": 1, "name": "c", "delta": 1, "total": 1}"#]);
        assert!(validate_stream(&missing_header)
            .unwrap_err()
            .message
            .contains("run_start"));

        let unknown_parent = stream(&[
            r#"{"type": "run_start", "schema": 1}"#,
            r#"{"type": "span_start", "seq": 1, "id": 0, "parent": 7, "name": "a", "at_us": 0, "labels": []}"#,
        ]);
        let error = validate_stream(&unknown_parent).unwrap_err();
        assert_eq!(error.line, 2);
        assert!(error.message.contains("unknown parent"));

        let stale_seq = stream(&[
            r#"{"type": "run_start", "schema": 1}"#,
            r#"{"type": "gauge", "seq": 2, "name": "g", "value": 1}"#,
            r#"{"type": "gauge", "seq": 2, "name": "g", "value": 2}"#,
        ]);
        assert!(validate_stream(&stale_seq)
            .unwrap_err()
            .message
            .contains("does not increase"));

        let garbage = stream(&[r#"{"type": "run_start", "schema": 1}"#, "not json"]);
        assert_eq!(validate_stream(&garbage).unwrap_err().line, 2);

        assert!(validate_stream("").unwrap_err().message.contains("empty"));
    }

    #[test]
    fn future_schema_versions_are_rejected() {
        let text = r#"{"type": "run_start", "schema": 999}"#;
        assert!(validate_stream(text)
            .unwrap_err()
            .message
            .contains("unsupported schema"));
    }

    #[test]
    fn v1_streams_are_accepted_read_only() {
        let text = stream(&[
            r#"{"type": "run_start", "schema": 1}"#,
            r#"{"type": "gauge", "seq": 1, "name": "workers", "value": 2}"#,
        ]);
        let summary = validate_stream(&text).expect("v1 stays readable");
        assert_eq!(summary.schema, 1);
        assert_eq!(summary.heartbeats, 0);
    }

    #[test]
    fn heartbeats_inside_a_v1_stream_are_rejected() {
        let hb = r#"{"type": "heartbeat", "seq": 1, "at_us": 5, "hb_seq": 1, "conflicts": 2, "conflicts_per_sec": 1.0, "restarts": 0, "trail_depth": 1, "learnt_clauses": 0, "vars_assigned_at_root": 0, "total_vars": 4, "families": ["default"], "conflicts_by_family": [2]}"#;
        let text = stream(&[r#"{"type": "run_start", "schema": 1}"#, hb]);
        let error = validate_stream(&text).unwrap_err();
        assert_eq!(error.line, 2);
        assert!(error.message.contains("require schema 2"));

        let ok = stream(&[r#"{"type": "run_start", "schema": 2}"#, hb]);
        assert_eq!(validate_stream(&ok).expect("v2 allows it").heartbeats, 1);
    }

    #[test]
    fn unknown_event_kinds_are_named_with_their_line() {
        let text = stream(&[
            r#"{"type": "run_start", "schema": 2}"#,
            r#"{"type": "gauge", "seq": 1, "name": "g", "value": 1}"#,
            r#"{"type": "flamegraph", "seq": 2}"#,
        ]);
        let error = validate_stream(&text).unwrap_err();
        assert_eq!(error.line, 3);
        assert!(error.message.contains("unknown event kind `flamegraph`"));

        let untagged = stream(&[r#"{"type": "run_start", "schema": 2}"#, r#"{"seq": 1}"#]);
        assert!(validate_stream(&untagged)
            .unwrap_err()
            .message
            .contains("no `type` field"));
    }

    #[test]
    fn heartbeat_partitions_must_sum_to_their_conflict_count() {
        let text = stream(&[
            r#"{"type": "run_start", "schema": 2}"#,
            r#"{"type": "heartbeat", "seq": 1, "at_us": 5, "hb_seq": 1, "conflicts": 9, "conflicts_per_sec": 1.0, "restarts": 0, "trail_depth": 1, "learnt_clauses": 0, "vars_assigned_at_root": 0, "total_vars": 4, "families": ["default"], "conflicts_by_family": [2]}"#,
        ]);
        let error = validate_stream(&text).unwrap_err();
        assert!(error.message.contains("sums to 2"));

        let ragged = stream(&[
            r#"{"type": "run_start", "schema": 2}"#,
            r#"{"type": "heartbeat", "seq": 1, "at_us": 5, "hb_seq": 1, "conflicts": 2, "conflicts_per_sec": 1.0, "restarts": 0, "trail_depth": 1, "learnt_clauses": 0, "vars_assigned_at_root": 0, "total_vars": 4, "families": ["default", "theory"], "conflicts_by_family": [2]}"#,
        ]);
        assert!(validate_stream(&ragged)
            .unwrap_err()
            .message
            .contains("2 families but carries 1"));
    }
}
