//! Property test: sharding is lossless.
//!
//! For histories whose sessions are key-disjoint (each session touches only
//! its own component's keys — the invariant the communication decomposition
//! guarantees), merging per-component predictions must land in the same
//! outcome class as whole-history analysis, and an embedded component
//! prediction must be a genuine whole-history anomaly.

use proptest::prelude::*;

use isopredict::Strategy as PredictionStrategy;
use isopredict::{IsolationLevel, PredictionOutcome, Predictor, PredictorConfig};
use isopredict_history::{serializability, History, HistoryBuilder, TxnId};
use isopredict_orchestrator::{merge_outcomes, ShardPlan, ShardPolicy, ShardUnit};

/// Builds one serializable-by-construction component on its own sessions and
/// keys: every read observes the latest committed write, as the recording
/// store would produce. `layout[s][t]` lists the key indices (within this
/// component's private key space) of session `s`'s transaction `t`.
fn build_component(builder: &mut HistoryBuilder, component: usize, layout: &[Vec<Vec<u8>>]) {
    let sessions: Vec<_> = (0..layout.len())
        .map(|s| builder.session(format!("c{component}-s{s}")))
        .collect();
    let mut latest: Vec<TxnId> = vec![TxnId::INITIAL; 3];
    let max_txns = layout.iter().map(Vec::len).max().unwrap_or(0);
    for txn_index in 0..max_txns {
        for (s, session_txns) in layout.iter().enumerate() {
            let Some(keys) = session_txns.get(txn_index) else {
                continue;
            };
            let txn = builder.begin(sessions[s]);
            for &key in keys {
                let key = (key % 3) as usize;
                let name = format!("c{component}-k{key}");
                builder.read(txn, &name, latest[key]);
                builder.write(txn, &name);
                latest[key] = txn;
            }
            builder.commit(txn);
        }
    }
}

/// A history of 2–3 key-disjoint components, each 2 sessions × ≤2 txns.
fn history_from(layouts: &[Vec<Vec<Vec<u8>>>]) -> History {
    let mut builder = HistoryBuilder::new();
    for (component, layout) in layouts.iter().enumerate() {
        build_component(&mut builder, component, layout);
    }
    builder.finish()
}

fn layouts_strategy() -> impl Strategy<Value = Vec<Vec<Vec<Vec<u8>>>>> {
    prop::collection::vec(
        prop::collection::vec(
            prop::collection::vec(prop::collection::vec(0u8..3, 1..3), 1..3),
            2..3,
        ),
        2..4,
    )
}

fn outcome_class(outcome: &PredictionOutcome) -> &'static str {
    match outcome {
        PredictionOutcome::Prediction(_) => "prediction",
        PredictionOutcome::NoPrediction { .. } => "no_prediction",
        PredictionOutcome::Unknown { .. } => "unknown",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Merged per-component analysis ≡ whole-history analysis (outcome
    /// class), for every isolation level of the seam.
    #[test]
    fn merged_component_predictions_match_whole_history_analysis(
        layouts in layouts_strategy()
    ) {
        let observed = history_from(&layouts);
        prop_assert!(serializability::check(&observed).is_serializable());

        let plan = ShardPlan::new(&observed, ShardPolicy::Always);
        prop_assert!(
            plan.components.len() >= 2,
            "construction must yield multiple components"
        );

        // Causal and read committed only: whole-history *no-prediction*
        // proofs under snapshot isolation routinely exhaust the solver budget
        // in debug builds (SI equivalence is covered by the campaign smoke
        // test and the core predictor tests on smaller histories).
        for isolation in [IsolationLevel::Causal, IsolationLevel::ReadCommitted] {
            let predictor = Predictor::new(PredictorConfig {
                strategy: PredictionStrategy::ApproxRelaxed,
                isolation,
                conflict_budget: Some(500_000),
                ..PredictorConfig::default()
            });

            let whole = predictor.predict(&observed);
            let per_unit: Vec<PredictionOutcome> = plan
                .units
                .iter()
                .map(|unit| match unit {
                    ShardUnit::Whole => predictor.predict(&observed),
                    ShardUnit::Component { txns, .. } => {
                        predictor.predict_restricted(&observed, txns)
                    }
                })
                .collect();
            let merged = merge_outcomes(&observed, &per_unit, plan.sharded);

            // Budget exhaustion is machine-load dependent; only compare
            // decisive verdicts.
            if whole.is_unknown() || merged.outcome.is_unknown() {
                continue;
            }
            prop_assert_eq!(
                outcome_class(&whole),
                outcome_class(&merged.outcome),
                "{}: whole-history and merged shard verdicts disagree",
                isolation
            );

            // An embedded prediction must hold up against the independent
            // whole-history checkers.
            if let PredictionOutcome::Prediction(prediction) = &merged.outcome {
                prop_assert!(
                    !serializability::check(&prediction.predicted).is_serializable(),
                    "embedded prediction must be unserializable"
                );
                prop_assert!(
                    isolation.is_conformant(&prediction.predicted),
                    "{}: embedded prediction must conform to its level",
                    isolation
                );
                prop_assert!(!prediction.changed_reads.is_empty());
            }
        }
    }
}
