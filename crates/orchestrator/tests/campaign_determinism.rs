//! The campaign runner's reproducibility contract: for a fixed campaign
//! specification, the deterministic half of the report is byte-identical no
//! matter how many workers execute it.

use isopredict::{IsolationLevel, Strategy};
use isopredict_orchestrator::{Campaign, CampaignOptions, ShardPolicy};
use isopredict_workloads::Benchmark;

fn campaign() -> Campaign {
    Campaign::new()
        .benchmarks([Benchmark::Smallbank, Benchmark::Voter])
        .seeds([0, 1])
        .strategies([Strategy::ApproxRelaxed])
        .isolations([IsolationLevel::Causal, IsolationLevel::ReadCommitted])
        .txns_per_session(2)
}

#[test]
fn campaign_reports_are_byte_identical_across_1_2_and_8_workers() {
    let campaign = campaign();
    let reports: Vec<String> = [1usize, 2, 8]
        .into_iter()
        .map(|workers| {
            campaign
                .run(&CampaignOptions {
                    workers,
                    conflict_budget: Some(2_000_000),
                    shard_policy: ShardPolicy::default(),
                    corpus: None,
                    ..CampaignOptions::default()
                })
                .deterministic_json()
        })
        .collect();
    assert_eq!(
        reports[0], reports[1],
        "1-worker and 2-worker campaigns disagree"
    );
    assert_eq!(
        reports[1], reports[2],
        "2-worker and 8-worker campaigns disagree"
    );
    // The report is not trivially empty.
    assert!(reports[0].contains("\"benchmark\": \"Smallbank\""));
    assert!(reports[0].contains("\"benchmark\": \"Voter\""));
}

#[test]
fn deterministic_half_is_byte_identical_with_and_without_preprocessing() {
    // Preprocessing is equisatisfiable, so it may change which model the
    // solver finds but never a verdict: the deterministic report half
    // (verdict-level fields only) must not move when it is toggled.
    let campaign = campaign();
    let halves: Vec<String> = [true, false]
        .into_iter()
        .map(|preprocess| {
            campaign
                .run(&CampaignOptions {
                    workers: 2,
                    preprocess,
                    ..CampaignOptions::default()
                })
                .deterministic_json()
        })
        .collect();
    assert_eq!(
        halves[0], halves[1],
        "preprocessing changed the deterministic report half"
    );
    assert!(halves[0].contains("\"outcome\""));
}

#[test]
fn shard_policies_agree_on_experiment_verdicts() {
    // Sharding must never change an experiment's outcome, only how the work
    // is decomposed: compare never-shard vs always-shard campaigns
    // field-by-field on the verdict columns.
    let campaign = campaign();
    let whole = campaign.run(&CampaignOptions {
        workers: 2,
        conflict_budget: Some(2_000_000),
        shard_policy: ShardPolicy::Never,
        corpus: None,
        ..CampaignOptions::default()
    });
    let sharded = campaign.run(&CampaignOptions {
        workers: 2,
        conflict_budget: Some(2_000_000),
        shard_policy: ShardPolicy::Always,
        corpus: None,
        ..CampaignOptions::default()
    });
    assert_eq!(whole.tasks.len(), sharded.tasks.len());
    for (a, b) in whole.tasks.iter().zip(&sharded.tasks) {
        assert_eq!(a.benchmark, b.benchmark);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.isolation, b.isolation);
        // Unknown verdicts depend on the solver budget split and may differ;
        // decisive verdicts must agree on whether a prediction exists.
        let decisive = |outcome: &str| outcome != "unknown";
        if decisive(&a.outcome) && decisive(&b.outcome) {
            let predicts = |outcome: &str| outcome == "validated" || outcome == "failed_validation";
            assert_eq!(
                predicts(&a.outcome),
                predicts(&b.outcome),
                "{}/{}/{}: whole={} sharded={}",
                a.benchmark,
                a.seed,
                a.isolation,
                a.outcome,
                b.outcome
            );
        }
    }
}
