//! The trace corpus's contract with the campaign runner, end to end:
//!
//! 1. record → persist → load → analyze produces a **byte-identical**
//!    deterministic report half versus the record-phase path, for every
//!    isolation level in `IsolationLevel::ALL` (property-tested over seeds
//!    and benchmarks);
//! 2. a warm corpus skips the record phase entirely (`trace_source: corpus`
//!    on every cell, zero misses);
//! 3. an external trace imported through `Corpus::import` round-trips into
//!    the analyzer and yields a prediction.

use proptest::prelude::*;

use isopredict::{IsolationLevel, PredictionOutcome, Predictor, PredictorConfig, Strategy};
use isopredict_corpus::{testutil::scratch_dir, Corpus, LoadedTrace};
use isopredict_history::TraceMeta;
use isopredict_orchestrator::{Campaign, CampaignOptions};
use isopredict_workloads::Benchmark;

fn campaign_for(benchmark: Benchmark, seed: u64) -> Campaign {
    // Two transactions per session keep debug-mode solves (snapshot
    // isolation's in particular) cheap; every isolation level of the seam is
    // exercised.
    Campaign::new()
        .benchmarks([benchmark])
        .seeds([seed])
        .strategies([Strategy::ApproxRelaxed])
        .isolations(IsolationLevel::ALL)
        .txns_per_session(2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// record → persist → load → analyze ≡ the record-phase path, byte for
    /// byte on the deterministic report half, across all isolation levels.
    #[test]
    fn record_persist_load_analyze_is_byte_identical(
        seed in 0u64..4,
        pick in 0usize..3,
    ) {
        let benchmark = [Benchmark::Smallbank, Benchmark::Voter, Benchmark::Overdraft][pick];
        let campaign = campaign_for(benchmark, seed);
        let dir = scratch_dir("prop");
        let with_corpus = CampaignOptions {
            workers: 2,
            corpus: Some(dir.path().to_path_buf()),
            ..CampaignOptions::default()
        };
        let record_phase = CampaignOptions {
            workers: 2,
            ..CampaignOptions::default()
        };

        let recorded = campaign.run(&record_phase); // no corpus at all
        let cold = campaign.run(&with_corpus);      // records + persists
        let warm = campaign.run(&with_corpus);      // loads from disk

        prop_assert_eq!(cold.timing.corpus_hits, 0);
        prop_assert_eq!(warm.timing.corpus_misses, 0);
        prop_assert!(warm.provenance.iter().all(|p| p.trace_source == "corpus"));
        prop_assert!(cold.provenance.iter().all(|p| p.trace_source == "recorded"));

        let baseline = recorded.deterministic_json();
        prop_assert_eq!(
            &baseline, &cold.deterministic_json(),
            "record-phase path and cold-corpus path disagree"
        );
        prop_assert_eq!(
            &baseline, &warm.deterministic_json(),
            "record-phase path and warm-corpus path disagree"
        );
    }
}

#[test]
fn warm_campaigns_skip_recording_and_report_the_saving() {
    let campaign = campaign_for(Benchmark::Smallbank, 0);
    let dir = scratch_dir("warm");
    let options = CampaignOptions {
        workers: 1,
        corpus: Some(dir.path().to_path_buf()),
        ..CampaignOptions::default()
    };
    let cold = campaign.run(&options);
    assert_eq!(cold.timing.corpus_misses, 1);
    assert_eq!(cold.timing.record_saved_us, 0);

    let warm = campaign.run(&options);
    assert_eq!(warm.timing.corpus_hits, 1);
    assert_eq!(warm.timing.corpus_misses, 0);
    assert_eq!(warm.provenance.len(), 1);
    assert_eq!(warm.provenance[0].trace_source, "corpus");
    // The saving reported warm is exactly the cost the cold run paid (as
    // persisted in the manifest at record time).
    assert_eq!(warm.timing.record_saved_us, cold.provenance[0].record_us);
    // Same trace, same address.
    assert_eq!(warm.provenance[0].trace_hash, cold.provenance[0].trace_hash);
    assert_eq!(cold.deterministic_json(), warm.deterministic_json());
}

#[test]
fn imported_external_traces_flow_into_the_analyzer() {
    // An external system hands us a serializable observed execution — two
    // sessions depositing into one account, the second reading the first —
    // in plain trace JSON with none of our recorder's metadata.
    let external = r#"{
        "sessions": [
            {"name": "client-a", "transactions": [
                {"id": 7, "committed": true, "ops": [
                    {"op": "read", "key": "acct", "from": 0},
                    {"op": "write", "key": "acct"}
                ]}
            ]},
            {"name": "client-b", "transactions": [
                {"id": 9, "committed": true, "ops": [
                    {"op": "read", "key": "acct", "from": 7},
                    {"op": "write", "key": "acct"}
                ]}
            ]}
        ]
    }"#;

    let dir = scratch_dir("ingest");
    let corpus = Corpus::open(dir.path()).expect("open corpus");
    let receipt = corpus
        .import(external, |trace| TraceMeta {
            benchmark: "external-deposits".to_string(),
            seed: 0,
            sessions: trace.sessions.len(),
            txns_per_session: 1,
            scale: 0,
            isolation: "external".to_string(),
            store_version: "external".to_string(),
            committed_plan_indices: None,
        })
        .expect("import");

    // Round trip: load by content address, rebuild the history, analyze.
    let trace = corpus.load(&receipt.hash).expect("load imported trace");
    let loaded = LoadedTrace::new(trace).expect("imported trace is analyzable");
    let predictor = Predictor::new(PredictorConfig {
        strategy: Strategy::ApproxRelaxed,
        isolation: IsolationLevel::Causal,
        ..PredictorConfig::default()
    });
    let outcome = predictor.predict(&loaded.history);
    // The classic racing-deposit anomaly: both transactions reading the
    // initial balance is causally consistent but unserializable, so the
    // predictor must find it in the imported history.
    let PredictionOutcome::Prediction(prediction) = outcome else {
        panic!("expected a prediction from the imported trace, got {outcome:?}");
    };
    assert!(!prediction.changed_reads.is_empty());
}
