//! The observability layer's contracts on real campaigns: the span tree is a
//! pure function of the campaign specification (not of worker scheduling),
//! the JSONL event stream is schema-valid and round-trips through serde, and
//! enabling telemetry never perturbs the deterministic report half.

use std::sync::OnceLock;

use proptest::prelude::*;

use isopredict::{IsolationLevel, Strategy};
use isopredict_obs::{span_forest, validate_stream, BufferSink, ObsEvent, Registry, SpanNode};
use isopredict_orchestrator::{Campaign, CampaignOptions, ShardPolicy};
use isopredict_workloads::Benchmark;

/// One-experiment campaign: small enough for proptest to re-run, big enough
/// to exercise record, connectivity, the encode/solve pipeline and
/// validation.
fn tiny_campaign() -> Campaign {
    Campaign::new()
        .benchmarks([Benchmark::Smallbank])
        .seeds([0])
        .strategies([Strategy::ApproxRelaxed])
        .isolations([IsolationLevel::ReadCommitted])
        .txns_per_session(2)
}

fn options(workers: usize) -> CampaignOptions {
    CampaignOptions {
        workers,
        conflict_budget: Some(2_000_000),
        shard_policy: ShardPolicy::default(),
        corpus: None,
        ..CampaignOptions::default()
    }
}

/// Runs the tiny campaign on `workers` threads and returns its normalized
/// span forest (names and labels, timings discarded).
fn forest_with(workers: usize) -> Vec<SpanNode> {
    let registry = Registry::new();
    let _ = tiny_campaign().run_observed(&options(workers), &registry.obs());
    span_forest(&registry.snapshot().spans)
}

proptest! {
    // Each case runs a full record→predict→validate campaign, so keep the
    // case count small; the workers dimension is the whole point.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The normalized span tree must not depend on how many workers drained
    /// the task queue — same names, same labels, same shape.
    #[test]
    fn span_forest_is_identical_across_worker_counts(workers in 1usize..=6) {
        static SEQUENTIAL: OnceLock<Vec<SpanNode>> = OnceLock::new();
        let expected = SEQUENTIAL.get_or_init(|| forest_with(1));
        let actual = forest_with(workers);
        prop_assert_eq!(
            &actual,
            expected,
            "{} workers produced a different span tree:\n{}",
            workers,
            actual.iter().map(SpanNode::render).collect::<String>()
        );
    }
}

#[test]
fn campaign_jsonl_stream_is_valid_and_round_trips_through_serde() {
    let sink = BufferSink::new();
    let registry = Registry::with_sink(Box::new(sink.clone()));
    let _ = tiny_campaign().run_observed(&options(2), &registry.obs());
    registry.flush();
    let stream = sink.contents();

    let summary = validate_stream(&stream).expect("campaign emits a valid stream");
    assert_eq!(summary.spans_started, summary.spans_finished);
    assert!(summary.counter_updates > 0, "solver counters must stream");
    assert!(summary.gauge_updates > 0, "workers gauge must stream");

    // Every line parses into a typed event and survives a serialize/parse
    // cycle unchanged — the schema has no lossy corners.
    let mut names = Vec::new();
    for line in stream.lines() {
        let event: ObsEvent = serde_json::from_str(line).expect("typed event");
        let reserialized = serde_json::to_string(&event).expect("serialize");
        let back: ObsEvent = serde_json::from_str(&reserialized).expect("reparse");
        assert_eq!(back, event, "{line}");
        if let ObsEvent::SpanEnd { name, .. } = event {
            names.push(name);
        }
    }
    for expected in ["campaign", "record", "connectivity", "predict", "solve"] {
        assert!(
            names.iter().any(|name| name == expected),
            "no `{expected}` span in the stream (saw {names:?})"
        );
    }
}

#[test]
fn deterministic_half_is_byte_identical_with_metrics_on_and_off() {
    let campaign = tiny_campaign();
    let off = campaign.run(&options(2));
    let registry = Registry::new();
    let on = campaign.run_observed(&options(2), &registry.obs());

    assert!(off.metrics.is_none());
    let metrics = on.metrics.as_ref().expect("telemetry aggregates");
    assert!(
        metrics.attributed_wall_fraction >= 0.95,
        "phase spans attribute only {:.1}% of campaign wall time",
        metrics.attributed_wall_fraction * 100.0
    );
    assert_eq!(off.deterministic_json(), on.deterministic_json());
}
