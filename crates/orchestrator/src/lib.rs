//! Parallel prediction orchestrator: key-disjoint history sharding and
//! multi-threaded analysis campaigns.
//!
//! The core predictor ([`isopredict::Predictor`]) analyzes one observed
//! history with one solver invocation. This crate turns that single-shot
//! analysis into a batch engine with three layers:
//!
//! 1. **History sharding** ([`shard`]): an observed history decomposes into
//!    *communication components* — transactions that transitively share no
//!    key and no session can be analyzed independently, because every
//!    relation the analysis constrains (`so`, `wr`, arbitration orders,
//!    anti-dependencies, and hence every unserializability witness cycle)
//!    stays inside a component. Each component is a **shard**; per-shard
//!    verdicts merge losslessly back into a whole-history verdict
//!    ([`merge`]). When one component dominates the history the sharder
//!    falls back to whole-history analysis, since splitting buys nothing.
//! 2. **A campaign runner** ([`campaign`], [`worker`]): a declarative
//!    [`Campaign`] names a benchmarks × seeds × strategies × isolation
//!    levels matrix; the runner expands it — after recording, per shard —
//!    into tasks executed by a self-scheduling `std::thread::scope` worker
//!    pool. Idle workers steal the next task from a shared queue, so uneven
//!    solver times balance automatically, and results are written back by
//!    task index so reports are **byte-identical regardless of worker
//!    count**.
//! 3. **Aggregated reporting** ([`report`]): a serde-serializable
//!    [`CampaignReport`] rolls up per-task outcomes, encoding statistics,
//!    per-phase timing and the parallel speedup estimate.
//!
//! The end-to-end record → predict → validate pipeline for one experiment
//! lives in [`harness`] (re-exported by `isopredict-bench` for the paper's
//! table binaries).
//!
//! # Example
//!
//! ```
//! use isopredict_orchestrator::{Campaign, CampaignOptions};
//! use isopredict::{IsolationLevel, Strategy};
//! use isopredict_workloads::Benchmark;
//!
//! let report = Campaign::new()
//!     .benchmarks([Benchmark::Smallbank])
//!     .seeds(0..2)
//!     .strategies([Strategy::ApproxRelaxed])
//!     .isolations([IsolationLevel::ReadCommitted])
//!     .txns_per_session(2)
//!     .run(&CampaignOptions { workers: 2, ..CampaignOptions::default() });
//! assert_eq!(report.tasks.len(), 2);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod campaign;
pub mod harness;
pub mod merge;
pub mod report;
pub mod shard;
pub mod worker;

pub use campaign::{Campaign, CampaignOptions};
pub use harness::{
    record_observed, run_experiment, run_experiment_in, run_experiment_observed, ExperimentOutcome,
    ExperimentResult,
};
pub use merge::{embed, merge_outcomes, MergedOutcome};
pub use report::{
    CampaignReport, CampaignSummary, CampaignTiming, HeartbeatRecord, PostmortemRecord,
    ProvenanceRecord, TaskRecord,
};
pub use shard::{ShardPlan, ShardPolicy, ShardUnit};
pub use worker::WorkerPool;
