//! Lossless merging of per-shard verdicts into whole-history verdicts.
//!
//! Soundness rests on the communication-closure property of shards (see
//! [`crate::shard`]): no constraint of the analysis links two shards, so
//!
//! * a prediction found in any shard *embeds* into the full observed history
//!   — the other shards keep their observed (serializable) behavior, the
//!   embedded execution stays feasible and isolation-conforming, and the
//!   shard's witness cycle still witnesses unserializability;
//! * if every shard has no prediction, the whole history has none;
//! * a shard that exhausted its solver budget makes the merged verdict
//!   `Unknown` (unless another shard already found a prediction).

use std::time::Duration;

use isopredict::{NoPredictionReason, Prediction, PredictionOutcome};
use isopredict_history::History;
use isopredict_smt::{EncodingStats, SolverPostmortem};

/// A merged whole-history verdict with shard-aggregated measurements.
#[derive(Debug)]
pub struct MergedOutcome {
    /// The whole-history verdict (predictions are embedded; see [`embed`]).
    pub outcome: PredictionOutcome,
    /// Encoding statistics summed over every shard that produced a
    /// prediction (mirrors the harness, which has no stats for
    /// unsat/unknown solver calls).
    pub stats: EncodingStats,
    /// Constraint generation time summed over predicting shards.
    pub constraint_gen_time: Duration,
    /// Solving time summed over predicting shards.
    pub solving_time: Duration,
    /// Index of the shard whose prediction was embedded, if any.
    pub predicting_unit: Option<usize>,
}

fn add_stats(total: &mut EncodingStats, other: &EncodingStats) {
    total.variables += other.variables;
    total.clauses += other.clauses;
    total.literals += other.literals;
    total.terms += other.terms;
    total.conflicts += other.conflicts;
    total.decisions += other.decisions;
}

/// Lifts a component-restricted prediction back into the full observed
/// history: transactions of the predicted component keep their predicted
/// events (rewired reads, boundary cuts), every other transaction keeps its
/// observed events, and sessions outside the component get an unbounded
/// prediction boundary.
///
/// Transaction/session identifiers and event positions are preserved by
/// [`History::restrict`], so the embedding is a per-event lookup.
#[must_use]
pub fn embed(observed: &History, prediction: &Prediction) -> Prediction {
    let component = &prediction.predicted;

    let predicted = observed.map_events(|txn, event| {
        let in_component = component.txn(txn.id).session.is_some();
        if in_component {
            // Take the predicted form of this event; absent means the
            // prediction boundary cut it.
            component
                .txn(txn.id)
                .events
                .iter()
                .find(|predicted_event| predicted_event.pos == event.pos)
                .copied()
        } else {
            Some(*event)
        }
    });

    let boundaries = observed
        .sessions()
        .map(|session| {
            let session_in_component = component
                .session_transactions(session)
                .iter()
                .any(|&t| component.txn(t).session.is_some());
            let limit = if session_in_component {
                prediction.boundaries.get(&session).copied().flatten()
            } else {
                None // outside the component: the whole session is included
            };
            (session, limit)
        })
        .collect();

    Prediction {
        predicted,
        boundaries,
        changed_reads: prediction.changed_reads.clone(),
        isolation: prediction.isolation,
        strategy: prediction.strategy,
        stats: prediction.stats,
        constraint_gen_time: prediction.constraint_gen_time,
        solving_time: prediction.solving_time,
        pco_cycle: prediction.pco_cycle.clone(),
    }
}

/// Merges per-unit outcomes (ordered as the shard plan's units) into a
/// whole-history verdict. `sharded` tells whether the units are component
/// restrictions (predictions need embedding) or a single whole-history unit
/// (passed through). Accepts owned outcomes or references — only the winning
/// prediction is ever copied.
#[must_use]
pub fn merge_outcomes<O: std::borrow::Borrow<PredictionOutcome>>(
    observed: &History,
    outcomes: &[O],
    sharded: bool,
) -> MergedOutcome {
    let mut stats = EncodingStats::default();
    let mut constraint_gen_time = Duration::ZERO;
    let mut solving_time = Duration::ZERO;
    let mut winner: Option<(usize, &Prediction)> = None;
    let mut saw_unknown = false;
    let mut saw_exhausted = false;
    let mut unknown_postmortem: Option<Box<SolverPostmortem>> = None;

    for (index, outcome) in outcomes.iter().enumerate() {
        match outcome.borrow() {
            PredictionOutcome::Prediction(prediction) => {
                add_stats(&mut stats, &prediction.stats);
                constraint_gen_time += prediction.constraint_gen_time;
                solving_time += prediction.solving_time;
                if winner.is_none() {
                    winner = Some((index, prediction));
                }
            }
            PredictionOutcome::Unknown { postmortem } => {
                saw_unknown = true;
                // The merged verdict keeps the first exhausted unit's
                // post-mortem: good enough to explain *a* budget failure;
                // per-unit detail lives in the campaign report.
                if unknown_postmortem.is_none() {
                    unknown_postmortem.clone_from(postmortem);
                }
            }
            PredictionOutcome::NoPrediction {
                reason: NoPredictionReason::ExhaustedCandidates,
            } => saw_exhausted = true,
            PredictionOutcome::NoPrediction { .. } => {}
        }
    }

    let (outcome, predicting_unit) = match winner {
        Some((index, prediction)) => {
            let lifted = if sharded {
                Box::new(embed(observed, prediction))
            } else {
                Box::new(prediction.clone())
            };
            (PredictionOutcome::Prediction(lifted), Some(index))
        }
        None if saw_unknown => (
            PredictionOutcome::Unknown {
                postmortem: unknown_postmortem,
            },
            None,
        ),
        None => (
            PredictionOutcome::NoPrediction {
                reason: if saw_exhausted {
                    NoPredictionReason::ExhaustedCandidates
                } else {
                    NoPredictionReason::Unsatisfiable
                },
            },
            None,
        ),
    };

    MergedOutcome {
        outcome,
        stats,
        constraint_gen_time,
        solving_time,
        predicting_unit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{ShardPlan, ShardPolicy, ShardUnit};
    use isopredict::{IsolationLevel, Predictor, PredictorConfig, Strategy};
    use isopredict_history::{serializability, HistoryBuilder, TxnId};

    /// Two key-disjoint racing-deposit pairs: both components admit causal
    /// predictions, the whole history is observed-serializable.
    fn double_racing_deposits() -> History {
        let mut b = HistoryBuilder::new();
        for key in ["acct-a", "acct-b"] {
            let s1 = b.session(format!("{key}-1"));
            let s2 = b.session(format!("{key}-2"));
            let t1 = b.begin(s1);
            b.read(t1, key, TxnId::INITIAL);
            b.write(t1, key);
            b.commit(t1);
            let t2 = b.begin(s2);
            b.read(t2, key, t1);
            b.write(t2, key);
            b.commit(t2);
        }
        b.finish()
    }

    fn predictor() -> Predictor {
        Predictor::new(PredictorConfig {
            strategy: Strategy::ApproxRelaxed,
            isolation: IsolationLevel::Causal,
            ..PredictorConfig::default()
        })
    }

    #[test]
    fn embedded_shard_prediction_is_a_valid_whole_history_prediction() {
        let observed = double_racing_deposits();
        assert!(serializability::check(&observed).is_serializable());
        let plan = ShardPlan::new(&observed, ShardPolicy::Always);
        assert_eq!(plan.units.len(), 2);

        let predictor = predictor();
        let outcomes: Vec<PredictionOutcome> = plan
            .units
            .iter()
            .map(|unit| match unit {
                ShardUnit::Component { txns, .. } => predictor.predict_restricted(&observed, txns),
                ShardUnit::Whole => predictor.predict(&observed),
            })
            .collect();

        let merged = merge_outcomes(&observed, &outcomes, plan.sharded);
        let prediction = merged.outcome.prediction().expect("a shard predicts");
        assert_eq!(merged.predicting_unit, Some(0));
        // The embedded prediction is a genuine whole-history anomaly…
        assert!(!serializability::check(&prediction.predicted).is_serializable());
        assert!(isopredict_history::causal::is_causal(&prediction.predicted));
        // …and the untouched component kept all of its observed events.
        assert_eq!(prediction.predicted.num_reads(), observed.num_reads());
        assert!(!prediction.changed_reads.is_empty());
        assert!(merged.stats.literals > 0);
    }

    #[test]
    fn merged_verdict_classes_follow_the_lattice() {
        let observed = double_racing_deposits();
        let unsat = || PredictionOutcome::NoPrediction {
            reason: NoPredictionReason::Unsatisfiable,
        };

        let merged = merge_outcomes(&observed, &[unsat(), unsat()], true);
        assert!(merged.outcome.is_no_prediction());
        assert!(merged.predicting_unit.is_none());

        let merged = merge_outcomes(
            &observed,
            &[unsat(), PredictionOutcome::Unknown { postmortem: None }],
            true,
        );
        assert!(merged.outcome.is_unknown());

        let merged = merge_outcomes(
            &observed,
            &[
                PredictionOutcome::Unknown { postmortem: None },
                predictor().predict_restricted(&observed, &[TxnId(3), TxnId(4)]),
            ],
            true,
        );
        assert!(
            merged.outcome.is_prediction(),
            "a prediction beats an unknown shard"
        );
        assert_eq!(merged.predicting_unit, Some(1));
    }

    #[test]
    fn whole_unit_outcomes_pass_through_unembedded() {
        let observed = double_racing_deposits();
        let whole = predictor().predict(&observed);
        assert!(whole.is_prediction());
        let reads_before = whole.prediction().unwrap().predicted.num_reads();
        let merged = merge_outcomes(&observed, &[whole], false);
        let prediction = merged.outcome.prediction().unwrap();
        assert_eq!(prediction.predicted.num_reads(), reads_before);
    }
}
