//! History sharding: splitting an observed history into independently
//! analyzable shards.
//!
//! A shard is a set of committed transactions closed under *communication*
//! (shared keys and shared sessions; see
//! [`isopredict_history::connectivity`]). Because `so`, `wr`, the
//! arbitration orders and anti-dependencies never cross communication
//! components, neither can any cycle the analysis searches for — a
//! prediction exists for the whole history iff it exists for some shard, and
//! per-shard constraint systems are strictly smaller (SAT solving is
//! superlinear, so this is where the decomposition pays beyond parallelism).
//!
//! Sharding is not always worth it: when one component dominates the
//! history, the dominant shard's solver call costs nearly as much as the
//! whole-history call while the decomposition still pays its bookkeeping.
//! [`ShardPolicy::Auto`] therefore falls back to whole-history analysis
//! above a dominance threshold.

use isopredict_history::{connectivity::KeyComponents, History, TxnId};

/// When to shard a history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardPolicy {
    /// Always analyze whole histories (the paper's original pipeline).
    Never,
    /// Shard unless a single component holds more than `dominance` of the
    /// committed transactions (or there is only one component).
    Auto {
        /// Dominant-fraction threshold in `(0, 1]` above which sharding is
        /// skipped.
        dominance: f64,
    },
    /// Shard whenever there is more than one component.
    Always,
}

impl Default for ShardPolicy {
    fn default() -> Self {
        ShardPolicy::Auto { dominance: 0.75 }
    }
}

/// One unit of analysis work produced by sharding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardUnit {
    /// Analyze the history as a whole.
    Whole,
    /// Analyze the restriction to one communication component.
    Component {
        /// Index into [`ShardPlan::components`].
        index: usize,
        /// The component's transactions (sorted).
        txns: Vec<TxnId>,
    },
}

impl ShardUnit {
    /// A short label for reports ("whole" or "shard-N").
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            ShardUnit::Whole => "whole".to_string(),
            ShardUnit::Component { index, .. } => format!("shard-{index}"),
        }
    }
}

/// The sharding decision for one observed history.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// The communication decomposition of the history.
    pub components: KeyComponents,
    /// The units the campaign will analyze (either a single
    /// [`ShardUnit::Whole`] or one [`ShardUnit::Component`] per component).
    pub units: Vec<ShardUnit>,
    /// Whether the plan decided to shard.
    pub sharded: bool,
}

impl ShardPlan {
    /// Plans the analysis of `observed` under `policy`.
    #[must_use]
    pub fn new(observed: &History, policy: ShardPolicy) -> ShardPlan {
        let components = KeyComponents::of(observed);
        let shard = match policy {
            ShardPolicy::Never => false,
            ShardPolicy::Always => components.len() > 1,
            ShardPolicy::Auto { dominance } => {
                components.len() > 1 && components.dominant_fraction() <= dominance
            }
        };
        let units = if shard {
            components
                .components()
                .iter()
                .enumerate()
                .map(|(index, txns)| ShardUnit::Component {
                    index,
                    txns: txns.clone(),
                })
                .collect()
        } else {
            vec![ShardUnit::Whole]
        };
        ShardPlan {
            components,
            units,
            sharded: shard,
        }
    }

    /// The history each unit analyzes: the original for [`ShardUnit::Whole`],
    /// a lossless component restriction otherwise.
    #[must_use]
    pub fn history_for(&self, observed: &History, unit: &ShardUnit) -> History {
        match unit {
            ShardUnit::Whole => observed.clone(),
            ShardUnit::Component { txns, .. } => observed.restrict(txns, false),
        }
    }

    /// Splits one experiment's solver conflict budget across this plan's
    /// units, proportionally to component size (largest-remainder rounding,
    /// so the shares sum to exactly the whole-history budget): a sharded run
    /// must never be granted more total budget than the whole-history run it
    /// replaces. An unlimited budget (`None`) stays unlimited for every unit,
    /// and unsharded plans pass the full budget through to their single unit.
    #[must_use]
    pub fn unit_budgets(&self, budget: Option<u64>) -> Vec<Option<u64>> {
        let Some(total) = budget else {
            return vec![None; self.units.len()];
        };
        if !self.sharded {
            return vec![Some(total); self.units.len()];
        }
        let sizes: Vec<usize> = self
            .units
            .iter()
            .map(|unit| match unit {
                ShardUnit::Whole => 0,
                ShardUnit::Component { txns, .. } => txns.len(),
            })
            .collect();
        apportion(total, &sizes).into_iter().map(Some).collect()
    }
}

/// Largest-remainder apportionment of `total` across `sizes`: allocations are
/// proportional, sum to exactly `total` (when some size is nonzero), and are
/// deterministic (remainders tie-break by index).
fn apportion(total: u64, sizes: &[usize]) -> Vec<u64> {
    let sum: u128 = sizes.iter().map(|&s| s as u128).sum();
    if sum == 0 {
        return vec![0; sizes.len()];
    }
    let mut allocations: Vec<u64> = sizes
        .iter()
        .map(|&s| ((u128::from(total) * s as u128) / sum) as u64)
        .collect();
    let mut remainder = total - allocations.iter().sum::<u64>();
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by_key(|&i| {
        (
            std::cmp::Reverse((u128::from(total) * sizes[i] as u128) % sum),
            i,
        )
    });
    for &i in &order {
        if remainder == 0 {
            break;
        }
        allocations[i] += 1;
        remainder -= 1;
    }
    allocations
}

#[cfg(test)]
mod tests {
    use super::*;
    use isopredict_history::HistoryBuilder;

    /// `pairs` independent two-session components, one key each.
    fn disjoint_history(pairs: usize) -> History {
        let mut b = HistoryBuilder::new();
        for p in 0..pairs {
            let key = format!("k{p}");
            let s1 = b.session(format!("s{p}a"));
            let s2 = b.session(format!("s{p}b"));
            let t1 = b.begin(s1);
            b.read(t1, &key, TxnId::INITIAL);
            b.write(t1, &key);
            b.commit(t1);
            let t2 = b.begin(s2);
            b.read(t2, &key, t1);
            b.write(t2, &key);
            b.commit(t2);
        }
        b.finish()
    }

    #[test]
    fn never_policy_yields_one_whole_unit() {
        let history = disjoint_history(3);
        let plan = ShardPlan::new(&history, ShardPolicy::Never);
        assert!(!plan.sharded);
        assert_eq!(plan.units, vec![ShardUnit::Whole]);
        assert_eq!(plan.components.len(), 3);
        assert_eq!(plan.history_for(&history, &plan.units[0]), history);
    }

    #[test]
    fn always_policy_yields_one_unit_per_component() {
        let history = disjoint_history(3);
        let plan = ShardPlan::new(&history, ShardPolicy::Always);
        assert!(plan.sharded);
        assert_eq!(plan.units.len(), 3);
        for (i, unit) in plan.units.iter().enumerate() {
            assert_eq!(unit.label(), format!("shard-{i}"));
            let restricted = plan.history_for(&history, unit);
            // The restriction keeps exactly the component's two transactions.
            assert_eq!(
                restricted
                    .committed_transactions()
                    .filter(|t| !t.events.is_empty())
                    .count(),
                2
            );
        }
    }

    #[test]
    fn auto_policy_respects_the_dominance_threshold() {
        // 3 components of 2 transactions each: dominant fraction = 1/3.
        let balanced = disjoint_history(3);
        let plan = ShardPlan::new(&balanced, ShardPolicy::Auto { dominance: 0.5 });
        assert!(plan.sharded);

        // One big component (4 txns) + one small (2): dominant = 2/3 > 0.5.
        let mut b = HistoryBuilder::new();
        let s1 = b.session("big");
        for _ in 0..4 {
            let t = b.begin(s1);
            b.write(t, "big-key");
            b.commit(t);
        }
        let s2 = b.session("small-a");
        let s3 = b.session("small-b");
        let t = b.begin(s2);
        b.write(t, "small-key");
        b.commit(t);
        let u = b.begin(s3);
        b.read(u, "small-key", t);
        b.commit(u);
        let skewed = b.finish();
        let plan = ShardPlan::new(&skewed, ShardPolicy::Auto { dominance: 0.5 });
        assert!(!plan.sharded, "dominant component must disable sharding");
        assert_eq!(plan.units, vec![ShardUnit::Whole]);
    }

    #[test]
    fn sharded_budgets_never_exceed_the_whole_history_budget() {
        // Components of sizes 2/2/2 plus skewed mixes: the per-unit shares
        // must be proportional and sum to exactly the experiment budget.
        for pairs in 2..6 {
            let history = disjoint_history(pairs);
            let plan = ShardPlan::new(&history, ShardPolicy::Always);
            assert!(plan.sharded);
            for budget in [1u64, 7, 100, 2_000_000] {
                let shares = plan.unit_budgets(Some(budget));
                let total: u64 = shares.iter().map(|b| b.expect("budgeted")).sum();
                assert!(
                    total <= budget,
                    "sharded total {total} exceeds whole-history budget {budget}"
                );
                assert_eq!(total, budget, "shares must not waste budget either");
            }
        }
    }

    #[test]
    fn budget_shares_are_proportional_to_component_size() {
        // One 4-txn component and one 2-txn component.
        let mut b = HistoryBuilder::new();
        let s1 = b.session("big-a");
        let s2 = b.session("big-b");
        for session in [s1, s2] {
            for _ in 0..2 {
                let t = b.begin(session);
                b.read(t, "big", TxnId::INITIAL);
                b.write(t, "big");
                b.commit(t);
            }
        }
        let s3 = b.session("small-a");
        let s4 = b.session("small-b");
        let t = b.begin(s3);
        b.write(t, "small");
        b.commit(t);
        let u = b.begin(s4);
        b.read(u, "small", t);
        b.commit(u);
        let history = b.finish();
        let plan = ShardPlan::new(&history, ShardPolicy::Always);
        assert!(plan.sharded);
        let shares = plan.unit_budgets(Some(600_000));
        assert_eq!(shares, vec![Some(400_000), Some(200_000)]);
    }

    #[test]
    fn unsharded_and_unlimited_budgets_pass_through() {
        let history = disjoint_history(3);
        let plan = ShardPlan::new(&history, ShardPolicy::Never);
        assert_eq!(plan.unit_budgets(Some(5)), vec![Some(5)]);
        let sharded = ShardPlan::new(&history, ShardPolicy::Always);
        assert_eq!(sharded.unit_budgets(None), vec![None; 3]);
    }

    #[test]
    fn single_component_histories_never_shard() {
        let history = disjoint_history(1);
        for policy in [
            ShardPolicy::Always,
            ShardPolicy::Auto { dominance: 0.1 },
            ShardPolicy::Never,
        ] {
            let plan = ShardPlan::new(&history, policy);
            assert!(!plan.sharded);
            assert_eq!(plan.units.len(), 1);
        }
    }
}
