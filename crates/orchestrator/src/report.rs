//! Campaign reports: deterministic per-task records plus timing aggregates.
//!
//! Reports split into two halves on purpose:
//!
//! * [`TaskRecord`]s and the [`CampaignSummary`] contain only values that are
//!   a pure function of the campaign specification (workloads, solver and
//!   sharding are all deterministic), so [`CampaignReport::deterministic_json`]
//!   is **byte-identical across runs and worker counts** — the campaign
//!   runner's reproducibility contract, and what the determinism tests pin.
//! * [`CampaignTiming`] carries the wall-clock measurements (which of course
//!   vary run to run) and the parallel speedup estimate; the per-cell
//!   [`ProvenanceRecord`]s live beside it because the trace source
//!   (`recorded` vs `corpus`) depends on what happens to be on disk, not on
//!   the campaign specification.

use isopredict_obs::MetricsSection;
use isopredict_smt::SolverPostmortem;
use serde::{Deserialize, Serialize};

/// How one experiment (or shard task) ended, as a report string.
pub(crate) fn outcome_name(outcome: &crate::harness::ExperimentOutcome) -> &'static str {
    use crate::harness::ExperimentOutcome;
    match outcome {
        ExperimentOutcome::Validated => "validated",
        ExperimentOutcome::FailedValidation => "failed_validation",
        ExperimentOutcome::NoPrediction => "no_prediction",
        ExperimentOutcome::Unknown => "unknown",
    }
}

/// The deterministic record of one experiment of the campaign matrix.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TaskRecord {
    /// Benchmark name (paper spelling, e.g. "Smallbank").
    pub benchmark: String,
    /// Seed of the observed execution.
    pub seed: u64,
    /// Prediction strategy name (paper spelling, e.g. "Approx-Relaxed").
    pub strategy: String,
    /// Target isolation level ("causal" / "read committed").
    pub isolation: String,
    /// Number of communication components in the observed history.
    pub components: usize,
    /// Fraction of committed transactions in the largest component.
    pub dominant_fraction: f64,
    /// Whether the shard policy decided to analyze per-component.
    pub sharded: bool,
    /// Number of analysis units (1 if unsharded, else the component count).
    pub units: usize,
    /// Index of the shard whose prediction was embedded, if any.
    pub predicting_unit: Option<usize>,
    /// Human-readable label of that unit ("whole" / "shard-N"), if any.
    pub predicting_unit_label: Option<String>,
    /// How the experiment ended ("validated", "failed_validation",
    /// "no_prediction", "unknown").
    pub outcome: String,
    /// Whether the validating execution diverged from the prediction.
    ///
    /// Witness-level: describes the particular model the solver produced,
    /// not the verdict, so it is excluded from the deterministic half (see
    /// [`CampaignReport::deterministic_json`]).
    pub diverged: bool,
    /// Number of reads whose writer the prediction changed.
    ///
    /// Witness-level, like `diverged`: solver configuration (e.g.
    /// preprocessing on/off) may produce a different — equally valid —
    /// model, so this is excluded from the deterministic half.
    pub changed_reads: usize,
    /// Literal count of the generated constraints (summed over predicting
    /// shards; 0 when no shard predicted, mirroring the harness).
    pub literals: u64,
    /// Committed transactions in the observed execution.
    pub observed_txns: usize,
    /// Read events in the observed execution.
    pub observed_reads: usize,
    /// Write events in the observed execution.
    pub observed_writes: usize,
}

/// Where one observed (benchmark, seed) cell's trace came from.
///
/// Not part of the deterministic report half: a cold corpus records
/// (`trace_source: "recorded"`), a warm one loads (`trace_source: "corpus"`),
/// and the verdicts must be byte-identical either way.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ProvenanceRecord {
    /// Benchmark name.
    pub benchmark: String,
    /// Seed of the observed execution.
    pub seed: u64,
    /// `"recorded"` when the record phase ran for this cell, `"corpus"` when
    /// the trace was loaded from disk and the record phase was skipped.
    pub trace_source: String,
    /// Content address of the observed trace.
    pub trace_hash: String,
    /// Wall-clock microseconds of the recording: the cost paid (when
    /// `recorded`) or the cost *saved* by the corpus hit (when `corpus`,
    /// measured at original record time).
    pub record_us: u64,
}

/// Flight-recorder post-mortem of one budget-exhausted analysis unit: the
/// solver's final per-family conflict attribution plus its retained
/// heartbeat ring, stamped with the unit's matrix coordinates.
///
/// Lives in the report's **non-deterministic half** (beside `timing` and
/// `provenance`): everything in it is diagnostic — it explains where the
/// budget went, never what the verdict was. `sat_explain` renders these.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PostmortemRecord {
    /// Benchmark name.
    pub benchmark: String,
    /// Seed of the observed execution.
    pub seed: u64,
    /// Prediction strategy name.
    pub strategy: String,
    /// Target isolation level.
    pub isolation: String,
    /// Analysis-unit label ("whole" / "shard-N").
    pub unit: String,
    /// The conflict budget this unit exhausted, if one was set.
    pub budget: Option<u64>,
    /// Conflicts spent inside the final solve call.
    pub conflicts_in_call: u64,
    /// Cumulative conflicts over the unit's whole solver lifetime.
    pub conflicts: u64,
    /// Cumulative restarts.
    pub restarts: u64,
    /// Cumulative unit propagations.
    pub propagations: u64,
    /// Interned clause-family names; all per-family vectors are parallel.
    pub families: Vec<String>,
    /// Strict partition: conflicts charged to each family's falsified
    /// clause; sums exactly to `conflicts`.
    pub conflicts_by_family: Vec<u64>,
    /// Conflicts whose resolution involved each family (not a partition —
    /// one conflict can involve several families).
    pub conflicts_involving: Vec<u64>,
    /// Unit propagations forced by each family's clauses.
    pub propagations_by_family: Vec<u64>,
    /// Learnt clauses whose derivation involved each family.
    pub learned_ancestry: Vec<u64>,
    /// Problem clauses emitted under each family tag.
    pub clauses_by_family: Vec<u64>,
    /// The axiom family most involved in conflicts, if any conflicts
    /// happened.
    pub dominant_family: Option<String>,
    /// The most recent heartbeats of the final solve call, oldest first.
    pub heartbeats: Vec<HeartbeatRecord>,
}

/// One retained solver heartbeat, as serialized into a [`PostmortemRecord`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatRecord {
    /// 1-based ordinal within the solve call.
    pub seq: u64,
    /// Cumulative conflicts at sample time.
    pub conflicts: u64,
    /// Cumulative decisions at sample time.
    pub decisions: u64,
    /// Cumulative propagations at sample time.
    pub propagations: u64,
    /// Cumulative restarts at sample time.
    pub restarts: u64,
    /// Assigned literals on the trail at sample time.
    pub trail_depth: u64,
    /// Live learnt clauses at sample time.
    pub learnt_clauses: u64,
    /// Variables fixed at decision level 0 at sample time.
    pub vars_assigned_at_root: u64,
    /// Total problem variables.
    pub total_vars: u64,
    /// Per-family conflict partition at sample time.
    pub conflicts_by_family: Vec<u64>,
}

impl PostmortemRecord {
    /// Builds a record from a solver post-mortem plus the unit's matrix
    /// coordinates.
    #[must_use]
    pub fn new(
        benchmark: &str,
        seed: u64,
        strategy: &str,
        isolation: &str,
        unit: &str,
        postmortem: &SolverPostmortem,
    ) -> PostmortemRecord {
        PostmortemRecord {
            benchmark: benchmark.to_string(),
            seed,
            strategy: strategy.to_string(),
            isolation: isolation.to_string(),
            unit: unit.to_string(),
            budget: postmortem.budget,
            conflicts_in_call: postmortem.conflicts_in_call,
            conflicts: postmortem.stats.conflicts,
            restarts: postmortem.stats.restarts,
            propagations: postmortem.stats.propagations,
            families: postmortem.attribution.families.clone(),
            conflicts_by_family: postmortem.attribution.conflicts_by_family.clone(),
            conflicts_involving: postmortem.attribution.conflicts_involving.clone(),
            propagations_by_family: postmortem.attribution.propagations_by_family.clone(),
            learned_ancestry: postmortem.attribution.learned_ancestry.clone(),
            clauses_by_family: postmortem.attribution.clauses_by_family.clone(),
            dominant_family: postmortem
                .attribution
                .dominant_family()
                .map(|(name, _)| name.to_string()),
            heartbeats: postmortem
                .heartbeats
                .iter()
                .map(|hb| HeartbeatRecord {
                    seq: hb.seq,
                    conflicts: hb.conflicts,
                    decisions: hb.decisions,
                    propagations: hb.propagations,
                    restarts: hb.restarts,
                    trail_depth: hb.trail_depth,
                    learnt_clauses: hb.learnt_clauses,
                    vars_assigned_at_root: hb.vars_assigned_at_root,
                    total_vars: hb.total_vars,
                    conflicts_by_family: hb.conflicts_by_family.clone(),
                })
                .collect(),
        }
    }
}

/// Outcome counts over the whole campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct CampaignSummary {
    /// Total experiments (matrix cells).
    pub experiments: usize,
    /// Experiments whose prediction validated as unserializable.
    pub validated: usize,
    /// Experiments whose prediction failed validation.
    pub failed_validation: usize,
    /// Experiments where no prediction exists.
    pub no_prediction: usize,
    /// Experiments where the solver budget was exhausted.
    pub unknown: usize,
    /// Experiments analyzed per-shard.
    pub sharded: usize,
    /// Total analysis units executed (shard tasks + whole-history tasks).
    pub analysis_units: usize,
}

impl CampaignSummary {
    /// Tallies a summary from task records.
    #[must_use]
    pub fn from_tasks(tasks: &[TaskRecord]) -> CampaignSummary {
        let mut summary = CampaignSummary {
            experiments: tasks.len(),
            ..CampaignSummary::default()
        };
        for task in tasks {
            match task.outcome.as_str() {
                "validated" => summary.validated += 1,
                "failed_validation" => summary.failed_validation += 1,
                "no_prediction" => summary.no_prediction += 1,
                _ => summary.unknown += 1,
            }
            if task.sharded {
                summary.sharded += 1;
            }
            summary.analysis_units += task.units;
        }
        summary
    }
}

/// Wall-clock measurements of one campaign run.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct CampaignTiming {
    /// Worker threads used.
    pub workers: usize,
    /// Total wall-clock time of the campaign, in microseconds.
    pub wall_us: u64,
    /// Sum of per-task busy times across all phases, in microseconds (the
    /// sequential-equivalent cost).
    pub cpu_us: u64,
    /// Wall-clock time of the record phase, in microseconds.
    pub record_us: u64,
    /// Cells whose trace was loaded from the corpus (record phase skipped).
    pub corpus_hits: usize,
    /// Cells that had to be recorded (and were persisted, when a corpus is
    /// configured).
    pub corpus_misses: usize,
    /// Recording time saved by corpus hits, in microseconds: the sum of the
    /// original record costs of every loaded cell.
    pub record_saved_us: u64,
    /// Wall-clock time of the predict phase, in microseconds.
    pub predict_us: u64,
    /// Wall-clock time of the merge + validate phase, in microseconds.
    pub validate_us: u64,
    /// Analysis units executed per wall-clock second.
    pub units_per_sec: f64,
    /// `cpu_us / wall_us` — an *upper bound* on the parallel speedup. Each
    /// task's busy time is measured in wall-clock terms, so when workers
    /// time-share scarce CPUs the per-task times inflate and this ratio
    /// approaches the worker count regardless of real throughput; the honest
    /// speedup measure is comparing `wall_us` against a 1-worker run of the
    /// same campaign (what `bench_orchestrator` reports).
    pub speedup_estimate: f64,
}

/// The full result of a campaign run.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignReport {
    /// One record per experiment, in matrix order (deterministic).
    pub tasks: Vec<TaskRecord>,
    /// Outcome aggregates (deterministic).
    pub summary: CampaignSummary,
    /// Per observed cell: where its trace came from (run-dependent — depends
    /// on the corpus state, so excluded from the deterministic half).
    pub provenance: Vec<ProvenanceRecord>,
    /// Wall-clock measurements (run-dependent).
    pub timing: CampaignTiming,
    /// Aggregated telemetry of the run (`None` unless the campaign executed
    /// through [`crate::Campaign::run_observed`] with an enabled handle).
    /// Run-dependent — durations vary — so it lives beside `timing`, outside
    /// the deterministic half.
    pub metrics: Option<MetricsSection>,
    /// Flight-recorder post-mortems, one per analysis unit that ended
    /// `unknown`, in matrix order. Diagnostic data (heartbeat counts depend
    /// on the heartbeat interval), so excluded from the deterministic half.
    pub postmortems: Vec<PostmortemRecord>,
}

impl CampaignReport {
    /// Pretty JSON of the whole report, timing included.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Pretty JSON of the deterministic half only (tasks + summary):
    /// byte-identical across runs, worker counts, and solver configurations
    /// that cannot change verdicts (e.g. preprocessing on/off) for a fixed
    /// campaign.
    ///
    /// Witness-level task fields (`diverged`, `changed_reads`) are excluded:
    /// they describe the particular model the solver happened to produce,
    /// which is deterministic for a fixed configuration but legitimately
    /// differs between equisatisfiable solver configurations.
    #[must_use]
    pub fn deterministic_json(&self) -> String {
        const WITNESS_FIELDS: &[&str] = &["diverged", "changed_reads"];
        struct Deterministic<'a>(&'a CampaignReport);
        impl Serialize for Deterministic<'_> {
            fn to_content(&self) -> serde::Content {
                let tasks = self
                    .0
                    .tasks
                    .iter()
                    .map(|task| match task.to_content() {
                        serde::Content::Map(entries) => serde::Content::Map(
                            entries
                                .into_iter()
                                .filter(|(key, _)| !WITNESS_FIELDS.contains(&key.as_str()))
                                .collect(),
                        ),
                        other => other,
                    })
                    .collect();
                serde::Content::Map(vec![
                    ("tasks".to_string(), serde::Content::Seq(tasks)),
                    ("summary".to_string(), self.0.summary.to_content()),
                ])
            }
        }
        serde_json::to_string_pretty(&Deterministic(self))
            .expect("report serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(outcome: &str, sharded: bool, units: usize) -> TaskRecord {
        TaskRecord {
            benchmark: "Smallbank".into(),
            seed: 0,
            strategy: "Approx-Relaxed".into(),
            isolation: "causal".into(),
            components: units.max(1),
            dominant_fraction: 0.5,
            sharded,
            units,
            predicting_unit: None,
            predicting_unit_label: None,
            outcome: outcome.into(),
            diverged: false,
            changed_reads: 1,
            literals: 100,
            observed_txns: 12,
            observed_reads: 20,
            observed_writes: 10,
        }
    }

    #[test]
    fn summary_tallies_outcomes_and_units() {
        let tasks = vec![
            record("validated", true, 3),
            record("no_prediction", false, 1),
            record("unknown", false, 1),
            record("failed_validation", true, 2),
        ];
        let summary = CampaignSummary::from_tasks(&tasks);
        assert_eq!(summary.experiments, 4);
        assert_eq!(summary.validated, 1);
        assert_eq!(summary.failed_validation, 1);
        assert_eq!(summary.no_prediction, 1);
        assert_eq!(summary.unknown, 1);
        assert_eq!(summary.sharded, 2);
        assert_eq!(summary.analysis_units, 7);
    }

    #[test]
    fn deterministic_json_excludes_timing_and_provenance() {
        let tasks = vec![record("validated", false, 1)];
        let summary = CampaignSummary::from_tasks(&tasks);
        let mut report = CampaignReport {
            tasks,
            summary,
            provenance: vec![ProvenanceRecord {
                benchmark: "Smallbank".into(),
                seed: 0,
                trace_source: "recorded".into(),
                trace_hash: "ab".repeat(32),
                record_us: 10,
            }],
            timing: CampaignTiming {
                workers: 4,
                wall_us: 123,
                ..CampaignTiming::default()
            },
            metrics: None,
            postmortems: vec![],
        };
        let first = report.deterministic_json();
        report.timing.wall_us = 456_789;
        report.timing.workers = 8;
        // A warm rerun flips the source and saves the record cost — none of
        // which may leak into the deterministic half.
        report.provenance[0].trace_source = "corpus".into();
        report.timing.corpus_hits = 1;
        report.timing.record_saved_us = 10;
        // Collected telemetry may not leak into the deterministic half either.
        report.metrics = Some(MetricsSection {
            spans: vec![],
            counters: vec![],
            gauges: vec![],
            attributed_wall_fraction: 0.99,
        });
        assert_eq!(first, report.deterministic_json());
        assert!(report.to_json().contains("wall_us"));
        assert!(report.to_json().contains("attributed_wall_fraction"));
        assert!(!first.contains("attributed_wall_fraction"));
        assert!(report.to_json().contains("\"trace_source\": \"corpus\""));
        assert!(!first.contains("wall_us"));
        assert!(!first.contains("trace_source"));
        assert!(first.contains("\"benchmark\": \"Smallbank\""));
    }

    #[test]
    fn deterministic_json_excludes_witness_level_task_fields() {
        let tasks = vec![record("validated", false, 1)];
        let summary = CampaignSummary::from_tasks(&tasks);
        let mut report = CampaignReport {
            tasks,
            summary,
            provenance: vec![],
            timing: CampaignTiming::default(),
            metrics: None,
            postmortems: vec![],
        };
        let first = report.deterministic_json();
        // A different (equally valid) solver model changes only the witness.
        report.tasks[0].diverged = true;
        report.tasks[0].changed_reads = 7;
        assert_eq!(first, report.deterministic_json());
        assert!(!first.contains("changed_reads"));
        assert!(!first.contains("diverged"));
        // Verdict-level fields stay.
        assert!(first.contains("\"outcome\": \"validated\""));
        assert!(first.contains("\"literals\": 100"));
        // The full report keeps the witness fields.
        assert!(report.to_json().contains("\"changed_reads\": 7"));
        assert!(report.to_json().contains("\"diverged\": true"));
    }

    #[test]
    fn deterministic_json_excludes_postmortems() {
        let tasks = vec![record("unknown", false, 1)];
        let summary = CampaignSummary::from_tasks(&tasks);
        let mut report = CampaignReport {
            tasks,
            summary,
            provenance: vec![],
            timing: CampaignTiming::default(),
            metrics: None,
            postmortems: vec![],
        };
        let first = report.deterministic_json();
        // Heartbeat counts depend on the heartbeat interval, so attaching a
        // post-mortem may not perturb the deterministic half.
        report.postmortems.push(PostmortemRecord {
            benchmark: "Smallbank".into(),
            seed: 0,
            strategy: "Approx-Relaxed".into(),
            isolation: "causal".into(),
            unit: "whole".into(),
            budget: Some(100),
            conflicts_in_call: 100,
            conflicts: 100,
            restarts: 2,
            propagations: 5000,
            families: vec!["default".into(), "feasibility".into()],
            conflicts_by_family: vec![40, 60],
            conflicts_involving: vec![40, 80],
            propagations_by_family: vec![0, 900],
            learned_ancestry: vec![0, 80],
            clauses_by_family: vec![3, 17],
            dominant_family: Some("feasibility".into()),
            heartbeats: vec![HeartbeatRecord {
                seq: 1,
                conflicts: 100,
                decisions: 400,
                propagations: 5000,
                restarts: 2,
                trail_depth: 12,
                learnt_clauses: 30,
                vars_assigned_at_root: 4,
                total_vars: 40,
                conflicts_by_family: vec![40, 60],
            }],
        });
        assert_eq!(first, report.deterministic_json());
        assert!(!first.contains("dominant_family"));
        assert!(report
            .to_json()
            .contains("\"dominant_family\": \"feasibility\""));
        assert!(report.to_json().contains("\"conflicts_in_call\": 100"));
        // And the record round-trips through the JSON a `sat_explain` reads.
        let json = serde_json::to_string(&report.postmortems).expect("serialize");
        let raw: serde::Content = serde_json::from_str(&json).expect("reparse");
        let back = Vec::<PostmortemRecord>::from_content(&raw).expect("deserialize");
        assert_eq!(back, report.postmortems);
    }
}
