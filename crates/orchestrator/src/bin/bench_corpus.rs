//! Measures what the trace corpus buys: cold-vs-warm campaign wall time on
//! the small Smallbank + Voter matrix.
//!
//! Unlike worker scaling (bounded by physical cores — see
//! `BENCH_orchestrator.json`), skipping the record phase is a real saving
//! even on a 1-CPU container: the warm run spends zero time re-executing
//! workloads and the verdicts are byte-identical by construction.
//!
//! Usage:
//! `cargo run --release -p isopredict-orchestrator --bin bench_corpus -- \
//!     [--seeds N] [--workers N] [--out PATH]`
//!
//! Writes a JSON summary (default `BENCH_corpus.json`) with the cold run
//! (records + persists), the warm run (loads everything), and the derived
//! speedups.

use isopredict::{IsolationLevel, Strategy};
use isopredict_corpus::testutil::scratch_dir;
use isopredict_orchestrator::{Campaign, CampaignOptions};
use isopredict_workloads::Benchmark;
use serde::Serialize;

#[derive(Serialize)]
struct Run {
    wall_us: u64,
    record_us: u64,
    corpus_hits: usize,
    corpus_misses: usize,
    record_saved_us: u64,
}

#[derive(Serialize)]
struct Bench {
    matrix: String,
    experiments: usize,
    workers: usize,
    cold: Run,
    warm: Run,
    /// Cold record-phase wall time vs warm (the phase the corpus removes).
    record_phase_speedup: f64,
    /// Whole-campaign wall time, cold vs warm.
    campaign_speedup: f64,
    /// Whether the deterministic report halves were byte-identical.
    deterministic_identical: bool,
    notes: String,
}

fn run_to_json(report: &isopredict_orchestrator::CampaignReport) -> Run {
    Run {
        wall_us: report.timing.wall_us,
        record_us: report.timing.record_us,
        corpus_hits: report.timing.corpus_hits,
        corpus_misses: report.timing.corpus_misses,
        record_saved_us: report.timing.record_saved_us,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds: u64 = arg(&args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let workers: usize = arg(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let out = arg(&args, "--out").unwrap_or_else(|| "BENCH_corpus.json".to_string());

    // Read committed keeps every solve decisive and fast; full-size causal
    // Unsat proofs burn the whole conflict budget (a solver cost the corpus
    // cannot touch — it would dwarf the record phase identically cold and
    // warm without changing the record-phase comparison).
    let campaign = Campaign::new()
        .benchmarks([Benchmark::Smallbank, Benchmark::Voter])
        .seeds(0..seeds)
        .strategies([Strategy::ApproxRelaxed])
        .isolations([IsolationLevel::ReadCommitted]);
    let dir = scratch_dir("bench");
    let options = CampaignOptions {
        workers,
        corpus: Some(dir.path().to_path_buf()),
        ..CampaignOptions::default()
    };

    eprintln!(
        "bench_corpus: {} experiments, cold run (records + persists)…",
        campaign.experiments()
    );
    let cold = campaign.run(&options);
    assert_eq!(cold.timing.corpus_hits, 0, "scratch corpus must start cold");
    eprintln!("bench_corpus: warm run (loads from corpus)…");
    let warm = campaign.run(&options);
    assert_eq!(
        warm.timing.corpus_misses, 0,
        "warm run must skip the record phase entirely"
    );

    let bench = Bench {
        matrix: format!("smallbank+voter × {seeds} seeds × rc (small)"),
        experiments: campaign.experiments(),
        workers,
        record_phase_speedup: cold.timing.record_us as f64 / warm.timing.record_us.max(1) as f64,
        campaign_speedup: cold.timing.wall_us as f64 / warm.timing.wall_us.max(1) as f64,
        deterministic_identical: cold.deterministic_json() == warm.deterministic_json(),
        cold: run_to_json(&cold),
        warm: run_to_json(&warm),
        notes: "In-memory workloads record in microseconds, so solver time dominates \
                this matrix and the whole-campaign speedup stays near 1x; the record \
                phase itself (the part the corpus removes) is what record_phase_speedup \
                measures, and its absolute saving grows with workload size and record \
                cost (e.g. driving a real store). Verdict byte-identity cold-vs-warm is \
                asserted, not sampled."
            .to_string(),
    };
    assert!(
        bench.deterministic_identical,
        "cold and warm deterministic report halves diverged"
    );
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&bench).expect("serialize"),
    )
    .expect("write bench output");
    eprintln!(
        "bench_corpus: record phase {:.1}x faster warm ({:.1}ms -> {:.1}ms), campaign {:.2}x; wrote {out}",
        bench.record_phase_speedup,
        cold.timing.record_us as f64 / 1e3,
        warm.timing.record_us as f64 / 1e3,
        bench.campaign_speedup,
    );
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
