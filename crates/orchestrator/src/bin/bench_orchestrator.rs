//! Measures campaign throughput and parallel speedup at 1/2/4/8 workers and
//! emits the machine-readable `BENCH_orchestrator.json` used to track the
//! performance trajectory across PRs.
//!
//! The measured campaign is the small Smallbank + Voter matrix (both
//! isolation levels, Approx-Relaxed). Besides timing, the run re-checks the
//! determinism contract: every worker count must produce byte-identical
//! deterministic reports.
//!
//! Usage:
//! `cargo run --release -p isopredict-orchestrator --bin bench_orchestrator -- \
//!     [--seeds N] [--workers 1,2,4,8] [--budget N] [--out PATH]`

use serde::Serialize;

use isopredict::{IsolationLevel, Strategy};
use isopredict_orchestrator::{Campaign, CampaignOptions, ShardPolicy};
use isopredict_workloads::Benchmark;

/// One worker-count measurement.
#[derive(Debug, Serialize)]
struct WorkerPoint {
    /// Worker threads used.
    workers: usize,
    /// Campaign wall-clock time in microseconds.
    wall_us: u64,
    /// Sum of per-task busy time in microseconds.
    cpu_us: u64,
    /// Analysis units executed per wall-clock second.
    units_per_sec: f64,
    /// Wall-clock speedup versus the 1-worker run; `null` when the worker
    /// list contains no 1-worker baseline run before this point.
    speedup_vs_sequential: Option<f64>,
}

/// The `BENCH_orchestrator.json` document.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// Benchmark campaign description.
    campaign: String,
    /// Experiments in the matrix.
    experiments: usize,
    /// Analysis units per run (shard tasks; constant across worker counts).
    analysis_units: usize,
    /// CPUs the host makes available (`std::thread::available_parallelism`).
    available_parallelism: usize,
    /// Whether every worker count produced byte-identical deterministic
    /// reports.
    deterministic: bool,
    /// `"insufficient_parallelism"` note when the host has fewer CPUs than
    /// the largest requested worker count — multi-worker points then
    /// time-share cores and their speedups understate the orchestrator, so
    /// readers of this file must not treat them as regressions. `None` on
    /// hosts with enough CPUs.
    warning: Option<String>,
    /// Per worker-count measurements.
    points: Vec<WorkerPoint>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds: u64 = arg(&args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    // 250k conflicts keeps the slow Unsat proofs (Voter under causal) around
    // ten seconds each in release builds while leaving the cheap Sat cells
    // untouched; the verdict for a fixed budget is still deterministic.
    let budget: u64 = arg(&args, "--budget")
        .and_then(|v| v.parse().ok())
        .unwrap_or(250_000);
    let worker_counts: Vec<usize> = arg(&args, "--workers")
        .map(|list| {
            list.split(',')
                .map(|w| w.parse().expect("worker count"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let out = arg(&args, "--out").unwrap_or_else(|| "BENCH_orchestrator.json".to_string());

    let campaign = Campaign::new()
        .benchmarks([Benchmark::Smallbank, Benchmark::Voter])
        .seeds(0..seeds)
        .strategies([Strategy::ApproxRelaxed])
        .isolations([IsolationLevel::Causal, IsolationLevel::ReadCommitted]);

    let available = isopredict_orchestrator::WorkerPool::auto().workers();
    eprintln!(
        "bench_orchestrator: {} experiments, worker counts {:?}, {} CPUs available",
        campaign.experiments(),
        worker_counts,
        available
    );

    let mut points = Vec::new();
    let mut reference: Option<String> = None;
    let mut deterministic = true;
    let mut sequential_wall: Option<u64> = None;
    let mut analysis_units = 0;

    for &workers in &worker_counts {
        let report = campaign.run(&CampaignOptions {
            workers,
            conflict_budget: Some(budget),
            shard_policy: ShardPolicy::default(),
            corpus: None,
            ..CampaignOptions::default()
        });
        let fingerprint = report.deterministic_json();
        match &reference {
            None => reference = Some(fingerprint),
            Some(expected) => {
                if *expected != fingerprint {
                    deterministic = false;
                    eprintln!("WARNING: {workers}-worker report differs from reference");
                }
            }
        }
        analysis_units = report.summary.analysis_units;
        let wall_us = report.timing.wall_us;
        if workers == 1 {
            sequential_wall = Some(wall_us);
        }
        let speedup = sequential_wall.map(|seq| seq as f64 / wall_us as f64);
        match speedup {
            Some(speedup) => eprintln!(
                "  {workers:>2} workers: {:.2}s wall, {:.2} units/s, {speedup:.2}x vs sequential",
                wall_us as f64 / 1e6,
                report.timing.units_per_sec,
            ),
            None => eprintln!(
                "  {workers:>2} workers: {:.2}s wall, {:.2} units/s (no 1-worker baseline)",
                wall_us as f64 / 1e6,
                report.timing.units_per_sec,
            ),
        }
        points.push(WorkerPoint {
            workers,
            wall_us,
            cpu_us: report.timing.cpu_us,
            units_per_sec: report.timing.units_per_sec,
            speedup_vs_sequential: speedup,
        });
    }

    let max_requested = worker_counts.iter().copied().max().unwrap_or(1);
    let warning = (available < max_requested).then(|| {
        format!(
            "insufficient_parallelism: host has {available} CPU(s) but up to \
             {max_requested} workers were requested; multi-worker points \
             time-share cores and understate the parallel speedup"
        )
    });
    if let Some(warning) = &warning {
        eprintln!("WARNING: {warning}");
    }
    let bench = BenchReport {
        campaign: format!("smallbank+voter small, {seeds} seeds, approx-relaxed, causal+rc"),
        experiments: campaign.experiments(),
        analysis_units,
        available_parallelism: available,
        deterministic,
        warning,
        points,
    };
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&bench).expect("serialize"),
    )
    .expect("write bench report");
    eprintln!("wrote {out}");

    assert!(bench.deterministic, "determinism contract violated");
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
