//! Measures what observability costs: identical campaigns with telemetry off
//! (`Obs::off`) versus fully on (spans + counters + solver heartbeats +
//! JSONL event streaming), interleaved, taking the minimum wall time of each
//! mode.
//!
//! Besides the overhead, the run re-checks the contracts the
//! instrumentation ships with: the deterministic report halves must be
//! byte-identical with metrics on and off, the named phase spans must
//! attribute ≥95% of the campaign wall time, and the instrumented stream
//! must actually contain heartbeat events — the matrix includes budget-capped
//! causal cells that burn >10k conflicts precisely so the measured overhead
//! covers heartbeat emission at the default interval, not just spans.
//!
//! Usage:
//! `cargo run --release -p isopredict-orchestrator --bin bench_obs -- \
//!     [--seeds N] [--iterations N] [--workers N] [--max-overhead-pct F] [--out PATH]`
//!
//! Writes a JSON summary (default `BENCH_obs.json`).

use isopredict::{IsolationLevel, Obs, Strategy};
use isopredict_obs::{validate_stream, BufferSink, Registry};
use isopredict_orchestrator::{Campaign, CampaignOptions};
use isopredict_workloads::Benchmark;
use serde::Serialize;

/// The `BENCH_obs.json` document.
#[derive(Serialize)]
struct Bench {
    matrix: String,
    experiments: usize,
    workers: usize,
    iterations: usize,
    /// Minimum campaign wall time with telemetry off, in microseconds.
    off_wall_us: u64,
    /// Minimum campaign wall time with spans, counters and JSONL event
    /// streaming all on, in microseconds.
    on_wall_us: u64,
    /// `(on - off) / off`, in percent (negative when the on-run happened to
    /// be faster — the instrumentation cost is below measurement noise).
    overhead_pct: f64,
    /// Fraction of the campaign span's wall time attributed to its named
    /// phase children (record/predict/validate), from the on-run's metrics.
    attributed_wall_fraction: f64,
    /// JSONL events emitted by one instrumented run.
    events_per_run: usize,
    /// Solver heartbeat events among them (default interval, 10k conflicts).
    heartbeats_per_run: usize,
    /// Span paths in the aggregated metrics section.
    span_paths: usize,
    /// Whether the deterministic report halves were byte-identical between
    /// the off- and on-runs.
    deterministic_identical: bool,
    notes: String,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds: u64 = arg(&args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let iterations: usize = arg(&args, "--iterations")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let workers: usize = arg(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let max_overhead_pct: f64 = arg(&args, "--max-overhead-pct")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let out = arg(&args, "--out").unwrap_or_else(|| "BENCH_obs.json".to_string());

    // Read committed keeps every solve decisive (the BENCH_corpus matrix),
    // while the causal cells burn a bounded 50k-conflict budget each — long
    // enough that heartbeats fire at the default 10k-conflict interval, so
    // the overhead number covers heartbeat emission, not just spans.
    let campaign = Campaign::new()
        .benchmarks([Benchmark::Smallbank, Benchmark::Voter])
        .seeds(0..seeds)
        .strategies([Strategy::ApproxRelaxed])
        .isolations([IsolationLevel::ReadCommitted, IsolationLevel::Causal]);
    let options = CampaignOptions {
        workers,
        conflict_budget: Some(50_000),
        ..CampaignOptions::default()
    };
    eprintln!(
        "bench_obs: {} experiments, {iterations} interleaved off/on iterations",
        campaign.experiments()
    );

    let mut off_wall_us = u64::MAX;
    let mut on_wall_us = u64::MAX;
    let mut det_off: Option<String> = None;
    let mut det_on: Option<String> = None;
    let mut attributed = 0.0;
    let mut events_per_run = 0;
    let mut heartbeats_per_run = 0;
    let mut span_paths = 0;

    for iteration in 0..iterations {
        let off_report = campaign.run_observed(&options, &Obs::off());
        assert!(off_report.metrics.is_none(), "off-run must not aggregate");
        off_wall_us = off_wall_us.min(off_report.timing.wall_us);
        det_off.get_or_insert_with(|| off_report.deterministic_json());

        let sink = BufferSink::new();
        let registry = Registry::with_sink(Box::new(sink.clone()));
        let on_report = campaign.run_observed(&options, &registry.obs());
        registry.flush();
        on_wall_us = on_wall_us.min(on_report.timing.wall_us);
        det_on.get_or_insert_with(|| on_report.deterministic_json());

        let metrics = on_report.metrics.as_ref().expect("on-run aggregates");
        attributed = metrics.attributed_wall_fraction;
        span_paths = metrics.spans.len();
        let stream = sink.contents();
        let summary = validate_stream(&stream).expect("instrumented run streams valid JSONL");
        events_per_run = summary.events;
        heartbeats_per_run = summary.heartbeats;
        eprintln!(
            "  iteration {iteration}: off {:.2}s, on {:.2}s ({} events, {} heartbeats)",
            off_report.timing.wall_us as f64 / 1e6,
            on_report.timing.wall_us as f64 / 1e6,
            summary.events,
            summary.heartbeats
        );
    }

    let overhead_pct = (on_wall_us as f64 - off_wall_us as f64) / off_wall_us as f64 * 100.0;
    let deterministic_identical = det_off == det_on;
    let bench = Bench {
        matrix: format!("smallbank+voter × {seeds} seeds × rc+causal (small, 50k budget)"),
        experiments: campaign.experiments(),
        workers,
        iterations,
        off_wall_us,
        on_wall_us,
        overhead_pct,
        attributed_wall_fraction: attributed,
        events_per_run,
        heartbeats_per_run,
        span_paths,
        deterministic_identical,
        notes: "Minimum wall time over interleaved off/on iterations; 'on' includes span \
                bookkeeping, counter updates, solver heartbeats at the default 10k-conflict \
                interval and JSONL event streaming to an in-memory sink. The budget-capped \
                causal cells guarantee heartbeat traffic (gated: zero heartbeats fails the \
                bench). Deterministic report halves are asserted byte-identical with telemetry \
                on and off, and the record/predict/validate phase spans must attribute >=95% \
                of the campaign span's wall time."
            .to_string(),
    };
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&bench).expect("serialize"),
    )
    .expect("write bench report");
    eprintln!(
        "bench_obs: off {:.2}s, on {:.2}s -> {overhead_pct:.2}% overhead, {:.1}% wall attributed; wrote {out}",
        off_wall_us as f64 / 1e6,
        on_wall_us as f64 / 1e6,
        attributed * 100.0
    );

    assert!(
        deterministic_identical,
        "deterministic report half changed when telemetry was enabled"
    );
    assert!(
        attributed >= 0.95,
        "phase spans attribute only {:.1}% of campaign wall time",
        attributed * 100.0
    );
    assert!(
        heartbeats_per_run > 0,
        "instrumented run emitted no heartbeat events — the overhead number \
         would not cover heartbeat emission"
    );
    assert!(
        overhead_pct < max_overhead_pct,
        "instrumentation overhead {overhead_pct:.2}% exceeds {max_overhead_pct}%"
    );
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
