//! Runs an analysis campaign from the command line and writes the JSON
//! report.
//!
//! Usage:
//! `cargo run --release -p isopredict-orchestrator --bin campaign -- \
//!     [--paper] [--benchmarks smallbank,voter,tpcc,wikipedia,overdraft] [--seeds N] \
//!     [--strategies exact-strict,approx-strict,approx-relaxed] \
//!     [--isolation causal,rc,si] [--size small|large] [--budget N] \
//!     [--workers N] [--shard auto|never|always] [--corpus DIR] \
//!     [--no-preprocess] [--heartbeat-every N] \
//!     [--out PATH] [--det-out PATH] [--metrics PATH | --metrics-stdout]`
//!
//! With `--corpus DIR`, observed cells already in the corpus are loaded
//! instead of re-recorded (`trace_source: corpus` in the report) and fresh
//! recordings are persisted for next time. `--det-out` writes only the
//! deterministic report half (tasks + summary), which is byte-identical
//! across runs, worker counts, and cold/warm corpora — and whether or not
//! telemetry is collected. `--metrics PATH` streams the run's JSONL event
//! stream (spans, solver counters) to `PATH` and embeds the aggregated
//! `metrics` section in the report; `--metrics-stdout` streams to stdout.

use isopredict::{IsolationLevel, Obs, Strategy};
use isopredict_obs::metrics_registry;
use isopredict_orchestrator::{Campaign, CampaignOptions, ShardPolicy};
use isopredict_workloads::{Benchmark, WorkloadSize};

fn main() {
    let args: Vec<String> = std::env::args().collect();

    let mut campaign = if args.iter().any(|a| a == "--paper") {
        Campaign::paper_matrix()
    } else {
        Campaign::new()
    };
    if let Some(list) = arg(&args, "--benchmarks") {
        campaign = campaign.benchmarks(list.split(',').map(parse_benchmark));
    }
    if let Some(n) = arg(&args, "--seeds").and_then(|v| v.parse::<u64>().ok()) {
        campaign = campaign.seeds(0..n);
    }
    if let Some(list) = arg(&args, "--strategies") {
        campaign = campaign.strategies(list.split(',').map(parse_strategy));
    }
    if let Some(list) = arg(&args, "--isolation") {
        campaign = campaign.isolations(list.split(',').map(parse_isolation));
    }
    if let Some(size) = arg(&args, "--size") {
        campaign = campaign.size(match size.as_str() {
            "large" => WorkloadSize::Large,
            _ => WorkloadSize::Small,
        });
    }

    let mut options = CampaignOptions::default();
    if let Some(budget) = arg(&args, "--budget").and_then(|v| v.parse().ok()) {
        options.conflict_budget = Some(budget);
    }
    if let Some(workers) = arg(&args, "--workers").and_then(|v| v.parse().ok()) {
        options.workers = workers;
    }
    if let Some(policy) = arg(&args, "--shard") {
        options.shard_policy = match policy.as_str() {
            "never" => ShardPolicy::Never,
            "always" => ShardPolicy::Always,
            _ => ShardPolicy::default(),
        };
    }
    if let Some(dir) = arg(&args, "--corpus") {
        options.corpus = Some(dir.into());
    }
    // A/B switch for the SAT core's static preprocessing pipeline; the
    // deterministic report half must not depend on it.
    if args.iter().any(|a| a == "--no-preprocess") {
        options.preprocess = false;
    }
    // Solver heartbeat interval in conflicts (0 disables). Heartbeats feed
    // the obs stream and `unknown` post-mortems, never the deterministic
    // report half.
    if let Some(every) = arg(&args, "--heartbeat-every").and_then(|v| v.parse().ok()) {
        options.heartbeat_every = every;
    }

    eprintln!(
        "campaign: {} experiments on {} workers",
        campaign.experiments(),
        options.workers
    );
    let registry = metrics_registry(&args);
    let obs = registry.as_ref().map_or_else(Obs::off, |r| r.obs());
    let report = campaign.run_observed(&options, &obs);
    if let Some(registry) = &registry {
        registry.flush();
    }

    println!(
        "{:<11} {:>5} {:<15} {:<15} {:>6} {:>6} {:<8} {:<18} {:>9}",
        "Program", "Seed", "Strategy", "Isolation", "Comps", "Units", "Via", "Outcome", "Literals"
    );
    for task in &report.tasks {
        println!(
            "{:<11} {:>5} {:<15} {:<15} {:>6} {:>6} {:<8} {:<18} {:>9}",
            task.benchmark,
            task.seed,
            task.strategy,
            task.isolation,
            task.components,
            task.units,
            task.predicting_unit_label.as_deref().unwrap_or("-"),
            task.outcome,
            task.literals,
        );
    }
    println!();
    println!(
        "outcomes: {} validated, {} failed validation, {} no prediction, {} unknown ({} experiments, {} analysis units, {} sharded)",
        report.summary.validated,
        report.summary.failed_validation,
        report.summary.no_prediction,
        report.summary.unknown,
        report.summary.experiments,
        report.summary.analysis_units,
        report.summary.sharded,
    );
    println!(
        "timing: {:.2}s wall on {} workers ({:.2}s cpu, {:.2} units/s, {:.2}x speedup estimate)",
        report.timing.wall_us as f64 / 1e6,
        report.timing.workers,
        report.timing.cpu_us as f64 / 1e6,
        report.timing.units_per_sec,
        report.timing.speedup_estimate,
    );
    if options.corpus.is_some() {
        println!(
            "corpus: {} hit(s), {} miss(es); record phase skipped for hits, saving {:.2}s",
            report.timing.corpus_hits,
            report.timing.corpus_misses,
            report.timing.record_saved_us as f64 / 1e6,
        );
    }
    if let Some(metrics) = &report.metrics {
        println!(
            "metrics: {:.1}% of campaign wall attributed to {} span paths; {} solver conflicts, {} propagations",
            metrics.attributed_wall_fraction * 100.0,
            metrics.spans.len(),
            metrics.counter("solver.conflicts"),
            metrics.counter("solver.propagations"),
        );
    }

    if !report.postmortems.is_empty() {
        println!(
            "postmortems: {} budget-exhausted analysis unit(s) recorded; render with `sat_explain <report.json>`",
            report.postmortems.len(),
        );
    }

    if let Some(path) = arg(&args, "--out") {
        std::fs::write(&path, report.to_json()).expect("write report");
        eprintln!("report written to {path}");
    }
    if let Some(path) = arg(&args, "--det-out") {
        std::fs::write(&path, report.deterministic_json()).expect("write deterministic report");
        eprintln!("deterministic report half written to {path}");
    }
}

fn parse_benchmark(name: &str) -> Benchmark {
    name.parse().unwrap_or_else(|error| panic!("{error}"))
}

fn parse_strategy(name: &str) -> Strategy {
    match name {
        "exact-strict" => Strategy::ExactStrict,
        "approx-strict" => Strategy::ApproxStrict,
        "approx-relaxed" => Strategy::ApproxRelaxed,
        other => panic!("unknown strategy `{other}`"),
    }
}

fn parse_isolation(name: &str) -> IsolationLevel {
    name.parse().unwrap_or_else(|error| panic!("{error}"))
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
