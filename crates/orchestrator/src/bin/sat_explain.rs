//! Renders the flight-recorder post-mortems embedded in a campaign report.
//!
//! Usage:
//! `cargo run --release -p isopredict-orchestrator --bin sat_explain -- REPORT.json...`
//!
//! For every analysis unit that ended `unknown` (solver budget exhausted),
//! the campaign report's non-deterministic half carries a
//! [`PostmortemRecord`]: the solver's final per-axiom-family conflict
//! attribution plus the retained ring of progress heartbeats. This tool
//! turns those records into a human-readable account of *where the budget
//! went* — which axiom family dominated the conflicts, how the search was
//! trending when the budget ran out — so a timeout is a diagnosis, not a
//! shrug.
//!
//! Exit status is nonzero on unreadable or unparsable input; a report with
//! zero post-mortems renders a note and exits zero (every unit finishing
//! within budget is the good case).

use std::process::ExitCode;

use isopredict_orchestrator::{HeartbeatRecord, PostmortemRecord};
use serde::{Content, Deserialize};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if files.is_empty() {
        eprintln!("usage: sat_explain REPORT.json...");
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for path in files {
        match load_postmortems(path) {
            Ok(postmortems) if postmortems.is_empty() => {
                println!("{path}: no post-mortems (every analysis unit finished within budget)");
            }
            Ok(postmortems) => {
                println!(
                    "{path}: {} budget-exhausted analysis unit(s)",
                    postmortems.len()
                );
                for postmortem in &postmortems {
                    render(postmortem);
                }
            }
            Err(error) => {
                eprintln!("{path}: {error}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Reads a campaign report and extracts its `postmortems` array.
fn load_postmortems(path: &str) -> Result<Vec<PostmortemRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|error| error.to_string())?;
    let raw: Content = serde_json::from_str(&text).map_err(|error| error.to_string())?;
    if raw.as_map().is_none() {
        return Err("not a campaign report (expected a JSON object)".to_string());
    }
    let postmortems = raw.get("postmortems");
    if matches!(postmortems, Content::Null) {
        // Deterministic report halves and pre-flight-recorder reports have
        // no `postmortems` field at all; treat both as "none recorded".
        return Ok(Vec::new());
    }
    Vec::<PostmortemRecord>::from_content(postmortems)
        .map_err(|error| format!("malformed `postmortems` section: {error:?}"))
}

/// Pretty-prints one post-mortem: header, dominant family, the per-family
/// attribution table, and the retained heartbeat trajectory.
fn render(pm: &PostmortemRecord) {
    println!();
    println!(
        "  {} seed {} · {} @ {} · unit {}",
        pm.benchmark, pm.seed, pm.strategy, pm.isolation, pm.unit
    );
    match pm.budget {
        Some(budget) => println!(
            "    budget {budget} conflicts exhausted: {} spent in the final call, {} over the solver lifetime ({} restarts, {} propagations)",
            pm.conflicts_in_call, pm.conflicts, pm.restarts, pm.propagations
        ),
        None => println!(
            "    no budget recorded; {} conflicts in the final call, {} over the solver lifetime",
            pm.conflicts_in_call, pm.conflicts
        ),
    }
    match (&pm.dominant_family, pm.conflicts) {
        (Some(name), total) if total > 0 => {
            let involved = pm
                .families
                .iter()
                .position(|f| f == name)
                .and_then(|i| pm.conflicts_involving.get(i).copied())
                .unwrap_or(0);
            println!(
                "    dominant axiom family: {name} — involved in {:.1}% of conflicts",
                involved as f64 * 100.0 / total as f64
            );
        }
        _ => println!("    dominant axiom family: none (no conflicts attributed)"),
    }

    println!(
        "    {:<24} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "family", "clauses", "conflicts", "involved", "propagations", "learnt-anc"
    );
    for (i, family) in pm.families.iter().enumerate() {
        let row = [
            pm.clauses_by_family.get(i).copied().unwrap_or(0),
            pm.conflicts_by_family.get(i).copied().unwrap_or(0),
            pm.conflicts_involving.get(i).copied().unwrap_or(0),
            pm.propagations_by_family.get(i).copied().unwrap_or(0),
            pm.learned_ancestry.get(i).copied().unwrap_or(0),
        ];
        if row.iter().all(|&n| n == 0) {
            continue; // reserved families a run never exercised
        }
        println!(
            "    {:<24} {:>8} {:>10} {:>10} {:>12} {:>10}",
            family, row[0], row[1], row[2], row[3], row[4]
        );
    }

    if pm.heartbeats.is_empty() {
        println!("    heartbeats: none retained (interval longer than the solve, or disabled)");
        return;
    }
    println!(
        "    heartbeat trajectory ({} retained, oldest first):",
        pm.heartbeats.len()
    );
    println!(
        "      {:>6} {:>10} {:>10} {:>8} {:>8} {:>12} {:<24}",
        "seq", "conflicts", "decisions", "trail", "learnt", "root-fixed", "busiest family"
    );
    for hb in &pm.heartbeats {
        println!(
            "      {:>6} {:>10} {:>10} {:>8} {:>8} {:>7}/{:<4} {:<24}",
            hb.seq,
            hb.conflicts,
            hb.decisions,
            hb.trail_depth,
            hb.learnt_clauses,
            hb.vars_assigned_at_root,
            hb.total_vars,
            busiest_family(pm, hb),
        );
    }
}

/// The family charged with the most conflicts at one heartbeat, preferring
/// encoder-tagged axiom families over the reserved bookkeeping ones.
fn busiest_family<'a>(pm: &'a PostmortemRecord, hb: &HeartbeatRecord) -> &'a str {
    let pick = |skip_reserved: bool| {
        hb.conflicts_by_family
            .iter()
            .enumerate()
            .take(pm.families.len())
            .filter(|&(i, &n)| n > 0 && (!skip_reserved || i >= 3))
            .max_by_key(|&(i, &n)| (n, std::cmp::Reverse(i)))
            .map(|(i, _)| pm.families[i].as_str())
    };
    pick(true).or_else(|| pick(false)).unwrap_or("-")
}
