//! A/B benchmark of the SAT core's static preprocessing pipeline: identical
//! campaigns with preprocessing off versus on, interleaved, taking the
//! minimum wall time of each mode and comparing the solver-work counters
//! (`solver.conflicts` / `solver.propagations` / `solver.decisions`) that an
//! instrumented run streams.
//!
//! Two campaign cells are measured: the Overdraft × snapshot-isolation
//! write-skew matrix (whose `no_prediction` rows are outright UNSAT proofs —
//! the case the pipeline targets) and a Voter × causal slice. Besides the
//! numbers, the run re-checks the pipeline's contract: the deterministic
//! report halves must be byte-identical with preprocessing on and off.
//!
//! The Voter × causal cell is a **pinned regression**: enabling the
//! preprocessing pipeline made its conflict count *worse* by ~36% (bounded
//! variable elimination reshapes the formula in a way that happens to hurt
//! this cell's search; the verdicts are unchanged). The cell pins that known
//! trajectory with a tolerance band — the conflict counters are
//! deterministic per mode, so the gate is exact at the default matrix
//! (`--seeds 2 --txns 2`) — and fails the bench if a future change quietly
//! pushes the regression past the band instead of fixing it.
//!
//! Usage:
//! `cargo run --release -p isopredict-orchestrator --bin bench_preprocess -- \
//!     [--seeds N] [--txns N] [--iterations N] [--workers N] [--out PATH]`
//!
//! Writes a JSON summary (default `BENCH_preprocess.json`).

use isopredict::{IsolationLevel, Strategy};
use isopredict_obs::Registry;
use isopredict_orchestrator::{Campaign, CampaignOptions};
use isopredict_workloads::Benchmark;
use serde::Serialize;

/// Solver-work counters and wall time for one preprocessing mode.
#[derive(Serialize)]
struct Mode {
    /// Minimum campaign wall time over the interleaved iterations, in
    /// microseconds.
    wall_us: u64,
    /// Total CDCL conflicts across every solve in the campaign.
    conflicts: u64,
    /// Total unit propagations.
    propagations: u64,
    /// Total branching decisions.
    decisions: u64,
    /// Variables eliminated by bounded variable elimination (0 when off).
    pp_eliminated: u64,
    /// Clauses removed by subsumption (0 when off).
    pp_subsumed: u64,
    /// Literals fixed at the top level by UP, probing and pure literals (0
    /// when off).
    pp_fixed: u64,
}

/// One measured campaign cell.
#[derive(Serialize)]
struct Cell {
    name: String,
    matrix: String,
    experiments: usize,
    /// Outcome counts, same vocabulary as the campaign report summary.
    validated: usize,
    no_prediction: usize,
    unknown: usize,
    off: Mode,
    on: Mode,
    /// `(off.conflicts - on.conflicts) / off.conflicts`, in percent.
    conflict_reduction_pct: f64,
    /// `(off.wall_us - on.wall_us) / off.wall_us`, in percent (negative when
    /// preprocessing costs more than it saves on this cell).
    wall_reduction_pct: f64,
    /// Whether the deterministic report halves were byte-identical with
    /// preprocessing on and off.
    deterministic_identical: bool,
    /// Regression pin: the largest conflict *increase* (negative
    /// `conflict_reduction_pct`) this cell tolerates before the bench fails,
    /// calibrated at the default matrix. `None` leaves the cell ungated.
    pinned_max_conflict_increase_pct: Option<f64>,
}

/// The `BENCH_preprocess.json` document.
#[derive(Serialize)]
struct Bench {
    workers: usize,
    iterations: usize,
    cells: Vec<Cell>,
    notes: String,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds: u64 = arg(&args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let txns: usize = arg(&args, "--txns")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let iterations: usize = arg(&args, "--iterations")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let workers: usize = arg(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let out = arg(&args, "--out").unwrap_or_else(|| "BENCH_preprocess.json".to_string());

    let cells = vec![
        (
            "overdraft-si-write-skew",
            Campaign::new()
                .benchmarks([Benchmark::Overdraft])
                .seeds(0..seeds)
                .strategies([Strategy::ApproxRelaxed])
                .isolations([IsolationLevel::Snapshot])
                .txns_per_session(txns),
            format!("overdraft × {seeds} seeds × si (small, {txns} txns/session)"),
            None,
        ),
        (
            "voter-causal",
            Campaign::new()
                .benchmarks([Benchmark::Voter])
                .seeds(0..seeds)
                .strategies([Strategy::ApproxRelaxed])
                .isolations([IsolationLevel::Causal])
                .txns_per_session(txns),
            format!("voter × {seeds} seeds × causal (small, {txns} txns/session)"),
            // The known preprocessing regression: +36.3% conflicts at the
            // default matrix. Band allows measurement drift on non-default
            // matrices but catches a quietly compounding regression.
            Some(45.0),
        ),
    ];

    let mut measured = Vec::new();
    for (name, campaign, matrix, pin) in cells {
        eprintln!(
            "bench_preprocess: {name}, {} experiments, {iterations} interleaved off/on iterations",
            campaign.experiments()
        );
        measured.push(measure(name, &campaign, matrix, workers, iterations, pin));
    }

    let bench = Bench {
        workers,
        iterations,
        cells: measured,
        notes: "Minimum wall time over interleaved off/on iterations. Counters are totals \
                streamed by an instrumented run and are deterministic per mode. The \
                overdraft/si cell's no_prediction rows are outright UNSAT proofs — the \
                target of the preprocessing pipeline; conflict_reduction_pct is the \
                headline number. The voter-causal cell is a pinned regression: \
                preprocessing costs it ~36% more conflicts (verdicts unchanged), and the \
                bench fails if the increase drifts past the pinned band. Deterministic \
                report halves are asserted byte-identical with preprocessing on and off."
            .to_string(),
    };
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&bench).expect("serialize"),
    )
    .expect("write bench report");

    for cell in &bench.cells {
        eprintln!(
            "bench_preprocess: {}: conflicts {} -> {} ({:+.1}%), wall {:.3}s -> {:.3}s ({:+.1}%), \
             outcomes {}v/{}n/{}u, det-identical={}",
            cell.name,
            cell.off.conflicts,
            cell.on.conflicts,
            -cell.conflict_reduction_pct,
            cell.off.wall_us as f64 / 1e6,
            cell.on.wall_us as f64 / 1e6,
            -cell.wall_reduction_pct,
            cell.validated,
            cell.no_prediction,
            cell.unknown,
            cell.deterministic_identical,
        );
        assert!(
            cell.deterministic_identical,
            "{}: deterministic report half changed when preprocessing was toggled",
            cell.name
        );
        if let Some(pin) = cell.pinned_max_conflict_increase_pct {
            let increase = -cell.conflict_reduction_pct;
            assert!(
                increase <= pin,
                "{}: preprocessing now costs {increase:+.1}% conflicts, past the \
                 pinned {pin:+.1}% regression band — the known trajectory got worse",
                cell.name
            );
        }
    }
    eprintln!("bench_preprocess: wrote {out}");
}

fn measure(
    name: &str,
    campaign: &Campaign,
    matrix: String,
    workers: usize,
    iterations: usize,
    pinned_max_conflict_increase_pct: Option<f64>,
) -> Cell {
    let options = |preprocess: bool| CampaignOptions {
        workers,
        preprocess,
        ..CampaignOptions::default()
    };

    // One instrumented run per mode collects the (deterministic) solver-work
    // counters and the report used for the outcome columns and the
    // byte-identity check.
    let mut modes = Vec::new();
    let mut det_halves = Vec::new();
    let mut outcome_counts = (0, 0, 0);
    for preprocess in [false, true] {
        let registry = Registry::new();
        let report = campaign.run_observed(&options(preprocess), &registry.obs());
        let snapshot = registry.snapshot();
        let counter = |name: &str| snapshot.counter(name);
        modes.push(Mode {
            wall_us: u64::MAX, // filled in from the timing iterations below
            conflicts: counter("solver.conflicts"),
            propagations: counter("solver.propagations"),
            decisions: counter("solver.decisions"),
            pp_eliminated: counter("pp.eliminated"),
            pp_subsumed: counter("pp.subsumed"),
            pp_fixed: counter("pp.fixed"),
        });
        det_halves.push(report.deterministic_json());
        outcome_counts = (
            report.summary.validated,
            report.summary.no_prediction,
            report.summary.unknown,
        );
    }

    // Interleaved, uninstrumented timing iterations; keep the minimum.
    for _ in 0..iterations {
        for (mode, preprocess) in modes.iter_mut().zip([false, true]) {
            let report = campaign.run(&options(preprocess));
            mode.wall_us = mode.wall_us.min(report.timing.wall_us);
        }
    }

    let off = &modes[0];
    let on = &modes[1];
    let reduction = |off: u64, on: u64| {
        if off == 0 {
            0.0
        } else {
            (off as f64 - on as f64) / off as f64 * 100.0
        }
    };
    Cell {
        name: name.to_string(),
        matrix,
        experiments: campaign.experiments(),
        validated: outcome_counts.0,
        no_prediction: outcome_counts.1,
        unknown: outcome_counts.2,
        conflict_reduction_pct: reduction(off.conflicts, on.conflicts),
        wall_reduction_pct: reduction(off.wall_us, on.wall_us),
        deterministic_identical: det_halves[0] == det_halves[1],
        pinned_max_conflict_increase_pct,
        off: modes.remove(0),
        on: modes.remove(0),
    }
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
