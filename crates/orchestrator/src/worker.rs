//! The work-stealing worker pool behind campaign execution.
//!
//! Tasks are indexed up front; workers repeatedly steal the next unclaimed
//! index from a shared atomic cursor (a single-queue work-stealing scheme:
//! whichever worker goes idle first takes the next task, so long solver
//! calls never leave the other workers starved behind a static partition).
//! Results are written back into a slot per task index, which makes the
//! output order — and therefore every report derived from it — independent
//! of the worker count and of scheduling jitter.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;

/// A fixed-size pool of scoped worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool with `workers` threads (clamped to at least one).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the machine's available parallelism.
    #[must_use]
    pub fn auto() -> Self {
        WorkerPool::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `task` over every item, in parallel, returning results in item
    /// order regardless of how the work interleaved across workers.
    ///
    /// With a single worker (or a single item) the tasks run on the calling
    /// thread, so `WorkerPool::new(1).run(..)` is *exactly* the sequential
    /// execution — campaigns use that as their speedup baseline.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `task` (scoped threads join on
    /// scope exit).
    pub fn run<T, R, F>(&self, items: &[T], task: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.workers == 1 || items.len() <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(index, item)| task(index, item))
                .collect();
        }

        let cursor = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(items.len()) {
                scope.spawn(|| {
                    // Fail fast: if any worker panics mid-task, the others
                    // stop stealing instead of draining a queue whose output
                    // is already doomed (the scope re-raises the panic).
                    let guard = AbortOnPanic(&abort);
                    while !abort.load(Ordering::Relaxed) {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(index) else { break };
                        let result = task(index, item);
                        *slots[index].lock() = Some(result);
                    }
                    drop(guard);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every task ran"))
            .collect()
    }
}

/// Sets the abort flag if dropped while its thread is unwinding.
struct AbortOnPanic<'a>(&'a AtomicBool);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<u64> = (0..64).collect();
        for workers in [1, 2, 8] {
            let pool = WorkerPool::new(workers);
            let doubled = pool.run(&items, |_, &x| x * 2);
            assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn uneven_tasks_balance_across_workers() {
        // Tasks with wildly different costs: correctness (not timing) check
        // that every result lands in the right slot.
        let items: Vec<u64> = (0..32).collect();
        let pool = WorkerPool::new(4);
        let results = pool.run(&items, |index, &x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            index as u64 + x
        });
        assert_eq!(results, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn a_panicking_task_propagates_and_stops_the_pool() {
        let items: Vec<u64> = (0..256).collect();
        let pool = WorkerPool::new(4);
        let _ = pool.run(&items, |_, &x| {
            if x == 3 {
                panic!("solver invariant");
            }
            x
        });
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).workers(), 1);
        assert!(WorkerPool::auto().workers() >= 1);
    }

    #[test]
    fn empty_and_singleton_inputs_run_inline() {
        let pool = WorkerPool::new(8);
        let none: Vec<u8> = pool.run(&[], |_, &x: &u8| x);
        assert!(none.is_empty());
        assert_eq!(pool.run(&[5u8], |_, &x| x + 1), vec![6]);
    }
}
