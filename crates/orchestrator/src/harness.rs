//! End-to-end record → predict → validate pipeline for one benchmark run.

use std::time::Duration;

use isopredict::{
    validate, IsolationLevel, PredictionOutcome, Predictor, PredictorConfig, Strategy,
};
use isopredict_corpus::Corpus;
use isopredict_obs::Obs;
use isopredict_smt::EncodingStats;
use isopredict_store::StoreMode;
use isopredict_workloads::{run, Benchmark, RunOutput, Schedule, WorkloadConfig};

use crate::campaign::observe_cell;

/// How one experiment run ended, mirroring the columns of Tables 4 and 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentOutcome {
    /// A prediction was found and the validating execution was unserializable.
    Validated,
    /// A prediction was found but the validating execution was serializable
    /// (a false prediction).
    FailedValidation,
    /// The solver proved that no prediction exists ("Unsat").
    NoPrediction,
    /// The solver budget was exhausted ("T/O" / "Unk").
    Unknown,
}

/// The measurements of one record → predict → validate run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The benchmark that was run.
    pub benchmark: Benchmark,
    /// The seed of the observed execution.
    pub seed: u64,
    /// The prediction strategy.
    pub strategy: Strategy,
    /// The target isolation level.
    pub isolation: IsolationLevel,
    /// How the run ended.
    pub outcome: ExperimentOutcome,
    /// Whether the validating execution diverged from the prediction.
    pub diverged: bool,
    /// Encoding statistics (the "# Literals" column).
    pub stats: EncodingStats,
    /// Constraint generation time.
    pub constraint_gen_time: Duration,
    /// Solving time.
    pub solving_time: Duration,
    /// Characteristics of the observed execution (for Table 3).
    pub observed: isopredict_workloads::WorkloadCharacteristics,
    /// `"recorded"` when the observed execution was recorded by this run,
    /// `"corpus"` when it was loaded from a trace corpus.
    pub trace_source: &'static str,
}

/// Records an observed (serializable) execution of `benchmark`.
#[must_use]
pub fn record_observed(benchmark: Benchmark, config: &WorkloadConfig) -> RunOutput {
    run(
        benchmark,
        config,
        StoreMode::SerializableRecord,
        &Schedule::RoundRobin,
    )
}

/// Runs the full pipeline — record an observed execution, predict, validate —
/// for one benchmark, seed, strategy and isolation level.
#[must_use]
pub fn run_experiment(
    benchmark: Benchmark,
    config: &WorkloadConfig,
    strategy: Strategy,
    isolation: IsolationLevel,
    conflict_budget: Option<u64>,
) -> ExperimentResult {
    run_experiment_in(
        benchmark,
        config,
        strategy,
        isolation,
        conflict_budget,
        None,
    )
}

/// Like [`run_experiment`], but record-or-load: with a corpus, an observed
/// execution already on disk is loaded (skipping the record phase) and a
/// fresh recording is persisted for next time.
///
/// Either way the analysis runs on the history rebuilt from the canonical
/// trace, so the result is identical whether the trace was recorded this run
/// or loaded from disk.
#[must_use]
pub fn run_experiment_in(
    benchmark: Benchmark,
    config: &WorkloadConfig,
    strategy: Strategy,
    isolation: IsolationLevel,
    conflict_budget: Option<u64>,
    corpus: Option<&Corpus>,
) -> ExperimentResult {
    run_experiment_observed(
        benchmark,
        config,
        strategy,
        isolation,
        conflict_budget,
        corpus,
        &Obs::off(),
    )
}

/// Like [`run_experiment_in`], reporting telemetry through `obs`: `record`,
/// `predict` (nesting the predictor's `encode`/`solve` spans) and `validate`
/// phase spans, the latter labelled with the experiment outcome.
#[must_use]
pub fn run_experiment_observed(
    benchmark: Benchmark,
    config: &WorkloadConfig,
    strategy: Strategy,
    isolation: IsolationLevel,
    conflict_budget: Option<u64>,
    corpus: Option<&Corpus>,
    obs: &Obs,
) -> ExperimentResult {
    let observed = {
        let _record = obs.span("record");
        observe_cell(benchmark, config, corpus)
    };
    let trace_source = observed.source.name();
    let observed_history = observed.loaded.history;
    let committed_indices = observed.loaded.committed_indices;
    let observed_chars = isopredict_workloads::WorkloadCharacteristics::of(&observed_history);

    let predictor = Predictor::new(PredictorConfig {
        strategy,
        isolation,
        conflict_budget,
        ..PredictorConfig::default()
    });
    let predict_span = obs.span("predict");
    let outcome = predictor.predict_obs(&observed_history, predict_span.obs());
    predict_span.finish();

    let validate_span = obs.span("validate");
    let (experiment_outcome, diverged, stats, gen_time, solve_time) = match outcome {
        PredictionOutcome::NoPrediction { .. } => (
            ExperimentOutcome::NoPrediction,
            false,
            EncodingStats::default(),
            Duration::ZERO,
            Duration::ZERO,
        ),
        PredictionOutcome::Unknown { .. } => (
            ExperimentOutcome::Unknown,
            false,
            EncodingStats::default(),
            Duration::ZERO,
            Duration::ZERO,
        ),
        PredictionOutcome::Prediction(prediction) => {
            let plan = validate::plan_validation(&prediction, &committed_indices);
            let validating_run = run(
                benchmark,
                config,
                StoreMode::Controlled {
                    level: isolation,
                    script: plan.script.clone(),
                },
                &Schedule::Explicit(plan.schedule.clone()),
            );
            let assessment = validate::assess(&validating_run.history, &validating_run.divergences);
            let outcome = if assessment.validated {
                ExperimentOutcome::Validated
            } else {
                ExperimentOutcome::FailedValidation
            };
            (
                outcome,
                assessment.diverged,
                prediction.stats,
                prediction.constraint_gen_time,
                prediction.solving_time,
            )
        }
    };
    validate_span.label("outcome", crate::report::outcome_name(&experiment_outcome));
    validate_span.finish();

    ExperimentResult {
        benchmark,
        seed: config.seed,
        strategy,
        isolation,
        outcome: experiment_outcome,
        diverged,
        stats,
        constraint_gen_time: gen_time,
        solving_time: solve_time,
        observed: observed_chars,
        trace_source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallbank_pipeline_produces_a_validated_prediction_under_rc() {
        // Under read committed, Smallbank predictions exist for essentially
        // every seed (Table 5); pick one seed and run the whole pipeline.
        let config = WorkloadConfig::small(0);
        let result = run_experiment(
            Benchmark::Smallbank,
            &config,
            Strategy::ApproxRelaxed,
            IsolationLevel::ReadCommitted,
            Some(2_000_000),
        );
        assert!(
            matches!(
                result.outcome,
                ExperimentOutcome::Validated | ExperimentOutcome::FailedValidation
            ),
            "expected a prediction, got {:?}",
            result.outcome
        );
        assert!(result.stats.literals > 0);
    }

    #[test]
    fn voter_has_no_causal_prediction() {
        // A shortened workload keeps the unsatisfiability proof cheap in
        // debug builds; the full-size configuration is exercised by the
        // release-mode table4_5 binary.
        let config = WorkloadConfig {
            txns_per_session: 2,
            ..WorkloadConfig::small(1)
        };
        let result = run_experiment(
            Benchmark::Voter,
            &config,
            Strategy::ApproxRelaxed,
            IsolationLevel::Causal,
            Some(2_000_000),
        );
        assert_eq!(result.outcome, ExperimentOutcome::NoPrediction);
    }
}
