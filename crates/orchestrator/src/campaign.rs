//! Declarative analysis campaigns over the benchmarks × seeds × strategies ×
//! isolation levels matrix.
//!
//! A [`Campaign`] names *what* to analyze; [`Campaign::run`] decides *how*:
//!
//! 1. **Record or load** — each unique (benchmark, seed) cell is recorded
//!    once (serializable observed execution) and its [`ShardPlan`] computed,
//!    in parallel. With a corpus configured
//!    ([`CampaignOptions::corpus`]), cells already on disk are *loaded*
//!    instead — the record phase is skipped for them and the report's
//!    provenance says `trace_source: corpus` with the time saved. Either
//!    way the analysis runs on the history rebuilt from the *canonical
//!    trace*, so verdicts are byte-identical whether a trace was just
//!    recorded or loaded from a corpus written weeks ago;
//! 2. **Predict** — the matrix expands into one task per (observation,
//!    strategy, isolation, shard unit); the worker pool drains the task queue,
//!    each task running the component-restricted (or whole-history) predictor
//!    with the campaign's per-task solver budget;
//! 3. **Merge + validate** — per experiment, shard verdicts merge into a
//!    whole-history verdict; predictions are embedded and validated by
//!    replaying the application with the store steered toward the predicted
//!    writers.
//!
//! Every phase writes results by task index, so the resulting
//! [`CampaignReport`] is deterministic: for a fixed campaign specification
//! the deterministic half of the report is byte-identical no matter how many
//! workers execute it (see `tests/campaign_determinism.rs`).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use isopredict::{validate, PredictionOutcome, Predictor, PredictorConfig, Strategy};
use isopredict_corpus::{hash::sha256_hex, Corpus, LoadedTrace};
use isopredict_history::History;
use isopredict_obs::{MetricsSection, Obs};
use isopredict_store::{IsolationLevel, StoreMode};
use isopredict_workloads::{run, Benchmark, Schedule, WorkloadConfig, WorkloadSize};

use crate::harness::{record_observed, ExperimentOutcome};
use crate::merge::merge_outcomes;
use crate::report::{
    outcome_name, CampaignReport, CampaignSummary, CampaignTiming, PostmortemRecord,
    ProvenanceRecord, TaskRecord,
};
use crate::shard::{ShardPlan, ShardPolicy, ShardUnit};
use crate::worker::WorkerPool;

/// Runtime options of a campaign: parallelism, budgets, sharding.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOptions {
    /// Worker threads (1 = the sequential baseline).
    pub workers: usize,
    /// Per-experiment solver conflict budget. Sharded experiments split it
    /// across their shard tasks proportionally to component size (see
    /// [`ShardPlan::unit_budgets`]), so a sharded run never spends more
    /// budget than the whole-history run it replaces; exhausting a share
    /// makes that task `Unknown`.
    pub conflict_budget: Option<u64>,
    /// When to shard observed histories.
    pub shard_policy: ShardPolicy,
    /// Trace corpus directory for record-or-load: cells found in the corpus
    /// skip the record phase; cells that are not are recorded once and
    /// persisted for the next run. `None` records every cell in memory, as
    /// before.
    pub corpus: Option<PathBuf>,
    /// Run the SAT core's static preprocessing pipeline before each solver
    /// call (see [`PredictorConfig::preprocess`]). On by default; the
    /// campaign CLI's `--no-preprocess` turns it off for A/B comparisons.
    pub preprocess: bool,
    /// Solver heartbeat interval in conflicts (0 disables). Heartbeats are
    /// schema-v2 obs stream events plus the bounded ring retained for
    /// `unknown` post-mortems; they never touch the deterministic report
    /// half (see [`PredictorConfig::heartbeat_every`]).
    pub heartbeat_every: u64,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            workers: WorkerPool::auto().workers(),
            conflict_budget: Some(2_000_000),
            shard_policy: ShardPolicy::default(),
            corpus: None,
            preprocess: true,
            heartbeat_every: 10_000,
        }
    }
}

/// A declarative benchmarks × seeds × strategies × isolation levels matrix.
#[derive(Debug, Clone)]
pub struct Campaign {
    benchmarks: Vec<Benchmark>,
    seeds: Vec<u64>,
    strategies: Vec<Strategy>,
    isolations: Vec<IsolationLevel>,
    size: WorkloadSize,
    txns_per_session: Option<usize>,
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign::new()
    }
}

impl Campaign {
    /// A small default matrix: Smallbank + Voter + Overdraft (the write-skew
    /// scenario), three seeds, Approx-Relaxed, every supported isolation
    /// level (causal, read committed, snapshot isolation).
    #[must_use]
    pub fn new() -> Campaign {
        Campaign {
            benchmarks: vec![Benchmark::Smallbank, Benchmark::Voter, Benchmark::Overdraft],
            seeds: vec![0, 1, 2],
            strategies: vec![Strategy::ApproxRelaxed],
            isolations: IsolationLevel::ALL.to_vec(),
            size: WorkloadSize::Small,
            txns_per_session: None,
        }
    }

    /// The paper's full Table 4/5 matrix: all benchmarks, ten seeds, all
    /// strategies, both isolation levels.
    #[must_use]
    pub fn paper_matrix() -> Campaign {
        Campaign {
            benchmarks: Benchmark::all().to_vec(),
            seeds: (0..10).collect(),
            strategies: Strategy::all().to_vec(),
            isolations: vec![IsolationLevel::Causal, IsolationLevel::ReadCommitted],
            size: WorkloadSize::Small,
            txns_per_session: None,
        }
    }

    /// Replaces the benchmark set.
    #[must_use]
    pub fn benchmarks(mut self, benchmarks: impl IntoIterator<Item = Benchmark>) -> Self {
        self.benchmarks = benchmarks.into_iter().collect();
        self
    }

    /// Replaces the seed set.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Replaces the strategy set.
    #[must_use]
    pub fn strategies(mut self, strategies: impl IntoIterator<Item = Strategy>) -> Self {
        self.strategies = strategies.into_iter().collect();
        self
    }

    /// Replaces the isolation-level set.
    #[must_use]
    pub fn isolations(mut self, isolations: impl IntoIterator<Item = IsolationLevel>) -> Self {
        self.isolations = isolations.into_iter().collect();
        self
    }

    /// Selects the paper's small or large workload size.
    #[must_use]
    pub fn size(mut self, size: WorkloadSize) -> Self {
        self.size = size;
        self
    }

    /// Overrides transactions per session (shrinks debug-build test time).
    #[must_use]
    pub fn txns_per_session(mut self, txns: usize) -> Self {
        self.txns_per_session = Some(txns);
        self
    }

    /// Number of experiments in the matrix.
    #[must_use]
    pub fn experiments(&self) -> usize {
        self.benchmarks.len() * self.seeds.len() * self.strategies.len() * self.isolations.len()
    }

    fn config_for(&self, seed: u64) -> WorkloadConfig {
        let mut config = match self.size {
            WorkloadSize::Small => WorkloadConfig::small(seed),
            WorkloadSize::Large => WorkloadConfig::large(seed),
        };
        if let Some(txns) = self.txns_per_session {
            config.txns_per_session = txns;
        }
        config
    }

    /// Executes the campaign on `options.workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if the campaign matrix is empty along any dimension.
    #[must_use]
    pub fn run(&self, options: &CampaignOptions) -> CampaignReport {
        self.run_observed(options, &Obs::off())
    }

    /// Like [`Campaign::run`], reporting telemetry through `obs`: a
    /// `campaign` root span with `record`/`predict`/`validate` phase
    /// children, per-cell `cell` spans (with a `connectivity` child), one
    /// span per analysis unit (named `whole` / `shard-N`, nesting the
    /// predictor's `encode` and `solve` spans), per-experiment `experiment`
    /// spans labelled with their outcome, and the predictor's and corpus's
    /// counters. The aggregated [`MetricsSection`] lands in the report's
    /// non-deterministic half; the deterministic half is byte-identical
    /// whether telemetry is collected or not.
    ///
    /// # Panics
    ///
    /// Panics if the campaign matrix is empty along any dimension.
    #[must_use]
    pub fn run_observed(&self, options: &CampaignOptions, obs: &Obs) -> CampaignReport {
        assert!(
            self.experiments() > 0,
            "campaign matrix is empty along some dimension"
        );
        let pool = WorkerPool::new(options.workers);
        let campaign_span = obs.span("campaign");
        let campaign_obs = campaign_span.obs();
        campaign_obs.gauge("workers", pool.workers() as u64);
        let campaign_start = Instant::now();
        let corpus: Option<Corpus> = options.corpus.as_ref().map(|dir| {
            let mut corpus = Corpus::open(dir)
                .unwrap_or_else(|error| panic!("cannot open corpus at {}: {error}", dir.display()));
            corpus.set_obs(campaign_obs.clone());
            corpus
        });

        // Phase 1 — record-or-load one observed execution per (benchmark,
        // seed). Both paths analyze the history rebuilt from the canonical
        // trace, so a corpus hit changes nothing but the time spent.
        let record_start = Instant::now();
        let record_span = campaign_obs.span("record");
        let cells: Vec<(Benchmark, u64)> = self
            .benchmarks
            .iter()
            .flat_map(|&benchmark| self.seeds.iter().map(move |&seed| (benchmark, seed)))
            .collect();
        let observations: Vec<Observation> = pool.run(&cells, |_, &(benchmark, seed)| {
            let seed_label = seed.to_string();
            let cell_span = record_span.obs().span_with(
                "cell",
                &[("benchmark", benchmark.name()), ("seed", &seed_label)],
            );
            let busy = Instant::now();
            let config = self.config_for(seed);
            let observed = observe_cell(benchmark, &config, corpus.as_ref());
            let plan = {
                let _connectivity = cell_span.obs().span("connectivity");
                ShardPlan::new(&observed.loaded.history, options.shard_policy)
            };
            // Provenance always reports a content address, even corpus-less.
            let trace_hash = observed.hash();
            Observation {
                benchmark,
                seed,
                config,
                history: observed.loaded.history,
                committed_indices: observed.loaded.committed_indices,
                source: observed.source,
                trace_hash,
                record_us: observed.record_us,
                plan,
                busy: busy.elapsed(),
            }
        });
        record_span.finish();
        let record_wall = record_start.elapsed();

        // Phase 2 — one prediction task per (observation, strategy,
        // isolation, shard unit), expanded in deterministic matrix order.
        let predict_start = Instant::now();
        let predict_span = campaign_obs.span("predict");
        let mut unit_tasks: Vec<UnitTask> = Vec::new();
        for (observation_index, observation) in observations.iter().enumerate() {
            let budgets = observation.plan.unit_budgets(options.conflict_budget);
            for &strategy in &self.strategies {
                for &isolation in &self.isolations {
                    for (unit_index, &conflict_budget) in budgets.iter().enumerate() {
                        unit_tasks.push(UnitTask {
                            observation: observation_index,
                            strategy,
                            isolation,
                            unit: unit_index,
                            conflict_budget,
                        });
                    }
                }
            }
        }
        let unit_results: Vec<(PredictionOutcome, Duration)> = pool.run(&unit_tasks, |_, task| {
            let busy = Instant::now();
            let observation = &observations[task.observation];
            let unit = &observation.plan.units[task.unit];
            let seed_label = observation.seed.to_string();
            let isolation_label = task.isolation.to_string();
            let unit_span = predict_span.obs().span_with(
                &unit.label(),
                &[
                    ("benchmark", observation.benchmark.name()),
                    ("seed", &seed_label),
                    ("strategy", task.strategy.name()),
                    ("isolation", &isolation_label),
                ],
            );
            let predictor = Predictor::new(PredictorConfig {
                strategy: task.strategy,
                isolation: task.isolation,
                conflict_budget: task.conflict_budget,
                preprocess: options.preprocess,
                heartbeat_every: options.heartbeat_every,
                ..PredictorConfig::default()
            });
            let outcome = match unit {
                ShardUnit::Whole => predictor.predict_obs(&observation.history, unit_span.obs()),
                ShardUnit::Component { txns, .. } => {
                    predictor.predict_restricted_obs(&observation.history, txns, unit_span.obs())
                }
            };
            (outcome, busy.elapsed())
        });
        predict_span.finish();
        let predict_wall = predict_start.elapsed();

        // Phase 3 — merge shard verdicts per experiment and validate
        // predictions by steered replay.
        let validate_start = Instant::now();
        let validate_span = campaign_obs.span("validate");
        let mut experiments: Vec<ExperimentInput> = Vec::new();
        {
            let mut cursor = 0usize;
            for (observation_index, observation) in observations.iter().enumerate() {
                for &strategy in &self.strategies {
                    for &isolation in &self.isolations {
                        let units = observation.plan.units.len();
                        experiments.push(ExperimentInput {
                            observation: observation_index,
                            strategy,
                            isolation,
                            unit_range: (cursor, cursor + units),
                        });
                        cursor += units;
                    }
                }
            }
            debug_assert_eq!(cursor, unit_results.len());
        }
        let experiment_results: Vec<(TaskRecord, Duration)> =
            pool.run(&experiments, |_, experiment| {
                let busy = Instant::now();
                let observation = &observations[experiment.observation];
                let seed_label = observation.seed.to_string();
                let isolation_label = experiment.isolation.to_string();
                let experiment_span = validate_span.obs().span_with(
                    "experiment",
                    &[
                        ("benchmark", observation.benchmark.name()),
                        ("seed", &seed_label),
                        ("strategy", experiment.strategy.name()),
                        ("isolation", &isolation_label),
                    ],
                );
                let (lo, hi) = experiment.unit_range;
                let outcomes: Vec<&PredictionOutcome> =
                    unit_results[lo..hi].iter().map(|(o, _)| o).collect();
                let record = finish_experiment(experiment, observation, &outcomes);
                experiment_span.label("outcome", &record.outcome);
                (record, busy.elapsed())
            });
        validate_span.finish();
        let validate_wall = validate_start.elapsed();

        // Aggregate.
        let wall = campaign_start.elapsed();
        let cpu: Duration = observations.iter().map(|o| o.busy).sum::<Duration>()
            + unit_results.iter().map(|(_, d)| *d).sum::<Duration>()
            + experiment_results.iter().map(|(_, d)| *d).sum::<Duration>();
        let tasks: Vec<TaskRecord> = experiment_results
            .into_iter()
            .map(|(record, _)| record)
            .collect();
        let summary = CampaignSummary::from_tasks(&tasks);
        // Flight-recorder post-mortems: one per budget-exhausted analysis
        // unit, in deterministic matrix order (unit_tasks order). The
        // records themselves are diagnostic (heartbeat ring, attribution)
        // and live in the non-deterministic report half.
        let postmortems: Vec<PostmortemRecord> = unit_tasks
            .iter()
            .zip(&unit_results)
            .filter_map(|(task, (outcome, _))| {
                outcome.postmortem().map(|pm| {
                    let observation = &observations[task.observation];
                    PostmortemRecord::new(
                        observation.benchmark.name(),
                        observation.seed,
                        task.strategy.name(),
                        &task.isolation.to_string(),
                        &observation.plan.units[task.unit].label(),
                        pm,
                    )
                })
            })
            .collect();
        let provenance: Vec<ProvenanceRecord> = observations
            .iter()
            .map(|observation| ProvenanceRecord {
                benchmark: observation.benchmark.name().to_string(),
                seed: observation.seed,
                trace_source: observation.source.name().to_string(),
                trace_hash: observation.trace_hash.clone(),
                record_us: observation.record_us,
            })
            .collect();
        let corpus_hits = observations
            .iter()
            .filter(|o| o.source == TraceSource::Corpus)
            .count();
        let record_saved_us = observations
            .iter()
            .filter(|o| o.source == TraceSource::Corpus)
            .map(|o| o.record_us)
            .sum();
        let wall_us = wall.as_micros().max(1) as u64;
        let timing = CampaignTiming {
            workers: pool.workers(),
            wall_us,
            cpu_us: cpu.as_micros() as u64,
            record_us: record_wall.as_micros() as u64,
            corpus_hits,
            corpus_misses: observations.len() - corpus_hits,
            record_saved_us,
            predict_us: predict_wall.as_micros() as u64,
            validate_us: validate_wall.as_micros() as u64,
            units_per_sec: unit_tasks.len() as f64 / (wall_us as f64 / 1e6),
            speedup_estimate: cpu.as_micros() as f64 / wall_us as f64,
        };
        let root_id = campaign_span.id();
        campaign_span.finish();
        let metrics = match (root_id, obs.snapshot()) {
            (Some(root), Some(snapshot)) => Some(MetricsSection::for_span(&snapshot, root)),
            _ => None,
        };
        CampaignReport {
            tasks,
            summary,
            provenance,
            timing,
            metrics,
            postmortems,
        }
    }
}

/// Where an observed cell's trace came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TraceSource {
    /// The record phase ran for this cell.
    Recorded,
    /// The trace was loaded from the corpus; the record phase was skipped.
    Corpus,
}

impl TraceSource {
    pub(crate) fn name(self) -> &'static str {
        match self {
            TraceSource::Recorded => "recorded",
            TraceSource::Corpus => "corpus",
        }
    }
}

/// An observed cell resolved to its canonical analysis form.
pub(crate) struct ObservedCell {
    pub(crate) loaded: LoadedTrace,
    pub(crate) source: TraceSource,
    /// Content address, when a corpus was involved (`None` for corpus-less
    /// recordings — callers needing one hash the canonical trace themselves,
    /// so corpus-less experiment runners never pay for an unused digest).
    pub(crate) trace_hash: Option<String>,
    /// Recording cost paid (when recorded) or saved (when loaded).
    pub(crate) record_us: u64,
}

impl ObservedCell {
    /// The cell's content address, computing it from the canonical trace
    /// bytes when no corpus supplied one.
    pub(crate) fn hash(&self) -> String {
        self.trace_hash
            .clone()
            .unwrap_or_else(|| sha256_hex(self.loaded.trace.to_canonical_json().as_bytes()))
    }
}

/// Record-or-load for one (benchmark, config) cell. On a corpus miss the
/// freshly recorded trace is persisted so the *next* run hits.
///
/// # Panics
///
/// Panics when the corpus rejects the cell (corrupt object, key conflict) —
/// campaign runs treat corpus failures as fatal configuration errors rather
/// than silently re-recording, so drift never goes unnoticed.
pub(crate) fn observe_cell(
    benchmark: Benchmark,
    config: &WorkloadConfig,
    corpus: Option<&Corpus>,
) -> ObservedCell {
    if let Some(corpus) = corpus {
        let hit = corpus
            .load_observed(benchmark.name(), config)
            .unwrap_or_else(|error| {
                panic!(
                    "corpus entry for {} seed {}: {error}",
                    benchmark, config.seed
                )
            });
        if let Some((entry, loaded)) = hit {
            return ObservedCell {
                loaded,
                source: TraceSource::Corpus,
                trace_hash: Some(entry.hash),
                record_us: entry.record_us,
            };
        }
    }
    let record_start = Instant::now();
    let run = record_observed(benchmark, config);
    let record_us = record_start.elapsed().as_micros() as u64;
    let trace = run.trace();
    let trace_hash = corpus.map(|corpus| {
        corpus
            .store(&trace, record_us)
            .unwrap_or_else(|error| {
                panic!("persisting {} seed {}: {error}", benchmark, config.seed)
            })
            .hash
    });
    let loaded = LoadedTrace::new(trace).expect("recorder traces are valid histories");
    ObservedCell {
        loaded,
        source: TraceSource::Recorded,
        trace_hash,
        record_us,
    }
}

/// A recorded-or-loaded (benchmark, seed) cell with its shard plan.
struct Observation {
    benchmark: Benchmark,
    seed: u64,
    config: WorkloadConfig,
    /// The canonical history (rebuilt from the trace) every analysis runs on.
    history: History,
    /// Per session, plan indices of committed transactions (for validation).
    committed_indices: Vec<Vec<usize>>,
    source: TraceSource,
    trace_hash: String,
    record_us: u64,
    plan: ShardPlan,
    busy: Duration,
}

/// One prediction task of the expanded matrix.
struct UnitTask {
    observation: usize,
    strategy: Strategy,
    isolation: IsolationLevel,
    unit: usize,
    /// This unit's share of the experiment's solver budget.
    conflict_budget: Option<u64>,
}

/// One experiment: the slice of unit tasks to merge plus its coordinates.
struct ExperimentInput {
    observation: usize,
    strategy: Strategy,
    isolation: IsolationLevel,
    unit_range: (usize, usize),
}

/// Merges an experiment's shard verdicts and validates any prediction.
fn finish_experiment(
    experiment: &ExperimentInput,
    observation: &Observation,
    outcomes: &[&PredictionOutcome],
) -> TaskRecord {
    let plan = &observation.plan;
    let merged = merge_outcomes(&observation.history, outcomes, plan.sharded);

    let (outcome, diverged, changed_reads) = match &merged.outcome {
        PredictionOutcome::NoPrediction { .. } => (ExperimentOutcome::NoPrediction, false, 0),
        PredictionOutcome::Unknown { .. } => (ExperimentOutcome::Unknown, false, 0),
        PredictionOutcome::Prediction(prediction) => {
            let validation_plan =
                validate::plan_validation(prediction, &observation.committed_indices);
            let validating_run = run(
                observation.benchmark,
                &observation.config,
                StoreMode::Controlled {
                    level: experiment.isolation,
                    script: validation_plan.script.clone(),
                },
                &Schedule::Explicit(validation_plan.schedule.clone()),
            );
            let assessment = validate::assess(&validating_run.history, &validating_run.divergences);
            let outcome = if assessment.validated {
                ExperimentOutcome::Validated
            } else {
                ExperimentOutcome::FailedValidation
            };
            (outcome, assessment.diverged, prediction.changed_reads.len())
        }
    };

    TaskRecord {
        benchmark: observation.benchmark.name().to_string(),
        seed: observation.seed,
        strategy: experiment.strategy.name().to_string(),
        isolation: experiment.isolation.to_string(),
        components: plan.components.len(),
        dominant_fraction: plan.components.dominant_fraction(),
        sharded: plan.sharded,
        units: plan.units.len(),
        predicting_unit: merged.predicting_unit,
        predicting_unit_label: merged
            .predicting_unit
            .map(|index| plan.units[index].label()),
        outcome: outcome_name(&outcome).to_string(),
        diverged,
        changed_reads,
        literals: merged.stats.literals,
        observed_txns: observation.history.committed_transactions().count(),
        observed_reads: observation.history.num_reads(),
        observed_writes: observation.history.num_writes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> Campaign {
        Campaign::new()
            .benchmarks([Benchmark::Smallbank])
            .seeds([0])
            .strategies([Strategy::ApproxRelaxed])
            .isolations([IsolationLevel::ReadCommitted])
            .txns_per_session(2)
    }

    #[test]
    fn campaign_produces_one_record_per_matrix_cell() {
        let campaign = tiny_campaign();
        assert_eq!(campaign.experiments(), 1);
        let report = campaign.run(&CampaignOptions {
            workers: 2,
            ..CampaignOptions::default()
        });
        assert_eq!(report.tasks.len(), 1);
        let task = &report.tasks[0];
        assert_eq!(task.benchmark, "Smallbank");
        assert_eq!(task.strategy, "Approx-Relaxed");
        assert_eq!(task.isolation, "read committed");
        assert!(task.observed_txns > 0);
        assert_eq!(report.summary.experiments, 1);
        assert!(report.timing.wall_us > 0);
    }

    #[test]
    fn snapshot_isolation_rows_run_end_to_end() {
        // An SI row of the matrix must make it all the way through record →
        // predict (SI axioms) → merge → controlled-replay validation, and
        // report itself under the seam's canonical name. Overdraft seed 0 is
        // a known write-skew cell: the steered replay reproduces an
        // unserializable SI execution, so the row must come back *validated*.
        // (The replay may legitimately record divergences: the relaxed
        // boundary can cut a transaction before a write whose declared
        // conflict makes a predicted stale read unrealizable — the store then
        // falls back to an SI-legal writer, exactly the paper's
        // false-prediction backstop.)
        let campaign = Campaign::new()
            .benchmarks([Benchmark::Overdraft])
            .seeds([0])
            .strategies([Strategy::ApproxRelaxed])
            .isolations([IsolationLevel::Snapshot])
            .txns_per_session(2);
        let report = campaign.run(&CampaignOptions {
            workers: 1,
            ..CampaignOptions::default()
        });
        assert_eq!(report.tasks.len(), 1);
        let task = &report.tasks[0];
        assert_eq!(task.isolation, "snapshot isolation");
        assert_eq!(task.outcome, "validated");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_matrix_is_rejected() {
        let _ = Campaign::new()
            .benchmarks([])
            .run(&CampaignOptions::default());
    }
}
