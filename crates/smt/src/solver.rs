//! The public SMT solver façade.

use std::collections::HashMap;

use isopredict_sat::{
    FamilyAttribution, HeartbeatHook, Lit, PreprocessSummary, SolveOutcome, Solver as SatSolver,
    SolverConfig, SolverPostmortem, SolverStats,
};

use crate::fd::{FdVar, FdVarData};
use crate::order::{topological_positions, OrderNode, OrderTheory};
use crate::stats::EncodingStats;
use crate::term::{Term, TermId, TermPool};

/// Result of an [`SmtSolver::check`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmtResult {
    /// A model exists; query it with [`SmtSolver::model_bool`],
    /// [`SmtSolver::model_fd`] and [`SmtSolver::model_order_positions`].
    Sat,
    /// The asserted formulas are unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted (see [`SmtSolver::set_conflict_budget`]).
    Unknown,
}

/// An incremental SMT solver over boolean, finite-domain and strict-order
/// atoms.
///
/// See the [crate-level documentation](crate) for an overview and example.
pub struct SmtSolver {
    pub(crate) pool: TermPool,
    pub(crate) sat: SatSolver,
    pub(crate) theory: OrderTheory,
    pub(crate) lit_of: HashMap<TermId, Lit>,
    fd_vars: Vec<FdVarData>,
    bool_var_count: u32,
    true_lit: Option<Lit>,
}

impl Default for SmtSolver {
    fn default() -> Self {
        SmtSolver::new()
    }
}

impl std::fmt::Debug for SmtSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmtSolver")
            .field("terms", &self.pool.len())
            .field("fd_vars", &self.fd_vars.len())
            .field("order_nodes", &self.theory.num_nodes())
            .finish()
    }
}

impl SmtSolver {
    /// Creates an empty solver.
    #[must_use]
    pub fn new() -> Self {
        SmtSolver {
            pool: TermPool::new(),
            sat: SatSolver::new(),
            theory: OrderTheory::new(),
            lit_of: HashMap::new(),
            fd_vars: Vec::new(),
            bool_var_count: 0,
            true_lit: None,
        }
    }

    /// Creates a solver with a specific SAT-core configuration (used by the
    /// ablation benchmarks).
    #[must_use]
    pub fn with_sat_config(config: SolverConfig) -> Self {
        let mut solver = SmtSolver::new();
        solver.sat = SatSolver::with_config(config);
        solver
    }

    /// Limits the number of conflicts each [`SmtSolver::check`] call may
    /// spend; exceeding it yields [`SmtResult::Unknown`]. `None` removes the
    /// limit.
    pub fn set_conflict_budget(&mut self, max_conflicts: Option<u64>) {
        self.sat.config_mut().max_conflicts = max_conflicts;
    }

    // ------------------------------------------------------------------
    // Flight recorder passthroughs (see `isopredict_sat::FamilyAttribution`)
    // ------------------------------------------------------------------

    /// Interns a clause-family tag on the underlying SAT core (see
    /// [`SmtSolver::set_clause_family`]).
    pub fn intern_clause_family(&mut self, name: &str) -> u16 {
        self.sat.intern_family(name)
    }

    /// Tags every clause subsequently emitted into the SAT core — including
    /// Tseitin auxiliary clauses and finite-domain cardinality clauses —
    /// with `family`, until changed again. The solver attributes conflicts,
    /// propagations, and learned-clause ancestry per family.
    pub fn set_clause_family(&mut self, family: u16) {
        self.sat.set_emit_family(family);
    }

    /// The interned clause-family names (index = family id).
    #[must_use]
    pub fn clause_families(&self) -> &[String] {
        self.sat.families()
    }

    /// Per-family attribution of SAT-core work accumulated so far.
    #[must_use]
    pub fn attribution(&self) -> &FamilyAttribution {
        self.sat.attribution()
    }

    /// Emits a progress heartbeat every `every` conflicts (`0` disables).
    pub fn set_heartbeat_every(&mut self, every: u64) {
        self.sat.config_mut().heartbeat_every = every;
    }

    /// Installs (or clears) the SAT-core heartbeat callback.
    pub fn set_heartbeat_hook(&mut self, hook: Option<HeartbeatHook>) {
        self.sat.set_heartbeat_hook(hook);
    }

    /// Captures a post-mortem of the most recent [`SmtSolver::check`] call
    /// (most useful after [`SmtResult::Unknown`]).
    #[must_use]
    pub fn solver_postmortem(&self) -> SolverPostmortem {
        self.sat.postmortem()
    }

    /// The literal that is constrained to be true (lazily created).
    pub(crate) fn true_lit(&mut self) -> Lit {
        if let Some(lit) = self.true_lit {
            return lit;
        }
        let lit = Lit::positive(self.sat.new_var());
        self.sat.add_clause([lit]);
        self.true_lit = Some(lit);
        lit
    }

    // ------------------------------------------------------------------
    // Term constructors
    // ------------------------------------------------------------------

    /// The constant true term.
    pub fn true_term(&mut self) -> TermId {
        self.pool.true_id()
    }

    /// The constant false term.
    pub fn false_term(&mut self) -> TermId {
        self.pool.false_id()
    }

    /// Creates a fresh boolean atom. The name is kept for diagnostics only.
    pub fn bool_var(&mut self, name: impl Into<String>) -> TermId {
        let id = self.bool_var_count;
        self.bool_var_count += 1;
        let term = self.pool.intern(Term::BoolVar(id));
        self.pool.set_name(term, name.into());
        let lit = Lit::positive(self.sat.new_var());
        self.lit_of.insert(term, lit);
        term
    }

    /// Creates a finite-domain variable with `domain_size` values
    /// (`0..domain_size`), constrained to take exactly one of them.
    ///
    /// # Panics
    ///
    /// Panics if `domain_size` is zero.
    pub fn fd_var(&mut self, name: impl Into<String>, domain_size: usize) -> FdVar {
        assert!(
            domain_size > 0,
            "finite-domain variable needs a non-empty domain"
        );
        let var = FdVar {
            id: self.fd_vars.len() as u32,
        };
        self.fd_vars.push(FdVarData {
            domain_size,
            name: name.into(),
        });

        // Create the indicator atoms eagerly so the exactly-one constraint can
        // be stated over all of them.
        let indicators: Vec<Lit> = (0..domain_size)
            .map(|value| {
                let term = self.pool.intern(Term::FdEq(var, value as u32));
                let lit = Lit::positive(self.sat.new_var());
                self.lit_of.insert(term, lit);
                lit
            })
            .collect();

        // At least one value.
        self.sat.add_clause(indicators.iter().copied());
        // At most one value: pairwise for small domains, sequential (ladder)
        // encoding for larger ones to keep the clause count linear.
        if domain_size <= 6 {
            for i in 0..domain_size {
                for j in (i + 1)..domain_size {
                    self.sat
                        .add_clause([indicators[i].negate(), indicators[j].negate()]);
                }
            }
        } else {
            let ladders: Vec<Lit> = (0..domain_size - 1)
                .map(|_| Lit::positive(self.sat.new_var()))
                .collect();
            for i in 0..domain_size - 1 {
                // x_i ⇒ s_i
                self.sat.add_clause([indicators[i].negate(), ladders[i]]);
                if i > 0 {
                    // s_{i-1} ⇒ s_i
                    self.sat.add_clause([ladders[i - 1].negate(), ladders[i]]);
                    // x_i ⇒ ¬s_{i-1}
                    self.sat
                        .add_clause([indicators[i].negate(), ladders[i - 1].negate()]);
                }
            }
            // x_{d-1} ⇒ ¬s_{d-2}
            self.sat.add_clause([
                indicators[domain_size - 1].negate(),
                ladders[domain_size - 2].negate(),
            ]);
        }

        var
    }

    /// The atom `var == value` (by domain index).
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the variable's domain.
    pub fn fd_eq(&mut self, var: FdVar, value: usize) -> TermId {
        let data = &self.fd_vars[var.id as usize];
        assert!(
            value < data.domain_size,
            "value {value} outside domain of size {} for finite-domain variable `{}`",
            data.domain_size,
            data.name
        );
        self.pool.intern(Term::FdEq(var, value as u32))
    }

    /// The domain size of a finite-domain variable.
    #[must_use]
    pub fn fd_domain_size(&self, var: FdVar) -> usize {
        self.fd_vars[var.id as usize].domain_size
    }

    /// Creates a fresh strict-order node (an integer-valued symbol that only
    /// participates in `<` comparisons).
    pub fn order_node(&mut self) -> OrderNode {
        self.theory.new_node()
    }

    /// The atom `left < right` in the strict-order theory.
    pub fn less(&mut self, left: OrderNode, right: OrderNode) -> TermId {
        let term = self.pool.intern(Term::Less(left, right));
        if !self.lit_of.contains_key(&term) {
            let var = self.sat.new_var();
            // Theory atoms carry semantics the clause-level preprocessor
            // cannot see (two distinct atoms are never interchangeable even
            // if propositionally equivalent), so they must never be
            // eliminated or substituted away.
            self.sat.freeze_var(var);
            self.lit_of.insert(term, Lit::positive(var));
            self.theory.register_atom(var, left, right);
        }
        term
    }

    /// N-ary conjunction. An empty conjunction is the constant true.
    pub fn and(&mut self, terms: impl IntoIterator<Item = TermId>) -> TermId {
        let mut children: Vec<TermId> = Vec::new();
        for term in terms {
            if term == self.pool.false_id() {
                return self.pool.false_id();
            }
            if term != self.pool.true_id() {
                children.push(term);
            }
        }
        children.sort_unstable();
        children.dedup();
        match children.len() {
            0 => self.pool.true_id(),
            1 => children[0],
            _ => self.pool.intern(Term::And(children)),
        }
    }

    /// N-ary disjunction. An empty disjunction is the constant false.
    pub fn or(&mut self, terms: impl IntoIterator<Item = TermId>) -> TermId {
        let mut children: Vec<TermId> = Vec::new();
        for term in terms {
            if term == self.pool.true_id() {
                return self.pool.true_id();
            }
            if term != self.pool.false_id() {
                children.push(term);
            }
        }
        children.sort_unstable();
        children.dedup();
        match children.len() {
            0 => self.pool.false_id(),
            1 => children[0],
            _ => self.pool.intern(Term::Or(children)),
        }
    }

    /// Negation.
    pub fn not(&mut self, term: TermId) -> TermId {
        if term == self.pool.true_id() {
            return self.pool.false_id();
        }
        if term == self.pool.false_id() {
            return self.pool.true_id();
        }
        if let Term::Not(inner) = self.pool.get(term) {
            return *inner;
        }
        self.pool.intern(Term::Not(term))
    }

    /// Implication `antecedent ⇒ consequent`.
    pub fn implies(&mut self, antecedent: TermId, consequent: TermId) -> TermId {
        let not_a = self.not(antecedent);
        self.or([not_a, consequent])
    }

    /// Bi-implication `left ⇔ right`.
    pub fn iff(&mut self, left: TermId, right: TermId) -> TermId {
        let forward = self.implies(left, right);
        let backward = self.implies(right, left);
        self.and([forward, backward])
    }

    /// Human-readable name of a named atom, if any.
    #[must_use]
    pub fn term_name(&self, term: TermId) -> Option<&str> {
        self.pool.name(term)
    }

    // ------------------------------------------------------------------
    // Assertions and solving
    // ------------------------------------------------------------------

    /// Asserts `term` to be true.
    ///
    /// # Panics
    ///
    /// Panics if an order atom occurs with negative polarity inside `term`
    /// (see the crate-level documentation).
    pub fn assert_term(&mut self, term: TermId) {
        self.check_order_polarity(term);
        self.assert_encoded(term);
    }

    /// Checks satisfiability of the asserted formulas.
    pub fn check(&mut self) -> SmtResult {
        match self.sat.solve_with_theory(&mut self.theory) {
            SolveOutcome::Sat => SmtResult::Sat,
            SolveOutcome::Unsat => SmtResult::Unsat,
            SolveOutcome::Unknown => SmtResult::Unknown,
        }
    }

    /// Enables or disables SAT-core preprocessing (enabled by default).
    pub fn set_preprocessing(&mut self, enabled: bool) {
        self.sat.config_mut().preprocess.enabled = enabled;
    }

    /// Runs SAT-core preprocessing immediately (it otherwise runs at the
    /// start of [`SmtSolver::check`]); exposed so callers can time it under
    /// a dedicated observability span. Idempotent until new assertions
    /// arrive.
    pub fn preprocess(&mut self) -> PreprocessSummary {
        self.sat.preprocess()
    }

    /// Truth value of a term in the current model. Returns `None` if there is
    /// no model or the term never reached the SAT core (e.g. it was simplified
    /// away and not asserted).
    #[must_use]
    pub fn model_bool(&self, term: TermId) -> Option<bool> {
        let model = self.sat.model()?;
        let lit = self.lit_of.get(&term)?;
        Some(model.lit_value(*lit))
    }

    /// Value (domain index) of a finite-domain variable in the current model.
    #[must_use]
    pub fn model_fd(&self, var: FdVar) -> Option<usize> {
        let model = self.sat.model()?;
        let data = self.fd_vars.get(var.id as usize)?;
        for value in 0..data.domain_size {
            let term = Term::FdEq(var, value as u32);
            if let Some(&id) = self.lookup_interned(&term) {
                if let Some(&lit) = self.lit_of.get(&id) {
                    if model.lit_value(lit) {
                        return Some(value);
                    }
                }
            }
        }
        None
    }

    /// Topological positions of the order nodes consistent with the `<` atoms
    /// that are true in the current model: `positions[node.id()]` is the
    /// node's index in one admissible total order. Returns `None` if there is
    /// no model.
    #[must_use]
    pub fn model_order_positions(&self) -> Option<Vec<usize>> {
        let model = self.sat.model()?;
        let mut edges = Vec::new();
        // detlint: allow(hash-iter) — the edges are sorted below, so the
        // HashMap iteration order cannot leak into the result.
        for (term, lit) in &self.lit_of {
            if let Term::Less(a, b) = self.pool.get(*term) {
                if model.lit_value(*lit) {
                    edges.push((a.id(), b.id()));
                }
            }
        }
        // Kahn's algorithm tie-breaks by edge insertion order; sort so the
        // positions are a deterministic function of the model.
        edges.sort_unstable();
        edges.dedup();
        topological_positions(self.theory.num_nodes(), &edges)
    }

    /// Encoding and solving statistics.
    #[must_use]
    pub fn stats(&self) -> EncodingStats {
        let sat_stats = self.sat.stats();
        EncodingStats {
            variables: sat_stats.variables,
            clauses: sat_stats.clauses,
            literals: sat_stats.literals,
            terms: self.pool.len() as u64,
            conflicts: sat_stats.conflicts,
            decisions: sat_stats.decisions,
        }
    }

    /// Cumulative counters of the underlying SAT core. The counters are
    /// never reset between [`SmtSolver::check`] calls, so per-call metrics
    /// are `let before = smt.solver_stats(); …; smt.solver_stats().diff(&before)`.
    #[must_use]
    pub fn solver_stats(&self) -> SolverStats {
        self.sat.stats().snapshot()
    }

    fn lookup_interned(&self, term: &Term) -> Option<&TermId> {
        // TermPool interns by value; re-intern without mutation by looking up
        // through the public map on lit_of keys is not possible, so search the
        // pool's index directly.
        self.pool.index_of(term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simplifications_apply_at_construction() {
        let mut smt = SmtSolver::new();
        let t = smt.true_term();
        let f = smt.false_term();
        let a = smt.bool_var("a");
        assert_eq!(smt.and([t, a]), a);
        assert_eq!(smt.and([f, a]), f);
        assert_eq!(smt.or([f, a]), a);
        assert_eq!(smt.or([t, a]), t);
        assert_eq!(smt.not(t), f);
        let na = smt.not(a);
        assert_eq!(smt.not(na), a);
        assert_eq!(smt.and(std::iter::empty()), t);
        assert_eq!(smt.or(std::iter::empty()), f);
    }

    #[test]
    fn incremental_blocking_enumerates_fd_models() {
        let mut smt = SmtSolver::new();
        let x = smt.fd_var("x", 3);
        let mut seen = Vec::new();
        loop {
            match smt.check() {
                SmtResult::Sat => {
                    let value = smt.model_fd(x).expect("model assigns x");
                    assert!(!seen.contains(&value), "value {value} repeated");
                    seen.push(value);
                    let eq = smt.fd_eq(x, value);
                    let block = smt.not(eq);
                    smt.assert_term(block);
                }
                SmtResult::Unsat => break,
                SmtResult::Unknown => panic!("no budget set"),
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn solver_stats_accumulate_across_checks_and_diff_isolates_a_call() {
        let mut smt = SmtSolver::new();
        let x = smt.fd_var("x", 4);
        assert_eq!(smt.check(), SmtResult::Sat);
        let before = smt.solver_stats();
        let value = smt.model_fd(x).expect("model assigns x");
        let eq = smt.fd_eq(x, value);
        let block = smt.not(eq);
        smt.assert_term(block);
        assert_eq!(smt.check(), SmtResult::Sat);
        let after = smt.solver_stats();
        let delta = after.diff(&before);
        assert!(after.propagations >= before.propagations, "cumulative");
        assert!(
            delta.propagations > 0 || delta.decisions > 0 || delta.clauses > 0,
            "second check did work: {delta}"
        );
        // No new problem variables were introduced between the snapshots
        // beyond the blocking clause's terms.
        assert!(delta.variables <= after.variables);
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        let mut smt = SmtSolver::new();
        // Preprocessing (variable elimination) proves this instance outright;
        // disable it so the check actually spends conflicts in search.
        smt.set_preprocessing(false);
        smt.set_conflict_budget(Some(1));
        // Pigeonhole-style FD problem: 4 variables over 3 values, all distinct.
        let vars: Vec<FdVar> = (0..4).map(|i| smt.fd_var(format!("p{i}"), 3)).collect();
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                for v in 0..3 {
                    let ei = smt.fd_eq(vars[i], v);
                    let ej = smt.fd_eq(vars[j], v);
                    let both = smt.and([ei, ej]);
                    let not_both = smt.not(both);
                    smt.assert_term(not_both);
                }
            }
        }
        assert_eq!(smt.check(), SmtResult::Unknown);
        // Raising the budget lets the solver finish and prove unsatisfiability.
        smt.set_conflict_budget(None);
        assert_eq!(smt.check(), SmtResult::Unsat);
    }

    #[test]
    fn model_bool_is_none_without_a_model() {
        let mut smt = SmtSolver::new();
        let a = smt.bool_var("a");
        assert_eq!(smt.model_bool(a), None);
        let na = smt.not(a);
        smt.assert_term(a);
        smt.assert_term(na);
        assert_eq!(smt.check(), SmtResult::Unsat);
        assert_eq!(smt.model_bool(a), None);
    }

    #[test]
    fn clause_families_tag_tseitin_clauses_and_theory_conflicts() {
        let mut smt = SmtSolver::new();
        let fam = smt.intern_clause_family("isolation:causal");
        smt.set_clause_family(fam);
        // An order cycle: the contradiction is only visible to the theory.
        let a = smt.order_node();
        let b = smt.order_node();
        let ab = smt.less(a, b);
        let ba = smt.less(b, a);
        let both = smt.and([ab, ba]);
        smt.assert_term(both);
        assert_eq!(smt.check(), SmtResult::Unsat);
        let conflicts = smt.solver_stats().conflicts;
        let attribution = smt.attribution();
        assert_eq!(attribution.total_conflicts(), conflicts);
        assert!(
            attribution.clauses_by_family[usize::from(fam)] > 0,
            "Tseitin clauses must inherit the active family tag"
        );
        assert!(
            attribution.conflicts_by_family[usize::from(isopredict_sat::FAMILY_THEORY)] > 0,
            "the cycle conflict must be charged to the theory family"
        );
        assert_eq!(smt.clause_families()[usize::from(fam)], "isolation:causal");
    }

    #[test]
    fn heartbeats_and_postmortem_surface_through_the_facade() {
        use std::sync::{Arc, Mutex};
        let mut smt = SmtSolver::new();
        smt.set_preprocessing(false);
        smt.set_conflict_budget(Some(10));
        smt.set_heartbeat_every(1);
        let beats = Arc::new(Mutex::new(0u64));
        let sink = Arc::clone(&beats);
        smt.set_heartbeat_hook(Some(Box::new(move |_hb| {
            *sink.lock().expect("hook lock") += 1;
        })));
        // Pigeonhole-style FD problem: 5 variables over 4 values, all distinct.
        let vars: Vec<FdVar> = (0..5).map(|i| smt.fd_var(format!("p{i}"), 4)).collect();
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                for v in 0..4 {
                    let ei = smt.fd_eq(vars[i], v);
                    let ej = smt.fd_eq(vars[j], v);
                    let both = smt.and([ei, ej]);
                    let not_both = smt.not(both);
                    smt.assert_term(not_both);
                }
            }
        }
        assert_eq!(smt.check(), SmtResult::Unknown);
        assert!(*beats.lock().expect("test lock") > 0, "hook never fired");
        let postmortem = smt.solver_postmortem();
        assert_eq!(postmortem.budget, Some(10));
        assert!(postmortem.conflicts_in_call >= 10);
        assert!(!postmortem.heartbeats.is_empty());
        assert_eq!(
            postmortem.attribution.total_conflicts(),
            postmortem.stats.conflicts
        );
    }

    #[test]
    fn debug_output_mentions_sizes() {
        let mut smt = SmtSolver::new();
        let _ = smt.bool_var("a");
        let _ = smt.fd_var("x", 2);
        let _ = smt.order_node();
        let debug = format!("{smt:?}");
        assert!(debug.contains("fd_vars"));
        assert!(debug.contains("order_nodes"));
    }
}
