//! The strict-order theory: keeps asserted `x < y` atoms acyclic.

use std::collections::HashMap;

use isopredict_sat::{Lit, Model, Theory, TheoryResult, Var};

/// A node of the strict-order theory — conceptually an integer-valued symbol
/// such as `co(t)` or `rank(t1, t2)` whose concrete value never matters, only
/// its relative order to other nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OrderNode {
    pub(crate) id: u32,
}

impl OrderNode {
    /// The dense identifier of this node.
    #[must_use]
    pub fn id(self) -> u32 {
        self.id
    }
}

/// An edge asserted in the theory, remembered for backtracking.
#[derive(Debug, Clone, Copy)]
struct AssertedEdge {
    level: u32,
    var: Var,
    from: u32,
    to: u32,
}

/// Incremental cycle detection over the graph of asserted `<` atoms.
///
/// When the SAT core asserts an atom `a < b` true, the theory adds the edge
/// `a → b` and searches for a path `b ⇝ a`. If one exists, the cycle
/// `a → b ⇝ a` is inconsistent and the negations of the atoms along it form
/// the conflict clause. Negated atoms are ignored (see the crate-level
/// polarity discussion).
#[derive(Debug, Default)]
pub(crate) struct OrderTheory {
    /// Maps a SAT variable to the edge its positive literal asserts.
    edge_of_var: HashMap<Var, (u32, u32)>,
    /// Adjacency list: `adj[node]` = (successor, asserting SAT variable).
    adj: Vec<Vec<(u32, Var)>>,
    /// Stack of asserted edges for backtracking.
    trail: Vec<AssertedEdge>,
    /// Number of order nodes created.
    num_nodes: u32,
}

impl OrderTheory {
    pub(crate) fn new() -> Self {
        OrderTheory::default()
    }

    pub(crate) fn new_node(&mut self) -> OrderNode {
        let node = OrderNode { id: self.num_nodes };
        self.num_nodes += 1;
        self.adj.push(Vec::new());
        node
    }

    pub(crate) fn register_atom(&mut self, var: Var, from: OrderNode, to: OrderNode) {
        self.edge_of_var.insert(var, (from.id, to.id));
    }

    pub(crate) fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Returns the SAT variables of the edges along a path `from ⇝ to` in the
    /// current graph, or `None` if no path exists. Depth-first search;
    /// the graphs involved are small (one node per transaction or per
    /// transaction pair).
    fn find_path(&self, from: u32, to: u32) -> Option<Vec<Var>> {
        let mut stack = vec![(from, Vec::new())];
        let mut visited = vec![false; self.num_nodes as usize];
        while let Some((node, path)) = stack.pop() {
            if node == to {
                return Some(path);
            }
            if visited[node as usize] {
                continue;
            }
            visited[node as usize] = true;
            for &(succ, var) in &self.adj[node as usize] {
                if !visited[succ as usize] {
                    let mut next_path = path.clone();
                    next_path.push(var);
                    stack.push((succ, next_path));
                }
            }
        }
        None
    }

    fn add_edge(&mut self, var: Var, from: u32, to: u32, level: u32) -> TheoryResult {
        // Duplicate assertions (possible when the solver re-notifies after a
        // restart) are ignored.
        if self
            .trail
            .iter()
            .any(|e| e.var == var && e.from == from && e.to == to)
        {
            return TheoryResult::Consistent;
        }
        // A conflict exists if the reverse path already exists.
        if let Some(path_vars) = self.find_path(to, from) {
            let mut clause: Vec<Lit> = path_vars.into_iter().map(Lit::negative).collect();
            clause.push(Lit::negative(var));
            clause.sort_unstable();
            clause.dedup();
            return TheoryResult::Conflict(clause);
        }
        self.adj[from as usize].push((to, var));
        self.trail.push(AssertedEdge {
            level,
            var,
            from,
            to,
        });
        TheoryResult::Consistent
    }
}

impl Theory for OrderTheory {
    fn assert_literal(&mut self, lit: Lit, level: u32) -> TheoryResult {
        if lit.is_negative() {
            return TheoryResult::Consistent;
        }
        let Some(&(from, to)) = self.edge_of_var.get(&lit.var()) else {
            return TheoryResult::Consistent;
        };
        self.add_edge(lit.var(), from, to, level)
    }

    fn backtrack_to(&mut self, level: u32) {
        while let Some(edge) = self.trail.last().copied() {
            if edge.level <= level {
                break;
            }
            self.trail.pop();
            let adj = &mut self.adj[edge.from as usize];
            if let Some(pos) = adj
                .iter()
                .rposition(|&(to, var)| to == edge.to && var == edge.var)
            {
                adj.remove(pos);
            }
        }
    }

    fn final_check(&mut self, _model: &Model) -> TheoryResult {
        // Eager per-assertion cycle checking keeps the asserted set acyclic at
        // all times, so there is nothing left to verify here.
        TheoryResult::Consistent
    }
}

/// Computes a topological order of the nodes given the atoms that are true in
/// `model`. Used to extract concrete commit orders for reporting. Returns
/// `None` if the true atoms are cyclic (which indicates a solver bug).
pub(crate) fn topological_positions(num_nodes: u32, edges: &[(u32, u32)]) -> Option<Vec<usize>> {
    let n = num_nodes as usize;
    let mut indegree = vec![0usize; n];
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(from, to) in edges {
        adj[from as usize].push(to);
        indegree[to as usize] += 1;
    }
    let mut queue: Vec<u32> = (0..num_nodes)
        .filter(|&v| indegree[v as usize] == 0)
        .collect();
    let mut positions = vec![usize::MAX; n];
    let mut next_pos = 0;
    while let Some(node) = queue.pop() {
        positions[node as usize] = next_pos;
        next_pos += 1;
        for &succ in &adj[node as usize] {
            indegree[succ as usize] -= 1;
            if indegree[succ as usize] == 0 {
                queue.push(succ);
            }
        }
    }
    if next_pos == n {
        Some(positions)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SmtResult, SmtSolver};

    #[test]
    fn two_node_cycle_is_unsat() {
        let mut smt = SmtSolver::new();
        let a = smt.order_node();
        let b = smt.order_node();
        let ab = smt.less(a, b);
        let ba = smt.less(b, a);
        smt.assert_term(ab);
        smt.assert_term(ba);
        assert_eq!(smt.check(), SmtResult::Unsat);
    }

    #[test]
    fn chain_of_lesses_is_sat_and_orders_nodes() {
        let mut smt = SmtSolver::new();
        let nodes: Vec<_> = (0..5).map(|_| smt.order_node()).collect();
        for pair in nodes.windows(2) {
            let lt = smt.less(pair[0], pair[1]);
            smt.assert_term(lt);
        }
        assert_eq!(smt.check(), SmtResult::Sat);
        let positions = smt
            .model_order_positions()
            .expect("sat model has positions");
        for pair in nodes.windows(2) {
            assert!(positions[pair[0].id() as usize] < positions[pair[1].id() as usize]);
        }
    }

    #[test]
    fn long_cycle_through_disjunction_forces_the_escape_hatch() {
        // (a<b) ∧ (b<c) ∧ (c<a ∨ escape): the solver must pick `escape`.
        let mut smt = SmtSolver::new();
        let a = smt.order_node();
        let b = smt.order_node();
        let c = smt.order_node();
        let escape = smt.bool_var("escape");
        let ab = smt.less(a, b);
        let bc = smt.less(b, c);
        let ca = smt.less(c, a);
        let alt = smt.or([ca, escape]);
        smt.assert_term(ab);
        smt.assert_term(bc);
        smt.assert_term(alt);
        assert_eq!(smt.check(), SmtResult::Sat);
        assert_eq!(smt.model_bool(escape), Some(true));
    }

    #[test]
    fn disconnected_components_do_not_interfere() {
        let mut smt = SmtSolver::new();
        let a = smt.order_node();
        let b = smt.order_node();
        let c = smt.order_node();
        let d = smt.order_node();
        let ab = smt.less(a, b);
        let cd = smt.less(c, d);
        let dc = smt.less(d, c);
        smt.assert_term(ab);
        // One direction between c and d must be chosen; either is fine and
        // neither interacts with the a/b component.
        let either = smt.or([cd, dc]);
        smt.assert_term(either);
        assert_eq!(smt.check(), SmtResult::Sat);
    }

    #[test]
    fn topological_positions_detects_cycles() {
        assert!(topological_positions(2, &[(0, 1), (1, 0)]).is_none());
        let positions = topological_positions(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(positions[0] < positions[1] && positions[1] < positions[2]);
    }
}
