//! Hash-consed boolean terms.

use std::collections::HashMap;

use crate::fd::FdVar;
use crate::order::OrderNode;

/// Identifier of a term inside a `TermPool`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

impl TermId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// A boolean term.
///
/// Terms are created through the builder methods on
/// [`crate::SmtSolver`] (`and`, `or`, `not`, `implies`, …) and are
/// structurally hash-consed: building the same term twice yields the same
/// [`TermId`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A free boolean variable (atom).
    BoolVar(u32),
    /// Atom asserting that a finite-domain variable equals the value at the
    /// given index of its domain.
    FdEq(FdVar, u32),
    /// Atom asserting `left < right` in the strict-order theory.
    Less(OrderNode, OrderNode),
    /// Negation.
    Not(TermId),
    /// N-ary conjunction.
    And(Vec<TermId>),
    /// N-ary disjunction.
    Or(Vec<TermId>),
}

/// Arena of hash-consed terms.
#[derive(Debug, Default)]
pub(crate) struct TermPool {
    terms: Vec<Term>,
    index: HashMap<Term, TermId>,
    names: HashMap<TermId, String>,
}

impl TermPool {
    pub(crate) fn new() -> Self {
        let mut pool = TermPool::default();
        // Keep the constants at fixed, well-known positions.
        pool.intern(Term::True);
        pool.intern(Term::False);
        pool
    }

    pub(crate) fn true_id(&self) -> TermId {
        TermId(0)
    }

    pub(crate) fn false_id(&self) -> TermId {
        TermId(1)
    }

    pub(crate) fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.index.get(&term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.index.insert(term.clone(), id);
        self.terms.push(term);
        id
    }

    pub(crate) fn get(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Looks up an already-interned term without interning it.
    pub(crate) fn index_of(&self, term: &Term) -> Option<&TermId> {
        self.index.get(term)
    }

    pub(crate) fn len(&self) -> usize {
        self.terms.len()
    }

    pub(crate) fn set_name(&mut self, id: TermId, name: String) {
        self.names.insert(id, name);
    }

    pub(crate) fn name(&self, id: TermId) -> Option<&str> {
        self.names.get(&id).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_fixed_ids() {
        let pool = TermPool::new();
        assert_eq!(pool.get(pool.true_id()), &Term::True);
        assert_eq!(pool.get(pool.false_id()), &Term::False);
    }

    #[test]
    fn interning_deduplicates() {
        let mut pool = TermPool::new();
        let a = pool.intern(Term::BoolVar(0));
        let b = pool.intern(Term::BoolVar(0));
        let c = pool.intern(Term::BoolVar(1));
        assert_eq!(a, b);
        assert_ne!(a, c);
        let and1 = pool.intern(Term::And(vec![a, c]));
        let and2 = pool.intern(Term::And(vec![a, c]));
        assert_eq!(and1, and2);
        assert_eq!(pool.len(), 5); // true, false, two vars, one and
    }

    #[test]
    fn names_are_remembered() {
        let mut pool = TermPool::new();
        let a = pool.intern(Term::BoolVar(0));
        pool.set_name(a, "so(t1,t2)".to_string());
        assert_eq!(pool.name(a), Some("so(t1,t2)"));
        assert_eq!(pool.name(pool.true_id()), None);
    }
}
