//! Finite-domain variables.

/// A finite-domain variable: an unknown that takes exactly one value out of a
/// fixed domain of size `domain_size`.
///
/// IsoPredict uses these for `φ_choice(s, i)` (which transaction a read reads
/// from) and `φ_boundary(s)` (which event position delimits a session's
/// prediction boundary). Values are identified by their *index* in the
/// domain; mapping indices back to transactions/positions is the caller's
/// responsibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FdVar {
    pub(crate) id: u32,
}

impl FdVar {
    /// The dense identifier of this variable.
    #[must_use]
    pub fn id(self) -> u32 {
        self.id
    }
}

/// Bookkeeping for one finite-domain variable.
#[derive(Debug, Clone)]
pub(crate) struct FdVarData {
    pub(crate) domain_size: usize,
    pub(crate) name: String,
}

#[cfg(test)]
mod tests {
    use crate::{SmtResult, SmtSolver};

    #[test]
    fn fd_var_takes_exactly_one_value() {
        let mut smt = SmtSolver::new();
        let x = smt.fd_var("x", 3);
        // Forbid values 0 and 2; the model must pick 1.
        let e0 = smt.fd_eq(x, 0);
        let e2 = smt.fd_eq(x, 2);
        let not0 = smt.not(e0);
        let not2 = smt.not(e2);
        smt.assert_term(not0);
        smt.assert_term(not2);
        assert_eq!(smt.check(), SmtResult::Sat);
        assert_eq!(smt.model_fd(x), Some(1));
    }

    #[test]
    fn fd_var_cannot_take_two_values() {
        let mut smt = SmtSolver::new();
        let x = smt.fd_var("x", 4);
        let e1 = smt.fd_eq(x, 1);
        let e3 = smt.fd_eq(x, 3);
        smt.assert_term(e1);
        smt.assert_term(e3);
        assert_eq!(smt.check(), SmtResult::Unsat);
    }

    #[test]
    fn forbidding_every_value_is_unsat() {
        let mut smt = SmtSolver::new();
        let x = smt.fd_var("x", 2);
        for v in 0..2 {
            let eq = smt.fd_eq(x, v);
            let neg = smt.not(eq);
            smt.assert_term(neg);
        }
        assert_eq!(smt.check(), SmtResult::Unsat);
    }

    #[test]
    fn singleton_domain_is_forced() {
        let mut smt = SmtSolver::new();
        let x = smt.fd_var("x", 1);
        assert_eq!(smt.check(), SmtResult::Sat);
        assert_eq!(smt.model_fd(x), Some(0));
    }

    #[test]
    fn large_domain_uses_sequential_at_most_one() {
        let mut smt = SmtSolver::new();
        let x = smt.fd_var("x", 12);
        let eq7 = smt.fd_eq(x, 7);
        smt.assert_term(eq7);
        assert_eq!(smt.check(), SmtResult::Sat);
        assert_eq!(smt.model_fd(x), Some(7));
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn out_of_domain_value_panics() {
        let mut smt = SmtSolver::new();
        let x = smt.fd_var("x", 2);
        let _ = smt.fd_eq(x, 5);
    }
}
