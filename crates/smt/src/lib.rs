//! A small SMT layer tailored to IsoPredict's constraint language.
//!
//! The IsoPredict paper generates constraints over three kinds of symbols:
//!
//! * **Boolean relation variables** such as `φ_so(t1, t2)`, `φ_wr(t1, t2)`,
//!   `φ_hb(t1, t2)`, `φ_ww(t1, t2)` — plain propositional atoms;
//! * **finite-domain functions** such as `φ_choice(s, i)` (which writer
//!   transaction a read reads from) and `φ_boundary(s)` (the prediction
//!   boundary position of a session) — each application ranges over a known
//!   finite set of values;
//! * **integer-valued symbols** such as `φ_co(t)` and `rank(t1, t2)` that only
//!   ever appear in *strict comparisons* `x < y`.
//!
//! All three are decidable with a propositional CDCL core plus a
//! *strict-order theory* whose only job is to keep the set of asserted `x < y`
//! atoms acyclic. This crate provides exactly that: hash-consed formulas
//! ([`SmtSolver`] term builders), Tseitin conversion to CNF, one-hot encoded
//! finite-domain variables ([`FdVar`]), and order atoms over [`OrderNode`]s
//! backed by an incremental cycle-detection theory.
//!
//! # Polarity restriction on order atoms
//!
//! The theory ignores *negated* order atoms (`¬(x < y)` places no constraint).
//! This is sound and complete as long as order atoms appear with **positive
//! polarity** in asserted formulas, which is the case for every constraint the
//! paper generates (`… ⇒ co(t1) < co(t2)` and the `ww`/`rw`/`pco`
//! justifications). [`SmtSolver::assert_term`] enforces the restriction and
//! panics on misuse.
//!
//! # Example
//!
//! ```
//! use isopredict_smt::{SmtResult, SmtSolver};
//!
//! let mut smt = SmtSolver::new();
//! let a = smt.bool_var("a");
//! let b = smt.bool_var("b");
//! let or = smt.or([a, b]);
//! let not_a = smt.not(a);
//! smt.assert_term(or);
//! smt.assert_term(not_a);
//! assert_eq!(smt.check(), SmtResult::Sat);
//! assert_eq!(smt.model_bool(b), Some(true));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod fd;
mod order;
mod solver;
mod stats;
mod term;
mod tseitin;

pub use fd::FdVar;
pub use isopredict_sat::{
    FamilyAttribution, Heartbeat, HeartbeatHook, SolverPostmortem, SolverStats,
};
pub use order::OrderNode;
pub use solver::{SmtResult, SmtSolver};
pub use stats::EncodingStats;
pub use term::{Term, TermId};
