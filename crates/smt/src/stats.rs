//! Encoding-size and solving statistics.

/// Size of the constraint system handed to the SAT core, mirroring the
/// "# Literals" and "Constraint gen." columns of the paper's Tables 4 and 5.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EncodingStats {
    /// Number of SAT variables allocated (atoms + Tseitin definitions).
    pub variables: u64,
    /// Number of problem clauses generated.
    pub clauses: u64,
    /// Total number of literal occurrences over the problem clauses — the
    /// analogue of the paper's "# Literals" column.
    pub literals: u64,
    /// Number of distinct hash-consed terms built.
    pub terms: u64,
    /// Number of conflicts the solver went through in `check` calls so far.
    pub conflicts: u64,
    /// Number of solver decisions.
    pub decisions: u64,
}

impl std::fmt::Display for EncodingStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} vars, {} clauses, {} literals, {} terms ({} conflicts, {} decisions)",
            self.variables, self.clauses, self.literals, self.terms, self.conflicts, self.decisions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SmtSolver;

    #[test]
    fn stats_grow_with_the_encoding() {
        let mut smt = SmtSolver::new();
        let a = smt.bool_var("a");
        let b = smt.bool_var("b");
        let or = smt.or([a, b]);
        smt.assert_term(or);
        let stats = smt.stats();
        assert!(stats.variables >= 2);
        assert!(stats.clauses >= 1);
        assert!(stats.literals >= 2);
        assert!(stats.terms >= 3);
    }

    #[test]
    fn display_is_informative() {
        let stats = EncodingStats {
            variables: 1,
            clauses: 2,
            literals: 3,
            terms: 4,
            conflicts: 5,
            decisions: 6,
        };
        let text = stats.to_string();
        assert!(text.contains("3 literals"));
        assert!(text.contains("2 clauses"));
    }
}
