//! Tseitin conversion of terms to CNF and polarity checking.

use isopredict_sat::Lit;

use crate::solver::SmtSolver;
use crate::term::{Term, TermId};

impl SmtSolver {
    /// Returns the SAT literal representing `term`, generating Tseitin
    /// definition clauses on first use.
    pub(crate) fn encode_term(&mut self, term: TermId) -> Lit {
        if let Some(&lit) = self.lit_of.get(&term) {
            return lit;
        }
        let node = self.pool.get(term).clone();
        let lit = match node {
            Term::True => self.true_lit(),
            Term::False => self.true_lit().negate(),
            Term::BoolVar(_) | Term::FdEq(_, _) | Term::Less(_, _) => {
                // Atoms are registered eagerly when they are created, so
                // reaching this arm means an internal bookkeeping bug.
                unreachable!("atom without a SAT literal")
            }
            Term::Not(inner) => self.encode_term(inner).negate(),
            Term::And(children) => {
                let child_lits: Vec<Lit> = children.iter().map(|&c| self.encode_term(c)).collect();
                let fresh = Lit::positive(self.sat.new_var());
                // fresh ⇒ child, for every child
                for &child in &child_lits {
                    self.sat.add_clause([fresh.negate(), child]);
                }
                // (⋀ children) ⇒ fresh
                let mut clause: Vec<Lit> = child_lits.iter().map(|c| c.negate()).collect();
                clause.push(fresh);
                self.sat.add_clause(clause);
                fresh
            }
            Term::Or(children) => {
                let child_lits: Vec<Lit> = children.iter().map(|&c| self.encode_term(c)).collect();
                let fresh = Lit::positive(self.sat.new_var());
                // child ⇒ fresh, for every child
                for &child in &child_lits {
                    self.sat.add_clause([child.negate(), fresh]);
                }
                // fresh ⇒ (⋁ children)
                let mut clause: Vec<Lit> = child_lits.clone();
                clause.push(fresh.negate());
                self.sat.add_clause(clause);
                fresh
            }
        };
        self.lit_of.insert(term, lit);
        lit
    }

    /// Adds `term` to the solver as a top-level assertion.
    ///
    /// Conjunctions are flattened and disjunctions become a single clause, so
    /// asserting the formulas the IsoPredict encoders produce does not create
    /// unnecessary Tseitin variables at the top level.
    pub(crate) fn assert_encoded(&mut self, term: TermId) {
        match self.pool.get(term).clone() {
            Term::True => {}
            Term::False => {
                self.sat.add_clause(std::iter::empty());
            }
            Term::And(children) => {
                for child in children {
                    self.assert_encoded(child);
                }
            }
            Term::Or(children) => {
                let clause: Vec<Lit> = children.iter().map(|&c| self.encode_term(c)).collect();
                self.sat.add_clause(clause);
            }
            _ => {
                let lit = self.encode_term(term);
                self.sat.add_clause([lit]);
            }
        }
    }

    /// Verifies that every order atom (`Less`) in `term` occurs with positive
    /// polarity. See the crate-level documentation for why this matters.
    ///
    /// # Panics
    ///
    /// Panics if a `Less` atom occurs under an odd number of negations.
    pub(crate) fn check_order_polarity(&self, term: TermId) {
        // Iterative walk carrying the polarity (true = positive).
        let mut stack = vec![(term, true)];
        while let Some((id, positive)) = stack.pop() {
            match self.pool.get(id) {
                Term::Less(a, b) => {
                    assert!(
                        positive,
                        "order atom {:?} < {:?} used with negative polarity; \
                         the strict-order theory only supports positive occurrences",
                        a, b
                    );
                }
                Term::Not(inner) => stack.push((*inner, !positive)),
                Term::And(children) | Term::Or(children) => {
                    for &child in children {
                        stack.push((child, positive));
                    }
                }
                Term::True | Term::False | Term::BoolVar(_) | Term::FdEq(_, _) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{SmtResult, SmtSolver};

    #[test]
    fn nested_formula_round_trips_through_tseitin() {
        // (a ∧ (b ∨ ¬c)) ∨ (¬a ∧ c) with a forced false and c forced true
        // leaves exactly the right branch.
        let mut smt = SmtSolver::new();
        let a = smt.bool_var("a");
        let b = smt.bool_var("b");
        let c = smt.bool_var("c");
        let not_c = smt.not(c);
        let b_or_not_c = smt.or([b, not_c]);
        let left = smt.and([a, b_or_not_c]);
        let not_a = smt.not(a);
        let right = smt.and([not_a, c]);
        let formula = smt.or([left, right]);
        smt.assert_term(formula);
        let not_a2 = smt.not(a);
        smt.assert_term(not_a2);
        smt.assert_term(c);
        assert_eq!(smt.check(), SmtResult::Sat);
        assert_eq!(smt.model_bool(a), Some(false));
        assert_eq!(smt.model_bool(c), Some(true));
    }

    #[test]
    fn asserting_false_is_unsat() {
        let mut smt = SmtSolver::new();
        let f = smt.false_term();
        smt.assert_term(f);
        assert_eq!(smt.check(), SmtResult::Unsat);
    }

    #[test]
    fn implication_and_iff_behave_as_expected() {
        let mut smt = SmtSolver::new();
        let a = smt.bool_var("a");
        let b = smt.bool_var("b");
        let imp = smt.implies(a, b);
        let iff = smt.iff(a, b);
        smt.assert_term(imp);
        smt.assert_term(iff);
        smt.assert_term(a);
        assert_eq!(smt.check(), SmtResult::Sat);
        assert_eq!(smt.model_bool(b), Some(true));
    }

    #[test]
    fn deeply_nested_terms_do_not_recurse_excessively() {
        let mut smt = SmtSolver::new();
        let mut current = smt.bool_var("x0");
        for i in 1..200 {
            let next = smt.bool_var(format!("x{i}"));
            current = smt.and([current, next]);
        }
        smt.assert_term(current);
        assert_eq!(smt.check(), SmtResult::Sat);
    }

    #[test]
    #[should_panic(expected = "negative polarity")]
    fn negated_order_atom_is_rejected() {
        let mut smt = SmtSolver::new();
        let a = smt.order_node();
        let b = smt.order_node();
        let lt = smt.less(a, b);
        let neg = smt.not(lt);
        smt.assert_term(neg);
    }
}
