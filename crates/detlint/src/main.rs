//! `detlint` — a determinism lint for the deterministic report half.
//!
//! The campaign report has a deterministic half (tasks + summary) that must
//! be byte-identical across runs, worker counts, and machines. That property
//! is enforced end-to-end by CI, but the failure mode is silent until a
//! nondeterministic value flows into a report field. This binary is a small
//! hand-rolled static-analysis pass over the modules that compute the
//! deterministic half, flagging constructs whose results vary from run to
//! run:
//!
//! * `wall-clock` — `SystemTime::now` / `Instant::now`
//! * `parallelism` — `std::thread::available_parallelism`
//! * `hash-iter` — iteration over a `HashMap`/`HashSet` (randomized order)
//!
//! False positives are suppressed with an allow comment on the same line or
//! the line above, naming the rule:
//!
//! ```text
//! // detlint: allow(hash-iter) — the collected edges are sorted below
//! for (&key, &value) in &map {
//! ```
//!
//! `#[cfg(test)]` modules are skipped. Usage: `detlint [ROOT]`, where `ROOT`
//! is the workspace root (default `.`). Exit status is nonzero when any
//! finding survives, which makes the binary a CI step.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The modules that compute the deterministic report half. Paths are
/// relative to the workspace root; directories are scanned recursively.
/// `obs` and the orchestrator's worker pool are deliberately absent: they
/// own the *non*-deterministic half (timing, telemetry, parallelism).
const DET_PATHS: &[&str] = &[
    "crates/history/src",
    "crates/store/src",
    "crates/workloads/src",
    "crates/sat/src",
    "crates/smt/src",
    "crates/core/src",
    "crates/corpus/src",
    "crates/orchestrator/src/merge.rs",
    "crates/orchestrator/src/shard.rs",
    "crates/orchestrator/src/report.rs",
];

/// Methods whose call on a hash collection observes its randomized order.
const ITER_METHODS: &[&str] = &[
    "iter()",
    "iter_mut()",
    "keys()",
    "values()",
    "values_mut()",
    "into_iter()",
    "into_keys()",
    "into_values()",
    "drain()",
];

/// One lint violation.
#[derive(Debug, PartialEq, Eq)]
struct Finding {
    path: PathBuf,
    /// 1-based line number.
    line: usize,
    rule: &'static str,
    message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    let mut files: Vec<PathBuf> = Vec::new();
    for rel in DET_PATHS {
        let path = root.join(rel);
        if !path.exists() {
            eprintln!("detlint: missing path {}", path.display());
            return ExitCode::FAILURE;
        }
        collect_rust_files(&path, &mut files);
    }
    files.sort();

    let mut findings: Vec<Finding> = Vec::new();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("detlint: cannot read {}: {error}", file.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = file.strip_prefix(&root).unwrap_or(file);
        findings.extend(scan(rel, &text));
    }

    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!("detlint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "detlint: {} finding(s) in {} files scanned",
            findings.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

/// Recursively collects `.rs` files under `path` (or `path` itself).
fn collect_rust_files(path: &Path, out: &mut Vec<PathBuf>) {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return;
    }
    let Ok(entries) = std::fs::read_dir(path) else {
        return;
    };
    let mut children: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    children.sort();
    for child in children {
        collect_rust_files(&child, out);
    }
}

/// Scans one file's source text and returns its findings.
fn scan(path: &Path, text: &str) -> Vec<Finding> {
    let lines: Vec<&str> = text.lines().collect();
    let split: Vec<(String, String)> = lines.iter().map(|l| split_code_comment(l)).collect();
    let skipped = test_module_mask(&split);
    let hash_names = collect_hash_names(&split);

    let mut findings = Vec::new();
    for (index, (code, _)) in split.iter().enumerate() {
        if skipped[index] {
            continue;
        }
        let mut report = |rule: &'static str, message: String| {
            if !allowed(&split, index, rule) {
                findings.push(Finding {
                    path: path.to_path_buf(),
                    line: index + 1,
                    rule,
                    message,
                });
            }
        };
        for needle in ["SystemTime::now", "Instant::now"] {
            if code.contains(needle) {
                report("wall-clock", format!("`{needle}` varies between runs"));
            }
        }
        if code.contains("available_parallelism") {
            report(
                "parallelism",
                "`available_parallelism` varies between machines".to_string(),
            );
        }
        for name in hash_iteration_receivers(code) {
            if hash_names.contains(&name) {
                report(
                    "hash-iter",
                    format!("iteration over hash collection `{name}` has randomized order"),
                );
            }
        }
    }
    findings
}

/// Whether the finding on `line` is suppressed by a `detlint: allow` comment
/// on the same line or in the block of comment-only lines directly above it
/// (a trailing comment on the previous statement does not leak downward).
fn allowed(split: &[(String, String)], line: usize, rule: &str) -> bool {
    let mut candidates = vec![&split[line].1];
    let mut above = line;
    while above > 0 && split[above - 1].0.trim().is_empty() && !split[above - 1].1.is_empty() {
        above -= 1;
        candidates.push(&split[above].1);
    }
    for comment in candidates {
        let Some(at) = comment.find("detlint: allow") else {
            continue;
        };
        let rest = &comment[at + "detlint: allow".len()..];
        match rest.strip_prefix('(') {
            // A bare `detlint: allow` suppresses every rule.
            None => return true,
            Some(args) => {
                let list = args.split(')').next().unwrap_or("");
                if list.split(',').any(|r| r.trim() == rule) {
                    return true;
                }
            }
        }
    }
    false
}

/// Splits one source line into (code, comment), blanking out the contents of
/// string and char literals in the code part so brace counting and substring
/// matching cannot be fooled by literal text.
fn split_code_comment(line: &str) -> (String, String) {
    let mut code = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return (code, line[i..].to_string());
            }
            '"' => {
                code.push('"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            code.push('"');
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                continue;
            }
            '\'' => {
                // A char literal ('x', '\n', '\''); lifetimes ('a) have no
                // closing quote within a few bytes and fall through.
                let close = if i + 2 < bytes.len() && bytes[i + 1] == b'\\' {
                    i + 3
                } else {
                    i + 2
                };
                if close < bytes.len() && bytes[close] == b'\'' {
                    code.push('\'');
                    code.push('\'');
                    i = close + 1;
                    continue;
                }
                code.push(c);
            }
            _ => code.push(c),
        }
        i += 1;
    }
    (code, String::new())
}

/// Marks the lines inside `#[cfg(test)]` items (tests may use whatever they
/// like; the lint covers production code only).
fn test_module_mask(split: &[(String, String)]) -> Vec<bool> {
    let mut mask = vec![false; split.len()];
    let mut index = 0;
    while index < split.len() {
        if !split[index].0.contains("#[cfg(test)]") {
            index += 1;
            continue;
        }
        // Skip to the end of the following item: either a `;` (out-of-line
        // `mod tests;`) or the matching close of its first `{`.
        let mut depth = 0i64;
        let mut entered = false;
        while index < split.len() {
            mask[index] = true;
            let code = &split[index].0;
            if !entered && code.contains(';') && !code.contains('{') {
                break;
            }
            depth += code.matches('{').count() as i64;
            depth -= code.matches('}').count() as i64;
            if depth > 0 {
                entered = true;
            }
            if entered && depth <= 0 {
                break;
            }
            index += 1;
        }
        index += 1;
    }
    mask
}

/// Collects the identifiers in this file whose declared type or initializer
/// is a `HashMap`/`HashSet`: struct fields and annotated bindings
/// (`name: HashMap<…>`) and inferred bindings (`let name = HashMap::new()`).
fn collect_hash_names(split: &[(String, String)]) -> HashSet<String> {
    let mut names = HashSet::new();
    for (code, _) in split {
        for ty in ["HashMap", "HashSet"] {
            let mut search = 0;
            while let Some(at) = code[search..].find(ty) {
                let at = search + at;
                search = at + ty.len();
                let after = &code[at + ty.len()..];
                let before = code[..at].trim_end();
                if after.starts_with('<') || after.starts_with("::") {
                    if let Some(stripped) = before.strip_suffix(':') {
                        // `name: HashMap<…>` (field, param, or annotation).
                        if let Some(name) = trailing_identifier(stripped) {
                            names.insert(name);
                        }
                    } else if let Some(stripped) = before.strip_suffix('=') {
                        // `let [mut] name = HashMap::new()` and re-bindings.
                        if let Some(name) = trailing_identifier(stripped) {
                            names.insert(name);
                        }
                    }
                }
            }
        }
    }
    names
}

/// The identifier ending `text`, if any.
fn trailing_identifier(text: &str) -> Option<String> {
    let trimmed = text.trim_end();
    let tail: String = trimmed
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if tail.is_empty() || tail.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(tail)
    }
}

/// The receivers of hash-order-observing expressions on this line: both
/// `name.iter()`-style calls and `for … in &name` loops. Returned names are
/// the last path segment (`self.edges` → `edges`).
fn hash_iteration_receivers(code: &str) -> Vec<String> {
    let mut receivers = Vec::new();
    for method in ITER_METHODS {
        let needle = format!(".{method}");
        let mut search = 0;
        while let Some(at) = code[search..].find(&needle) {
            let at = search + at;
            search = at + needle.len();
            if let Some(name) = trailing_identifier(&code[..at]) {
                receivers.push(name);
            }
        }
    }
    if let Some(for_at) = code.find("for ") {
        if let Some(in_at) = code[for_at..].find(" in ") {
            let expr = &code[for_at + in_at + 4..];
            let expr = expr.split(['{', ';']).next().unwrap_or("").trim();
            let expr = expr
                .trim_start_matches('&')
                .trim_start_matches("mut ")
                .trim();
            // A plain path (`name`, `self.name`) iterates the collection
            // itself; method-call expressions were handled above.
            if !expr.is_empty()
                && expr
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                if let Some(name) = expr.rsplit('.').next() {
                    if !name.is_empty() && !name.chars().next().unwrap().is_ascii_digit() {
                        receivers.push(name.to_string());
                    }
                }
            }
        }
    }
    receivers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(text: &str) -> Vec<(usize, &'static str)> {
        scan(Path::new("test.rs"), text)
            .into_iter()
            .map(|f| (f.line, f.rule))
            .collect()
    }

    #[test]
    fn flags_wall_clock_and_parallelism() {
        let text = "fn f() {\n    let t = Instant::now();\n    let n = std::thread::available_parallelism();\n}\n";
        assert_eq!(rules(text), vec![(2, "wall-clock"), (3, "parallelism")]);
    }

    #[test]
    fn flags_hash_map_iteration_by_declared_type() {
        let text = "struct S { edges: HashMap<u32, u32> }\nfn f(s: &S) {\n    for (a, b) in &s.edges {}\n    let k: Vec<_> = s.edges.keys().collect();\n}\n";
        assert_eq!(rules(text), vec![(3, "hash-iter"), (4, "hash-iter")]);
    }

    #[test]
    fn flags_inferred_bindings_but_not_vectors() {
        let text = "fn f() {\n    let mut seen = HashSet::new();\n    let items = vec![1];\n    for i in items.iter() {}\n    for s in seen.iter() {}\n}\n";
        assert_eq!(rules(text), vec![(5, "hash-iter")]);
    }

    #[test]
    fn allow_comments_suppress_by_rule() {
        let text = "fn f(m: HashMap<u32, u32>) {\n    // detlint: allow(hash-iter) — sorted below\n    for k in m.keys() {}\n    let t = Instant::now(); // detlint: allow(wall-clock)\n    let u = Instant::now(); // detlint: allow(hash-iter)\n}\n";
        assert_eq!(rules(text), vec![(5, "wall-clock")]);
    }

    #[test]
    fn bare_allow_suppresses_everything() {
        let text = "fn f() {\n    // detlint: allow\n    let t = SystemTime::now();\n}\n";
        assert_eq!(rules(text), vec![]);
    }

    #[test]
    fn test_modules_are_skipped() {
        let text = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { let t = Instant::now(); }\n}\nfn h() { let t = Instant::now(); }\n";
        assert_eq!(rules(text), vec![(6, "wall-clock")]);
    }

    #[test]
    fn string_literals_and_comments_do_not_trip_rules() {
        let text = "fn f() {\n    let s = \"Instant::now\";\n    // Instant::now in a comment\n    let c = '{';\n}\n";
        assert_eq!(rules(text), vec![]);
    }

    #[test]
    fn drain_and_into_iter_count_as_iteration() {
        let text = "fn f(mut m: HashMap<u32, u32>) {\n    for x in m.drain() {}\n    let v: Vec<_> = m.into_iter().collect();\n}\n";
        assert_eq!(rules(text), vec![(2, "hash-iter"), (3, "hash-iter")]);
    }
}
