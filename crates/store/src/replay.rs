//! Replay scripts and divergence tracking for the validation query engine.

use isopredict_history::{History, SessionId, TxnId};

/// What a predicted execution dictates for the reads of one session: a map
/// from session-wide read position to the predicted writer transaction.
///
/// A [`ReplayScript`] is derived from a predicted [`History`]; during
/// validation the store matches the current session and read position against
/// the script to decide which writer the read should observe (Section 5).
#[derive(Debug, Clone, Default)]
pub struct ReplayScript {
    /// `choices[session][read position] = (key name, predicted writer)`.
    /// The writer is identified by `(session index, transaction index within
    /// the session)` so that it can be resolved against the *validating*
    /// execution's own transactions; `None` denotes the initial state.
    choices: Vec<Vec<Option<ReadChoice>>>,
    /// Session names of the predicted history, for diagnostics.
    session_names: Vec<String>,
}

/// One dictated read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadChoice {
    /// The key the predicted execution read at this position.
    pub key: String,
    /// The predicted writer: `None` for the initial state, otherwise the
    /// writer's (session index, transaction index within that session).
    pub writer: Option<(usize, usize)>,
}

impl ReplayScript {
    /// Builds a script from a predicted history.
    #[must_use]
    pub fn from_history(predicted: &History) -> ReplayScript {
        // Locate every transaction's (session, index-within-session).
        let locate = |txn: TxnId| -> Option<(usize, usize)> {
            if txn.is_initial() {
                return None;
            }
            let session = predicted.txn(txn).session?;
            let index = predicted
                .session_transactions(session)
                .iter()
                .position(|&t| t == txn)?;
            Some((session.index(), index))
        };

        let mut choices: Vec<Vec<Option<ReadChoice>>> = Vec::new();
        let mut session_names = Vec::new();
        for session in predicted.sessions() {
            session_names.push(predicted.session_name(session).to_string());
            let mut per_session: Vec<Option<ReadChoice>> = Vec::new();
            for &txn_id in predicted.session_transactions(session) {
                for event in &predicted.txn(txn_id).events {
                    if let Some(from) = event.read_from() {
                        if per_session.len() <= event.pos {
                            per_session.resize(event.pos + 1, None);
                        }
                        per_session[event.pos] = Some(ReadChoice {
                            key: predicted.key_name(event.key).to_string(),
                            writer: locate(from),
                        });
                    }
                }
            }
            choices.push(per_session);
        }
        ReplayScript {
            choices,
            session_names,
        }
    }

    /// The dictated read at `(session, position)`, if the predicted execution
    /// has one there.
    #[must_use]
    pub fn choice(&self, session: SessionId, position: usize) -> Option<&ReadChoice> {
        self.choices
            .get(session.index())
            .and_then(|reads| reads.get(position))
            .and_then(Option::as_ref)
    }

    /// Number of sessions covered by the script.
    #[must_use]
    pub fn num_sessions(&self) -> usize {
        self.choices.len()
    }

    /// The name of a session in the predicted history.
    #[must_use]
    pub fn session_name(&self, session: SessionId) -> Option<&str> {
        self.session_names.get(session.index()).map(String::as_str)
    }
}

/// Why a validating execution deviated from the predicted execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The validating execution read a key the predicted execution did not
    /// read at this position (or read a different key).
    DifferentKey,
    /// The predicted writer did not write this key in the validating
    /// execution (e.g. it aborted or took a different branch).
    WriterMissing,
    /// Reading from the predicted writer would violate the target isolation
    /// level in the validating execution.
    IsolationViolation,
    /// The validating execution issued a read at a position the predicted
    /// execution has no event for (it ran past the prediction).
    PastPrediction,
}

/// A recorded divergence between the predicted and validating executions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Session in which the divergence occurred.
    pub session: SessionId,
    /// Session-wide read position at which it occurred.
    pub position: usize,
    /// The kind of mismatch.
    pub kind: DivergenceKind,
    /// The key involved.
    pub key: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use isopredict_history::HistoryBuilder;

    #[test]
    fn script_maps_positions_to_predicted_writers() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "x", t1);
        b.read(t2, "y", TxnId::INITIAL);
        b.commit(t2);
        let predicted = b.finish();

        let script = ReplayScript::from_history(&predicted);
        assert_eq!(script.num_sessions(), 2);
        // Session s2's first read (position 0 within that session) observes t1,
        // which is session 0's transaction 0.
        let choice = script.choice(SessionId(1), 0).expect("read is scripted");
        assert_eq!(choice.key, "x");
        assert_eq!(choice.writer, Some((0, 0)));
        let second = script.choice(SessionId(1), 1).expect("read is scripted");
        assert_eq!(second.key, "y");
        assert_eq!(second.writer, None);
        // Position 5 has no scripted read.
        assert!(script.choice(SessionId(1), 5).is_none());
        assert!(script.choice(SessionId(0), 0).is_none());
    }
}
