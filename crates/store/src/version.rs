//! Versioned key storage.

use std::collections::HashMap;

use isopredict_history::TxnId;

use crate::value::Value;

/// One committed version of a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Version {
    /// The transaction (in the recorder's numbering) that wrote this version;
    /// [`TxnId::INITIAL`] for values installed by the loader.
    pub(crate) writer: TxnId,
    /// Commit sequence number, used to find the latest committed version.
    pub(crate) commit_seq: u64,
    /// The written value.
    pub(crate) value: Value,
}

/// Multi-version storage: every committed write of every key is retained so
/// that weak reads can observe old versions.
#[derive(Debug, Default, Clone)]
pub(crate) struct VersionedStore {
    versions: HashMap<String, Vec<Version>>,
}

impl VersionedStore {
    pub(crate) fn new() -> Self {
        VersionedStore::default()
    }

    /// Installs an initial-state value (attributed to `t0`, commit sequence 0).
    pub(crate) fn set_initial(&mut self, key: &str, value: Value) {
        let versions = self.versions.entry(key.to_string()).or_default();
        // At most one initial version per key; overwrite it if the loader runs twice.
        versions.retain(|v| !v.writer.is_initial());
        versions.insert(
            0,
            Version {
                writer: TxnId::INITIAL,
                commit_seq: 0,
                value,
            },
        );
    }

    /// Appends a committed version.
    pub(crate) fn install(&mut self, key: &str, writer: TxnId, commit_seq: u64, value: Value) {
        self.versions
            .entry(key.to_string())
            .or_default()
            .push(Version {
                writer,
                commit_seq,
                value,
            });
    }

    /// All versions of `key` (oldest first). Missing keys have no versions.
    pub(crate) fn versions(&self, key: &str) -> &[Version] {
        self.versions.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The latest committed version of `key`.
    pub(crate) fn latest(&self, key: &str) -> Option<&Version> {
        self.versions(key).iter().max_by_key(|v| v.commit_seq)
    }

    /// The version of `key` written by `writer`, if any.
    pub(crate) fn by_writer(&self, key: &str, writer: TxnId) -> Option<&Version> {
        self.versions(key).iter().find(|v| v.writer == writer)
    }

    /// Every key that has at least one version, in no particular order.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn keys(&self) -> impl Iterator<Item = &str> {
        // detlint: allow(hash-iter) — test-only accessor; callers count or
        // sort, never depend on the order.
        self.versions.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_then_committed_versions() {
        let mut store = VersionedStore::new();
        store.set_initial("x", Value::Int(0));
        store.install("x", TxnId(1), 1, Value::Int(10));
        store.install("x", TxnId(2), 2, Value::Int(20));
        assert_eq!(store.versions("x").len(), 3);
        assert_eq!(store.latest("x").unwrap().value, Value::Int(20));
        assert_eq!(
            store.by_writer("x", TxnId(1)).unwrap().value,
            Value::Int(10)
        );
        assert_eq!(
            store.by_writer("x", TxnId::INITIAL).unwrap().value,
            Value::Int(0)
        );
        assert!(store.by_writer("x", TxnId(9)).is_none());
        assert!(store.versions("missing").is_empty());
        assert!(store.latest("missing").is_none());
        assert_eq!(store.keys().count(), 1);
    }

    #[test]
    fn re_running_the_loader_replaces_the_initial_version() {
        let mut store = VersionedStore::new();
        store.set_initial("x", Value::Int(1));
        store.set_initial("x", Value::Int(2));
        let initials: Vec<_> = store
            .versions("x")
            .iter()
            .filter(|v| v.writer.is_initial())
            .collect();
        assert_eq!(initials.len(), 1);
        assert_eq!(initials[0].value, Value::Int(2));
    }
}
