//! Writer-choice logic: which committed write should a read observe?

use isopredict_history::{causal, readcommitted, HistoryBuilder, TxnId};

use crate::isolation::IsolationLevel;

/// Returns the candidates (a subset of `candidates`) from which the open
/// transaction may legally read `key` without violating `level`.
///
/// The check is the axiomatic one: tentatively extend the recorded history
/// with the candidate read, commit the open transaction's prefix, and test the
/// isolation level on the resulting history. Histories hold a few dozen
/// transactions, so the polynomial checks are cheap.
pub(crate) fn legal_writers(
    builder: &HistoryBuilder,
    open_txn: TxnId,
    key: &str,
    candidates: &[TxnId],
    level: IsolationLevel,
) -> Vec<TxnId> {
    candidates
        .iter()
        .copied()
        .filter(|&writer| is_legal(builder, open_txn, key, writer, level))
        .collect()
}

/// Whether reading `key` from `writer` keeps the execution valid under `level`.
pub(crate) fn is_legal(
    builder: &HistoryBuilder,
    open_txn: TxnId,
    key: &str,
    writer: TxnId,
    level: IsolationLevel,
) -> bool {
    let mut tentative = builder.clone();
    tentative.read(open_txn, key, writer);
    tentative.commit(open_txn);
    let history = tentative.finish();
    match level {
        IsolationLevel::Causal => causal::is_causal(&history),
        IsolationLevel::ReadCommitted => readcommitted::is_read_committed(&history),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isopredict_history::SessionId;

    /// Session A writes x twice (t1 then t2); session B already read x from
    /// t2. Under causal, a later read of x in the same session-B transaction
    /// may not go back to t1 or the initial state.
    fn builder_with_stale_read() -> (HistoryBuilder, TxnId) {
        let mut b = HistoryBuilder::new();
        let sa = b.session("A");
        let sb = b.session("B");
        let t1 = b.begin(sa);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(sa);
        b.read(t2, "x", t1);
        b.write(t2, "x");
        b.commit(t2);
        let open = b.begin(sb);
        b.read(open, "x", t2);
        (b, open)
    }

    #[test]
    fn causal_forbids_going_back_in_time_within_a_transaction() {
        let (builder, open) = builder_with_stale_read();
        let t1 = TxnId(1);
        let t2 = TxnId(2);
        let legal = legal_writers(
            &builder,
            open,
            "x",
            &[TxnId::INITIAL, t1, t2],
            IsolationLevel::Causal,
        );
        assert_eq!(legal, vec![t2]);
    }

    #[test]
    fn read_committed_also_forbids_observing_older_writes_after_newer_ones() {
        // Under rc, the second read of x may not observe t1 (hb-before t2)
        // after the first read observed t2: that is exactly ww_rc.
        let (builder, open) = builder_with_stale_read();
        let t1 = TxnId(1);
        let t2 = TxnId(2);
        assert!(!is_legal(
            &builder,
            open,
            "x",
            t1,
            IsolationLevel::ReadCommitted
        ));
        assert!(is_legal(
            &builder,
            open,
            "x",
            t2,
            IsolationLevel::ReadCommitted
        ));
    }

    #[test]
    fn fresh_transactions_may_read_anything_under_causal() {
        let mut b = HistoryBuilder::new();
        let sa = b.session("A");
        let sb = b.session("B");
        let t1 = b.begin(sa);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(sa);
        b.write(t2, "x");
        b.commit(t2);
        let open = b.begin(sb);
        let _ = SessionId(1);
        let legal = legal_writers(
            &b,
            open,
            "x",
            &[TxnId::INITIAL, TxnId(1), TxnId(2)],
            IsolationLevel::Causal,
        );
        assert_eq!(legal, vec![TxnId::INITIAL, TxnId(1), TxnId(2)]);
    }

    #[test]
    fn session_order_constrains_later_transactions_of_the_same_session() {
        // Session B's first transaction read x from t2; a *later* transaction
        // of session B must not read x from the initial state under causal.
        let mut b = HistoryBuilder::new();
        let sa = b.session("A");
        let sb = b.session("B");
        let t1 = b.begin(sa);
        b.write(t1, "x");
        b.commit(t1);
        let tb1 = b.begin(sb);
        b.read(tb1, "x", t1);
        b.commit(tb1);
        let open = b.begin(sb);
        assert!(!is_legal(
            &b,
            open,
            "x",
            TxnId::INITIAL,
            IsolationLevel::Causal
        ));
        assert!(is_legal(&b, open, "x", t1, IsolationLevel::Causal));
        // Read committed is weaker and allows the stale read across
        // transactions (it only constrains reads within one transaction).
        assert!(is_legal(
            &b,
            open,
            "x",
            TxnId::INITIAL,
            IsolationLevel::ReadCommitted
        ));
    }
}
