//! Writer-choice logic: which committed write should a read observe?

use isopredict_history::{HistoryBuilder, TxnId};

use crate::isolation::IsolationLevel;

/// Returns the candidates (a subset of `candidates`) from which the open
/// transaction may legally read `key` without violating `level`.
///
/// The check is the axiomatic one: tentatively extend the recorded history
/// with the candidate read, commit the open transaction's prefix, and test the
/// isolation level on the resulting history through its
/// [`isopredict_history::IsolationSemantics`] seam row. Histories hold a few
/// dozen transactions, so the checks are cheap.
pub(crate) fn legal_writers(
    builder: &HistoryBuilder,
    open_txn: TxnId,
    declared_writes: &[String],
    key: &str,
    candidates: &[TxnId],
    level: IsolationLevel,
) -> Vec<TxnId> {
    candidates
        .iter()
        .copied()
        .filter(|&writer| is_legal(builder, open_txn, declared_writes, key, writer, level))
        .collect()
}

/// Whether reading `key` from `writer` keeps the execution valid under `level`.
///
/// Levels whose semantics constrain write–write conflicts (first-committer
/// wins; see [`isopredict_history::IsolationSemantics::write_conflicts`])
/// additionally charge the open transaction with its *declared* write set, so
/// that a read-modify-write never observes a writer it would conflict with at
/// commit time. Declared writes are an over-approximation supplied by the
/// application via [`crate::OpenTxn::declare_writes`].
pub(crate) fn is_legal(
    builder: &HistoryBuilder,
    open_txn: TxnId,
    declared_writes: &[String],
    key: &str,
    writer: TxnId,
    level: IsolationLevel,
) -> bool {
    let semantics = level.semantics();
    let mut tentative = builder.clone();
    tentative.read(open_txn, key, writer);
    if semantics.write_conflicts {
        for write_key in declared_writes {
            tentative.write(open_txn, write_key);
        }
    }
    tentative.commit(open_txn);
    semantics.is_conformant(&tentative.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use isopredict_history::SessionId;

    const NO_WRITES: &[String] = &[];

    /// Session A writes x twice (t1 then t2); session B already read x from
    /// t2. Under causal, a later read of x in the same session-B transaction
    /// may not go back to t1 or the initial state.
    fn builder_with_stale_read() -> (HistoryBuilder, TxnId) {
        let mut b = HistoryBuilder::new();
        let sa = b.session("A");
        let sb = b.session("B");
        let t1 = b.begin(sa);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(sa);
        b.read(t2, "x", t1);
        b.write(t2, "x");
        b.commit(t2);
        let open = b.begin(sb);
        b.read(open, "x", t2);
        (b, open)
    }

    #[test]
    fn causal_forbids_going_back_in_time_within_a_transaction() {
        let (builder, open) = builder_with_stale_read();
        let t1 = TxnId(1);
        let t2 = TxnId(2);
        let legal = legal_writers(
            &builder,
            open,
            NO_WRITES,
            "x",
            &[TxnId::INITIAL, t1, t2],
            IsolationLevel::Causal,
        );
        assert_eq!(legal, vec![t2]);
    }

    #[test]
    fn read_committed_also_forbids_observing_older_writes_after_newer_ones() {
        // Under rc, the second read of x may not observe t1 (hb-before t2)
        // after the first read observed t2: that is exactly ww_rc.
        let (builder, open) = builder_with_stale_read();
        let t1 = TxnId(1);
        let t2 = TxnId(2);
        assert!(!is_legal(
            &builder,
            open,
            NO_WRITES,
            "x",
            t1,
            IsolationLevel::ReadCommitted
        ));
        assert!(is_legal(
            &builder,
            open,
            NO_WRITES,
            "x",
            t2,
            IsolationLevel::ReadCommitted
        ));
    }

    #[test]
    fn fresh_transactions_may_read_anything_under_causal() {
        let mut b = HistoryBuilder::new();
        let sa = b.session("A");
        let sb = b.session("B");
        let t1 = b.begin(sa);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(sa);
        b.write(t2, "x");
        b.commit(t2);
        let open = b.begin(sb);
        let _ = SessionId(1);
        let legal = legal_writers(
            &b,
            open,
            NO_WRITES,
            "x",
            &[TxnId::INITIAL, TxnId(1), TxnId(2)],
            IsolationLevel::Causal,
        );
        assert_eq!(legal, vec![TxnId::INITIAL, TxnId(1), TxnId(2)]);
    }

    #[test]
    fn session_order_constrains_later_transactions_of_the_same_session() {
        // Session B's first transaction read x from t2; a *later* transaction
        // of session B must not read x from the initial state under causal.
        let mut b = HistoryBuilder::new();
        let sa = b.session("A");
        let sb = b.session("B");
        let t1 = b.begin(sa);
        b.write(t1, "x");
        b.commit(t1);
        let tb1 = b.begin(sb);
        b.read(tb1, "x", t1);
        b.commit(tb1);
        let open = b.begin(sb);
        assert!(!is_legal(
            &b,
            open,
            NO_WRITES,
            "x",
            TxnId::INITIAL,
            IsolationLevel::Causal
        ));
        assert!(is_legal(
            &b,
            open,
            NO_WRITES,
            "x",
            t1,
            IsolationLevel::Causal
        ));
        // Read committed is weaker and allows the stale read across
        // transactions (it only constrains reads within one transaction).
        assert!(is_legal(
            &b,
            open,
            NO_WRITES,
            "x",
            TxnId::INITIAL,
            IsolationLevel::ReadCommitted
        ));
    }

    #[test]
    fn snapshot_isolation_forces_rmw_transactions_onto_the_latest_writer() {
        // A chain of committed read-modify-writes of x; the open transaction
        // *declares* it will write x (a read-modify-write too).
        // First-committer-wins then forbids reading anything but the latest
        // writer — exactly what rules out the lost update that causal still
        // allows.
        let mut b = HistoryBuilder::new();
        let sa = b.session("A");
        let sb = b.session("B");
        let t1 = b.begin(sa);
        b.read(t1, "x", TxnId::INITIAL);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(sa);
        b.read(t2, "x", t1);
        b.write(t2, "x");
        b.commit(t2);
        let open = b.begin(sb);
        let declared = vec!["x".to_string()];
        let si_legal = legal_writers(
            &b,
            open,
            &declared,
            "x",
            &[TxnId::INITIAL, t1, t2],
            IsolationLevel::Snapshot,
        );
        assert_eq!(si_legal, vec![t2]);
        // Without the declared write (a read-only transaction) any consistent
        // snapshot is fine.
        let read_only = legal_writers(
            &b,
            open,
            NO_WRITES,
            "x",
            &[TxnId::INITIAL, t1, t2],
            IsolationLevel::Snapshot,
        );
        assert_eq!(read_only, vec![TxnId::INITIAL, t1, t2]);
        // Causal ignores the declared writes entirely.
        let causal_legal = legal_writers(
            &b,
            open,
            &declared,
            "x",
            &[TxnId::INITIAL, t1, t2],
            IsolationLevel::Causal,
        );
        assert_eq!(causal_legal, vec![TxnId::INITIAL, t1, t2]);
    }

    #[test]
    fn snapshot_isolation_allows_write_skew_reads() {
        // t1 read x and y and updated y; the open transaction reads y stale
        // and declares a write of x only — no write–write conflict, so the
        // stale read stays legal (this is exactly how write skew arises).
        let mut b = HistoryBuilder::new();
        let sa = b.session("A");
        let sb = b.session("B");
        let t1 = b.begin(sa);
        b.read(t1, "x", TxnId::INITIAL);
        b.read(t1, "y", TxnId::INITIAL);
        b.write(t1, "y");
        b.commit(t1);
        let open = b.begin(sb);
        let declared = vec!["x".to_string()];
        assert!(is_legal(
            &b,
            open,
            &declared,
            "y",
            TxnId::INITIAL,
            IsolationLevel::Snapshot
        ));
        // Declaring a write of y instead creates the conflict and forbids the
        // stale read.
        let conflicting = vec!["y".to_string()];
        assert!(!is_legal(
            &b,
            open,
            &conflicting,
            "y",
            TxnId::INITIAL,
            IsolationLevel::Snapshot
        ));
    }
}
