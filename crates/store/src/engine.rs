//! The store engine: sessions, transactions, recording, and the four
//! execution modes.

use std::collections::HashMap;

use parking_lot::Mutex;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use isopredict_history::{History, HistoryBuilder, SessionId, Trace, TraceMeta, TxnId};

use crate::chooser;
use crate::isolation::{IsolationLevel, StoreMode};
use crate::replay::{Divergence, DivergenceKind};
use crate::value::Value;
use crate::version::VersionedStore;

/// Aggregate counters for one execution.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Read events recorded (excluding reads served from the transaction's
    /// own write buffer).
    pub reads: u64,
    /// Write events recorded.
    pub writes: u64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted (rolled back) transactions.
    pub aborts: u64,
}

#[derive(Debug)]
struct OpenState {
    txn: TxnId,
    write_buffer: HashMap<String, Value>,
    /// Keys the application announced it may write (see
    /// [`OpenTxn::declare_writes`]); consulted by write-conflict-sensitive
    /// isolation levels when choosing legal writers.
    declared_writes: Vec<String>,
}

#[derive(Debug)]
struct Inner {
    mode: StoreMode,
    rng: ChaCha8Rng,
    store: VersionedStore,
    builder: HistoryBuilder,
    /// Committed transactions per session, in commit order (builder ids).
    committed_per_session: Vec<Vec<TxnId>>,
    open: HashMap<SessionId, OpenState>,
    commit_seq: u64,
    divergences: Vec<Divergence>,
    stats: RunStats,
    /// Provenance to stamp on traces of this execution (see
    /// [`Engine::stamp_provenance`]).
    provenance: Option<TraceMeta>,
}

/// The transactional key–value store engine.
///
/// See the [crate-level documentation](crate) for an overview and example.
#[derive(Debug)]
pub struct Engine {
    inner: Mutex<Inner>,
}

impl Engine {
    /// Creates an engine running in `mode`.
    #[must_use]
    pub fn new(mode: StoreMode) -> Self {
        let seed = match &mode {
            StoreMode::WeakRandom { seed, .. } => *seed,
            _ => 0,
        };
        Engine {
            inner: Mutex::new(Inner {
                mode,
                rng: ChaCha8Rng::seed_from_u64(seed),
                store: VersionedStore::new(),
                builder: HistoryBuilder::new(),
                committed_per_session: Vec::new(),
                open: HashMap::new(),
                commit_seq: 0,
                divergences: Vec::new(),
                stats: RunStats::default(),
                provenance: None,
            }),
        }
    }

    /// Installs an initial value for `key`, attributed to the initial-state
    /// transaction `t0`. Workloads use this for their load phase, which is
    /// not part of the analyzed history.
    pub fn set_initial(&self, key: &str, value: Value) {
        self.inner.lock().store.set_initial(key, value);
    }

    /// Opens a client session.
    pub fn client(&self, name: impl Into<String>) -> Client<'_> {
        let session = self.inner.lock().builder.session(name.into());
        let mut inner = self.inner.lock();
        while inner.committed_per_session.len() <= session.index() {
            inner.committed_per_session.push(Vec::new());
        }
        Client {
            engine: self,
            session,
        }
    }

    /// The execution recorded so far as a [`History`].
    #[must_use]
    pub fn history(&self) -> History {
        self.inner.lock().builder.clone().finish()
    }

    /// Stamps provenance metadata on this execution. The recorder attaches it
    /// to every [`Trace`] produced by [`Engine::trace`], so downstream corpus
    /// indexes are populated from the trace itself instead of being
    /// re-derived. Call once, before (or right after) running the workload.
    pub fn stamp_provenance(&self, meta: TraceMeta) {
        self.inner.lock().provenance = Some(meta);
    }

    /// The provenance stamped with [`Engine::stamp_provenance`], if any.
    #[must_use]
    pub fn provenance(&self) -> Option<TraceMeta> {
        self.inner.lock().provenance.clone()
    }

    /// A stable label for the mode this engine runs in (see
    /// [`StoreMode::label`]).
    #[must_use]
    pub fn mode_label(&self) -> String {
        self.inner.lock().mode.label()
    }

    /// The execution recorded so far as a serializable [`Trace`], carrying
    /// any provenance stamped with [`Engine::stamp_provenance`].
    #[must_use]
    pub fn trace(&self) -> Trace {
        let mut trace = Trace::from_history(&self.history());
        trace.meta = self.provenance();
        trace
    }

    /// Reads the latest committed value of `key` without going through a
    /// transaction and without recording an event. Used by workload
    /// assertion checks that inspect the final state.
    #[must_use]
    pub fn peek(&self, key: &str) -> Option<Value> {
        self.inner
            .lock()
            .store
            .latest(key)
            .map(|version| version.value.clone())
    }

    /// Like [`Engine::peek`] but returns an integer, treating a missing value
    /// as `default`.
    #[must_use]
    pub fn peek_int(&self, key: &str, default: i64) -> i64 {
        self.peek(key).and_then(|v| v.as_int()).unwrap_or(default)
    }

    /// Divergences recorded while running in [`StoreMode::Controlled`].
    #[must_use]
    pub fn divergences(&self) -> Vec<Divergence> {
        self.inner.lock().divergences.clone()
    }

    /// Aggregate execution counters.
    #[must_use]
    pub fn stats(&self) -> RunStats {
        self.inner.lock().stats
    }

    fn begin(&self, session: SessionId) -> TxnId {
        let mut inner = self.inner.lock();
        assert!(
            !inner.open.contains_key(&session),
            "session already has an open transaction"
        );
        let txn = inner.builder.begin(session);
        inner.open.insert(
            session,
            OpenState {
                txn,
                write_buffer: HashMap::new(),
                declared_writes: Vec::new(),
            },
        );
        txn
    }

    fn declare_writes(&self, session: SessionId, keys: Vec<String>) {
        let mut inner = self.inner.lock();
        let open = inner.open.get_mut(&session).expect("transaction is open");
        for key in keys {
            if !open.declared_writes.contains(&key) {
                open.declared_writes.push(key);
            }
        }
    }

    fn get(&self, session: SessionId, key: &str) -> Option<Value> {
        let mut inner = self.inner.lock();
        let open = inner.open.get(&session).expect("transaction is open");
        let open_txn = open.txn;

        // Read-your-own-writes from the buffer; not an event of the history.
        if let Some(value) = open.write_buffer.get(key) {
            return Some(value.clone());
        }

        let writer = inner.choose_writer(session, open_txn, key);
        let value = inner
            .store
            .by_writer(key, writer)
            .map(|version| version.value.clone());
        inner.builder.read(open_txn, key, writer);
        inner.stats.reads += 1;
        value
    }

    fn put(&self, session: SessionId, key: &str, value: Value) {
        let mut inner = self.inner.lock();
        let open = inner.open.get_mut(&session).expect("transaction is open");
        let open_txn = open.txn;
        open.write_buffer.insert(key.to_string(), value);
        inner.builder.write(open_txn, key);
        inner.stats.writes += 1;
    }

    fn commit(&self, session: SessionId) {
        let mut inner = self.inner.lock();
        let open = inner.open.remove(&session).expect("transaction is open");
        inner.commit_seq += 1;
        let seq = inner.commit_seq;
        // detlint: allow(hash-iter) — every buffered write installs under the
        // same commit seq and keys are distinct, so install order is
        // unobservable.
        for (key, value) in open.write_buffer {
            inner.store.install(&key, open.txn, seq, value);
        }
        inner.builder.commit(open.txn);
        inner.committed_per_session[session.index()].push(open.txn);
        inner.stats.commits += 1;
    }

    fn rollback(&self, session: SessionId) {
        let mut inner = self.inner.lock();
        let open = inner.open.remove(&session).expect("transaction is open");
        inner.builder.abort(open.txn);
        inner.stats.aborts += 1;
    }
}

impl Inner {
    /// Decides which committed transaction the next read of `key` by
    /// `open_txn` (running in `session`) observes, according to the mode.
    fn choose_writer(&mut self, session: SessionId, open_txn: TxnId, key: &str) -> TxnId {
        let latest = self
            .store
            .latest(key)
            .map(|v| v.writer)
            .unwrap_or(TxnId::INITIAL);

        // Detach the mode from `self` so the arms below may borrow the rest
        // of the engine state mutably; the chooser-driven arms additionally
        // detach the open transaction's declared write set (the recording
        // modes never consult it, so they skip the clone).
        let mode = self.mode.clone();
        match &mode {
            StoreMode::SerializableRecord | StoreMode::RealisticRc => latest,
            StoreMode::WeakRandom { level, .. } => {
                let level = *level;
                let declared = self.declared_writes_of(session);
                let candidates = self.candidates(key);
                let legal = chooser::legal_writers(
                    &self.builder,
                    open_txn,
                    &declared,
                    key,
                    &candidates,
                    level,
                );
                legal.choose(&mut self.rng).copied().unwrap_or(latest)
            }
            StoreMode::Controlled { level, script } => {
                let level = *level;
                let declared = self.declared_writes_of(session);
                let position = self.builder.next_position(session);
                let Some(choice) = script.choice(session, position) else {
                    self.divergences.push(Divergence {
                        session,
                        position,
                        kind: DivergenceKind::PastPrediction,
                        key: key.to_string(),
                    });
                    return self.fallback_writer(&declared, open_txn, key, level, latest);
                };
                if choice.key != key {
                    self.divergences.push(Divergence {
                        session,
                        position,
                        kind: DivergenceKind::DifferentKey,
                        key: key.to_string(),
                    });
                    return self.fallback_writer(&declared, open_txn, key, level, latest);
                }
                // Resolve the predicted writer against this (validating) execution.
                let resolved = match choice.writer {
                    None => Some(TxnId::INITIAL),
                    Some((s, i)) => self
                        .committed_per_session
                        .get(s)
                        .and_then(|txns| txns.get(i))
                        .copied(),
                };
                let Some(writer) = resolved else {
                    self.divergences.push(Divergence {
                        session,
                        position,
                        kind: DivergenceKind::WriterMissing,
                        key: key.to_string(),
                    });
                    return self.fallback_writer(&declared, open_txn, key, level, latest);
                };
                let wrote_key = writer.is_initial() || self.store.by_writer(key, writer).is_some();
                if !wrote_key {
                    self.divergences.push(Divergence {
                        session,
                        position,
                        kind: DivergenceKind::WriterMissing,
                        key: key.to_string(),
                    });
                    return self.fallback_writer(&declared, open_txn, key, level, latest);
                }
                if !chooser::is_legal(&self.builder, open_txn, &declared, key, writer, level) {
                    self.divergences.push(Divergence {
                        session,
                        position,
                        kind: DivergenceKind::IsolationViolation,
                        key: key.to_string(),
                    });
                    return self.fallback_writer(&declared, open_txn, key, level, latest);
                }
                writer
            }
        }
    }

    /// The open transaction's declared write set (see
    /// [`OpenTxn::declare_writes`]), detached for the chooser.
    fn declared_writes_of(&self, session: SessionId) -> Vec<String> {
        self.open
            .get(&session)
            .map(|open| open.declared_writes.clone())
            .unwrap_or_default()
    }

    /// Candidate writers of `key`: every committed transaction with a version
    /// of the key, plus the initial state.
    fn candidates(&self, key: &str) -> Vec<TxnId> {
        let mut candidates: Vec<TxnId> =
            self.store.versions(key).iter().map(|v| v.writer).collect();
        if !candidates.contains(&TxnId::INITIAL) {
            candidates.push(TxnId::INITIAL);
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates
    }

    /// The writer used when the predicted execution cannot be followed: the
    /// latest *legal* writer under `level` (falling back to the latest
    /// committed writer if, unexpectedly, none is legal).
    fn fallback_writer(
        &mut self,
        declared_writes: &[String],
        open_txn: TxnId,
        key: &str,
        level: IsolationLevel,
        latest: TxnId,
    ) -> TxnId {
        let candidates = self.candidates(key);
        let legal = chooser::legal_writers(
            &self.builder,
            open_txn,
            declared_writes,
            key,
            &candidates,
            level,
        );
        // Prefer the latest committed legal writer for determinism.
        legal
            .iter()
            .copied()
            .max_by_key(|&w| {
                self.store
                    .by_writer(key, w)
                    .map(|v| v.commit_seq)
                    .unwrap_or(0)
            })
            .unwrap_or(latest)
    }
}

/// A client session of the engine.
#[derive(Debug)]
pub struct Client<'e> {
    engine: &'e Engine,
    session: SessionId,
}

impl<'e> Client<'e> {
    /// The session identifier in the recorded history.
    #[must_use]
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Starts a transaction.
    ///
    /// # Panics
    ///
    /// Panics if the session already has an open transaction.
    pub fn begin(&self) -> OpenTxn<'_> {
        let txn = self.engine.begin(self.session);
        OpenTxn {
            engine: self.engine,
            session: self.session,
            txn,
            finished: false,
        }
    }
}

/// An open transaction. Dropping it without calling [`OpenTxn::commit`] rolls
/// it back.
#[derive(Debug)]
pub struct OpenTxn<'e> {
    engine: &'e Engine,
    session: SessionId,
    txn: TxnId,
    finished: bool,
}

impl<'e> OpenTxn<'e> {
    /// The transaction's identifier in the recorder's numbering.
    #[must_use]
    pub fn id(&self) -> TxnId {
        self.txn
    }

    /// Declares keys this transaction may write before it commits.
    ///
    /// Write-conflict-sensitive isolation levels (snapshot isolation's
    /// first-committer-wins rule) charge the transaction with its declared
    /// writes when picking legal writers for its reads, so a read-modify-write
    /// never observes a version it would conflict with at commit time.
    /// Over-declaring (a conditional write that ends up skipped) is sound —
    /// the chooser just becomes more conservative; under-declaring can let a
    /// later write break the level. Levels without write-conflict rules
    /// (causal, read committed) ignore the declaration entirely.
    pub fn declare_writes<I, K>(&mut self, keys: I)
    where
        I: IntoIterator<Item = K>,
        K: Into<String>,
    {
        self.engine
            .declare_writes(self.session, keys.into_iter().map(Into::into).collect());
    }

    /// Reads `key`, returning `None` if the key has no value (never written,
    /// not even by the loader).
    pub fn get(&mut self, key: &str) -> Option<Value> {
        self.engine.get(self.session, key)
    }

    /// Reads `key` as an integer, treating a missing value as `default`.
    pub fn get_int(&mut self, key: &str, default: i64) -> i64 {
        self.get(key).and_then(|v| v.as_int()).unwrap_or(default)
    }

    /// Writes `key`.
    pub fn put(&mut self, key: &str, value: impl Into<Value>) {
        self.engine.put(self.session, key, value.into());
    }

    /// Commits the transaction.
    pub fn commit(mut self) {
        self.engine.commit(self.session);
        self.finished = true;
    }

    /// Rolls the transaction back.
    pub fn rollback(mut self) {
        self.engine.rollback(self.session);
        self.finished = true;
    }
}

impl Drop for OpenTxn<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.engine.rollback(self.session);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::ReplayScript;
    use isopredict_history::serializability;

    #[test]
    fn serializable_recording_reads_latest_and_builds_history() {
        let engine = Engine::new(StoreMode::SerializableRecord);
        engine.set_initial("acct", Value::Int(0));
        let c1 = engine.client("c1");
        let c2 = engine.client("c2");

        let mut t1 = c1.begin();
        let balance = t1.get_int("acct", 0);
        t1.put("acct", balance + 50);
        t1.commit();

        let mut t2 = c2.begin();
        let balance = t2.get_int("acct", 0);
        assert_eq!(balance, 50, "observed executions read the latest write");
        t2.put("acct", balance + 60);
        t2.commit();

        let history = engine.history();
        assert_eq!(history.len(), 3);
        assert!(serializability::check(&history).is_serializable());
        assert_eq!(engine.stats().commits, 2);
        assert_eq!(engine.stats().reads, 2);
        assert_eq!(engine.stats().writes, 2);
    }

    #[test]
    fn traces_carry_stamped_provenance() {
        let engine = Engine::new(StoreMode::SerializableRecord);
        assert_eq!(engine.mode_label(), "serializable-record");
        assert!(engine.trace().meta.is_none());
        engine.stamp_provenance(TraceMeta {
            benchmark: "Smallbank".to_string(),
            seed: 3,
            sessions: 1,
            txns_per_session: 1,
            scale: 4,
            isolation: engine.mode_label(),
            store_version: crate::VERSION.to_string(),
            committed_plan_indices: None,
        });
        let c = engine.client("c");
        let mut t = c.begin();
        t.put("x", 1);
        t.commit();
        let trace = engine.trace();
        let meta = trace.meta.expect("provenance stamped");
        assert_eq!(meta.benchmark, "Smallbank");
        assert_eq!(meta.isolation, "serializable-record");
        assert_eq!(meta.store_version, crate::VERSION);
        assert_eq!(trace.sessions.len(), 1);
        assert_eq!(trace.sessions[0].transactions.len(), 1);
    }

    #[test]
    fn read_own_writes_are_served_from_the_buffer() {
        let engine = Engine::new(StoreMode::SerializableRecord);
        let c = engine.client("c");
        let mut t = c.begin();
        t.put("x", 7);
        assert_eq!(t.get("x"), Some(Value::Int(7)));
        t.commit();
        // The read-own-write is not an event.
        let history = engine.history();
        assert_eq!(history.num_reads(), 0);
        assert_eq!(history.num_writes(), 1);
    }

    #[test]
    fn rollback_discards_writes_and_is_not_in_the_history() {
        let engine = Engine::new(StoreMode::SerializableRecord);
        engine.set_initial("x", Value::Int(1));
        let c = engine.client("c");
        let mut t = c.begin();
        t.put("x", 99);
        t.rollback();
        let mut t = c.begin();
        assert_eq!(t.get("x"), Some(Value::Int(1)));
        t.commit();
        let history = engine.history();
        assert_eq!(history.len(), 2);
        assert_eq!(engine.stats().aborts, 1);
    }

    #[test]
    fn dropping_an_open_transaction_rolls_it_back() {
        let engine = Engine::new(StoreMode::SerializableRecord);
        let c = engine.client("c");
        {
            let mut t = c.begin();
            t.put("x", 1);
            // dropped without commit
        }
        assert_eq!(engine.stats().aborts, 1);
        let mut t = c.begin();
        assert_eq!(t.get("x"), None);
        t.commit();
    }

    #[test]
    fn weak_random_causal_executions_stay_causal() {
        for seed in 0..5 {
            let engine = Engine::new(StoreMode::WeakRandom {
                level: IsolationLevel::Causal,
                seed,
            });
            engine.set_initial("acct", Value::Int(0));
            let c1 = engine.client("c1");
            let c2 = engine.client("c2");
            for client in [&c1, &c2] {
                let mut t = client.begin();
                let balance = t.get_int("acct", 0);
                t.put("acct", balance + 10);
                t.commit();
            }
            let history = engine.history();
            assert!(
                isopredict_history::causal::is_causal(&history),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn weak_random_rc_executions_stay_read_committed() {
        for seed in 0..5 {
            let engine = Engine::new(StoreMode::WeakRandom {
                level: IsolationLevel::ReadCommitted,
                seed,
            });
            engine.set_initial("x", Value::Int(0));
            engine.set_initial("y", Value::Int(0));
            let c1 = engine.client("c1");
            let c2 = engine.client("c2");
            for (client, key) in [(&c1, "x"), (&c2, "y")] {
                let mut t = client.begin();
                let _ = t.get(key);
                let _ = t.get("x");
                t.put(key, 1);
                t.commit();
            }
            let history = engine.history();
            assert!(
                isopredict_history::readcommitted::is_read_committed(&history),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn weak_random_snapshot_executions_stay_si_and_never_lose_updates() {
        // Racing read-modify-writes with declared write sets: under snapshot
        // isolation the second deposit must observe the first (first-committer
        // wins), so no seed may lose an update.
        for seed in 0..10 {
            let engine = Engine::new(StoreMode::WeakRandom {
                level: IsolationLevel::Snapshot,
                seed,
            });
            engine.set_initial("acct", Value::Int(0));
            let c1 = engine.client("c1");
            let c2 = engine.client("c2");
            for client in [&c1, &c2] {
                let mut t = client.begin();
                t.declare_writes(["acct"]);
                let balance = t.get_int("acct", 0);
                t.put("acct", balance + 10);
                t.commit();
            }
            let history = engine.history();
            assert!(isopredict_history::si::is_si(&history), "seed {seed}");
            assert_eq!(
                engine.peek_int("acct", 0),
                20,
                "seed {seed}: snapshot isolation must not lose updates"
            );
        }
    }

    #[test]
    fn weak_random_snapshot_can_produce_write_skew() {
        // Two withdrawals guarded by a combined-balance invariant, each
        // writing its own key: no write–write conflict, so snapshot isolation
        // lets some seed interleave them into the classic write skew.
        let mut found_write_skew = false;
        for seed in 0..40 {
            let engine = Engine::new(StoreMode::WeakRandom {
                level: IsolationLevel::Snapshot,
                seed,
            });
            engine.set_initial("x", Value::Int(50));
            engine.set_initial("y", Value::Int(50));
            let c1 = engine.client("c1");
            let c2 = engine.client("c2");
            for (client, own) in [(&c1, "x"), (&c2, "y")] {
                let mut t = client.begin();
                t.declare_writes([own]);
                let x = t.get_int("x", 0);
                let y = t.get_int("y", 0);
                if x + y >= 60 {
                    let own_balance = if own == "x" { x } else { y };
                    t.put(own, own_balance - 60);
                }
                t.commit();
            }
            let history = engine.history();
            assert!(isopredict_history::si::is_si(&history), "seed {seed}");
            if !serializability::check(&history).is_serializable() {
                found_write_skew = true;
                break;
            }
        }
        assert!(found_write_skew, "no seed produced the write-skew anomaly");
    }

    #[test]
    fn weak_random_can_produce_unserializable_executions() {
        // The racing-deposit pattern: under causal, some seed lets both
        // transactions read the initial balance, which is unserializable.
        let mut found_unserializable = false;
        for seed in 0..20 {
            let engine = Engine::new(StoreMode::WeakRandom {
                level: IsolationLevel::Causal,
                seed,
            });
            engine.set_initial("acct", Value::Int(0));
            let c1 = engine.client("c1");
            let c2 = engine.client("c2");
            for client in [&c1, &c2] {
                let mut t = client.begin();
                let balance = t.get_int("acct", 0);
                t.put("acct", balance + 10);
                t.commit();
            }
            if !serializability::check(&engine.history()).is_serializable() {
                found_unserializable = true;
                break;
            }
        }
        assert!(
            found_unserializable,
            "no seed produced the lost-update anomaly"
        );
    }

    #[test]
    fn controlled_mode_follows_the_predicted_execution() {
        // Predicted execution: both deposits read the initial state.
        let mut b = HistoryBuilder::new();
        let s1 = b.session("c1");
        let s2 = b.session("c2");
        let p1 = b.begin(s1);
        b.read(p1, "acct", TxnId::INITIAL);
        b.write(p1, "acct");
        b.commit(p1);
        let p2 = b.begin(s2);
        b.read(p2, "acct", TxnId::INITIAL);
        b.write(p2, "acct");
        b.commit(p2);
        let predicted = b.finish();
        let script = ReplayScript::from_history(&predicted);

        let engine = Engine::new(StoreMode::Controlled {
            level: IsolationLevel::Causal,
            script,
        });
        engine.set_initial("acct", Value::Int(0));
        let c1 = engine.client("c1");
        let c2 = engine.client("c2");
        for client in [&c1, &c2] {
            let mut t = client.begin();
            let balance = t.get_int("acct", 0);
            t.put("acct", balance + 10);
            t.commit();
        }
        assert!(
            engine.divergences().is_empty(),
            "{:?}",
            engine.divergences()
        );
        let history = engine.history();
        assert!(!serializability::check(&history).is_serializable());
        assert!(isopredict_history::causal::is_causal(&history));
    }

    #[test]
    fn controlled_mode_records_divergence_when_the_writer_is_missing() {
        // The predicted execution expects the second transaction to read from
        // the first, but the validating execution aborts the first
        // transaction, so the writer is missing.
        let mut b = HistoryBuilder::new();
        let s1 = b.session("c1");
        let s2 = b.session("c2");
        let p1 = b.begin(s1);
        b.read(p1, "acct", TxnId::INITIAL);
        b.write(p1, "acct");
        b.commit(p1);
        let p2 = b.begin(s2);
        b.read(p2, "acct", p1);
        b.write(p2, "acct");
        b.commit(p2);
        let predicted = b.finish();
        let script = ReplayScript::from_history(&predicted);

        let engine = Engine::new(StoreMode::Controlled {
            level: IsolationLevel::Causal,
            script,
        });
        engine.set_initial("acct", Value::Int(0));
        let c1 = engine.client("c1");
        let c2 = engine.client("c2");

        // Session c1 aborts instead of committing.
        let mut t = c1.begin();
        let _ = t.get("acct");
        t.put("acct", 999);
        t.rollback();

        let mut t = c2.begin();
        let _ = t.get("acct");
        t.put("acct", 10);
        t.commit();

        let divergences = engine.divergences();
        assert!(divergences
            .iter()
            .any(|d| d.kind == DivergenceKind::WriterMissing));
    }
}
