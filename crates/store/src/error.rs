//! Store errors.

/// Errors reported by the store engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An operation was attempted on a transaction that already finished.
    TransactionFinished,
    /// A session attempted to begin a transaction while another one was open.
    TransactionAlreadyOpen,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::TransactionFinished => {
                write!(
                    f,
                    "operation on a transaction that already committed or aborted"
                )
            }
            StoreError::TransactionAlreadyOpen => {
                write!(f, "the session already has an open transaction")
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let finished = StoreError::TransactionFinished.to_string();
        let open = StoreError::TransactionAlreadyOpen.to_string();
        assert!(finished.starts_with("operation"));
        assert!(open.contains("open transaction"));
    }
}
