//! Store execution modes.
//!
//! The isolation levels themselves — and the per-level semantics the chooser
//! dispatches through — live in [`isopredict_history::isolation`]; the store
//! re-exports [`IsolationLevel`] so its API is self-contained.

pub use isopredict_history::IsolationLevel;

use crate::replay::ReplayScript;

/// How the store chooses the writer each read observes.
#[derive(Debug, Clone)]
pub enum StoreMode {
    /// Every read returns the latest committed write; with serial transaction
    /// execution the recorded history is serializable. Used to produce the
    /// *observed* executions that feed the predictive analysis.
    SerializableRecord,
    /// Every read picks a uniformly random writer among those that keep the
    /// execution valid under the given isolation level — MonkeyDB's strategy.
    WeakRandom {
        /// Target isolation level.
        level: IsolationLevel,
        /// Seed for the random writer choices.
        seed: u64,
    },
    /// Every read returns the latest committed write, mimicking a single-node
    /// MySQL server running in `READ COMMITTED` mode (the paper's "regular
    /// execution" baseline in Table 7).
    RealisticRc,
    /// Reads follow a predicted execution whenever the paper's three
    /// conditions hold, and fall back to a weak-isolation-conforming writer
    /// (recording a divergence) when they do not — the validation query
    /// engine of Section 5.
    Controlled {
        /// Target isolation level the validating execution must preserve.
        level: IsolationLevel,
        /// The predicted execution to follow.
        script: ReplayScript,
    },
}

impl StoreMode {
    /// The isolation level this mode maintains, if it is one of the weak modes.
    #[must_use]
    pub fn isolation_level(&self) -> Option<IsolationLevel> {
        match self {
            StoreMode::SerializableRecord | StoreMode::RealisticRc => None,
            StoreMode::WeakRandom { level, .. } | StoreMode::Controlled { level, .. } => {
                Some(*level)
            }
        }
    }

    /// A stable label naming the mode (and its level, for the weak modes),
    /// used as the `isolation` field of recorded trace provenance. Corpus
    /// index keys match on this string, so it must stay stable across
    /// releases for a given mode.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            StoreMode::SerializableRecord => "serializable-record".to_string(),
            StoreMode::RealisticRc => "realistic-rc".to_string(),
            StoreMode::WeakRandom { level, .. } => format!("weak-random({level})"),
            StoreMode::Controlled { level, .. } => format!("controlled({level})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_accessors() {
        assert_eq!(StoreMode::SerializableRecord.isolation_level(), None);
        assert_eq!(StoreMode::RealisticRc.isolation_level(), None);
        for level in IsolationLevel::ALL {
            assert_eq!(
                StoreMode::WeakRandom { level, seed: 1 }.isolation_level(),
                Some(level)
            );
        }
    }

    #[test]
    fn mode_labels_are_stable_and_name_the_level() {
        assert_eq!(StoreMode::SerializableRecord.label(), "serializable-record");
        assert_eq!(StoreMode::RealisticRc.label(), "realistic-rc");
        assert_eq!(
            StoreMode::WeakRandom {
                level: IsolationLevel::Causal,
                seed: 1
            }
            .label(),
            "weak-random(causal)"
        );
    }
}
