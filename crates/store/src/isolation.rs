//! Store execution modes and isolation levels.

use serde::{Deserialize, Serialize};

use crate::replay::ReplayScript;

/// The weak isolation levels supported by the analysis (Section 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IsolationLevel {
    /// Causal consistency.
    Causal,
    /// Read committed.
    ReadCommitted,
}

impl std::fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsolationLevel::Causal => write!(f, "causal"),
            IsolationLevel::ReadCommitted => write!(f, "read committed"),
        }
    }
}

/// How the store chooses the writer each read observes.
#[derive(Debug, Clone)]
pub enum StoreMode {
    /// Every read returns the latest committed write; with serial transaction
    /// execution the recorded history is serializable. Used to produce the
    /// *observed* executions that feed the predictive analysis.
    SerializableRecord,
    /// Every read picks a uniformly random writer among those that keep the
    /// execution valid under the given isolation level — MonkeyDB's strategy.
    WeakRandom {
        /// Target isolation level.
        level: IsolationLevel,
        /// Seed for the random writer choices.
        seed: u64,
    },
    /// Every read returns the latest committed write, mimicking a single-node
    /// MySQL server running in `READ COMMITTED` mode (the paper's "regular
    /// execution" baseline in Table 7).
    RealisticRc,
    /// Reads follow a predicted execution whenever the paper's three
    /// conditions hold, and fall back to a weak-isolation-conforming writer
    /// (recording a divergence) when they do not — the validation query
    /// engine of Section 5.
    Controlled {
        /// Target isolation level the validating execution must preserve.
        level: IsolationLevel,
        /// The predicted execution to follow.
        script: ReplayScript,
    },
}

impl StoreMode {
    /// The isolation level this mode maintains, if it is one of the weak modes.
    #[must_use]
    pub fn isolation_level(&self) -> Option<IsolationLevel> {
        match self {
            StoreMode::SerializableRecord | StoreMode::RealisticRc => None,
            StoreMode::WeakRandom { level, .. } | StoreMode::Controlled { level, .. } => {
                Some(*level)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_level_accessors() {
        assert_eq!(IsolationLevel::Causal.to_string(), "causal");
        assert_eq!(IsolationLevel::ReadCommitted.to_string(), "read committed");
        assert_eq!(StoreMode::SerializableRecord.isolation_level(), None);
        assert_eq!(
            StoreMode::WeakRandom {
                level: IsolationLevel::Causal,
                seed: 1
            }
            .isolation_level(),
            Some(IsolationLevel::Causal)
        );
    }
}
