//! Values stored under keys.

use serde::{Deserialize, Serialize};

/// A value stored in the data store.
///
/// The OLTP-style workloads only need integers (balances, counters) and short
/// strings (names, page text), so the value type is a small enum rather than
/// raw bytes; this also keeps recorded traces human-readable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// A UTF-8 string.
    Str(String),
}

impl Value {
    /// Returns the integer payload, if this is an [`Value::Int`].
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl From<i64> for Value {
    fn from(value: i64) -> Self {
        Value::Int(value)
    }
}

impl From<&str> for Value {
    fn from(value: &str) -> Self {
        Value::Str(value.to_string())
    }
}

impl From<String> for Value {
    fn from(value: String) -> Self {
        Value::Str(value)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_conversions() {
        let i: Value = 42i64.into();
        let s: Value = "hello".into();
        assert_eq!(i.as_int(), Some(42));
        assert_eq!(i.as_str(), None);
        assert_eq!(s.as_str(), Some("hello"));
        assert_eq!(s.as_int(), None);
        assert_eq!(Value::from("x".to_string()), Value::Str("x".to_string()));
        assert_eq!(i.to_string(), "42");
        assert_eq!(s.to_string(), "\"hello\"");
    }

    #[test]
    fn values_serialize_to_json() {
        let v = Value::Int(7);
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
