//! An in-memory, multi-version, transactional key–value store in the mold of
//! MonkeyDB, used as the substrate for recording observed executions,
//! producing randomly-weak executions, and replaying predicted executions.
//!
//! The paper's implementation extends MonkeyDB [Biswas et al., OOPSLA 2021];
//! this crate rebuilds the pieces IsoPredict needs:
//!
//! * **Recording** ([`StoreMode::SerializableRecord`]): transactions execute
//!   one at a time and every read returns the latest committed write, so the
//!   observed execution is serializable — exactly how the paper generates its
//!   input traces.
//! * **Weak random execution** ([`StoreMode::WeakRandom`]): every read picks a
//!   *random* writer among those that keep the execution valid under the
//!   target isolation level (causal or read committed). This reproduces
//!   MonkeyDB's behaviour for the Table 6/7 comparison.
//! * **Realistic read committed** ([`StoreMode::RealisticRc`]): reads return
//!   the latest committed value, modelling what a single-node MySQL instance
//!   in `READ COMMITTED` mode actually does (the paper's "regular execution"
//!   baseline).
//! * **Controlled replay** ([`StoreMode::Controlled`]): reads follow a
//!   *predicted* execution history whenever possible and record divergence
//!   when they cannot — the validation query engine of Section 5.
//!
//! Every execution is recorded as an [`isopredict_history::History`] that the
//! analysis layers consume.
//!
//! # Example
//!
//! ```
//! use isopredict_store::{Engine, StoreMode, Value};
//!
//! let engine = Engine::new(StoreMode::SerializableRecord);
//! let client = engine.client("client-1");
//! let mut txn = client.begin();
//! assert_eq!(txn.get("balance"), None);
//! txn.put("balance", Value::Int(100));
//! txn.commit();
//!
//! let history = engine.history();
//! assert_eq!(history.len(), 2); // t0 plus the deposit
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod chooser;
mod engine;
mod error;
mod isolation;
mod replay;
mod value;
mod version;

pub use engine::{Client, Engine, OpenTxn, RunStats};
pub use error::StoreError;
pub use isolation::{IsolationLevel, StoreMode};
pub use replay::{Divergence, DivergenceKind, ReplayScript};
pub use value::Value;

/// This store crate's version, stamped into recorded trace provenance so a
/// corpus can tell traces of one recorder apart from another's (the corpus
/// index key includes it).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
