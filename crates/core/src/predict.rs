//! The predictor: strategies, solving, and the exact strategy's
//! counterexample-guided search.

use std::time::{Duration, Instant};

use isopredict_history::{serializability, History, TxnId};
use isopredict_obs::{HeartbeatSample, Obs};
use isopredict_smt::{Heartbeat, SmtResult, SmtSolver, SolverPostmortem, SolverStats, TermId};

use crate::config::{PredictorConfig, Strategy};
use crate::encode::Encoder;
use crate::prediction::{extract, Prediction};

/// Why the predictor reported no prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoPredictionReason {
    /// The constraints are unsatisfiable: no feasible, weak-isolation-valid,
    /// unserializable execution can be predicted from this observation.
    Unsatisfiable,
    /// The exact strategy enumerated every feasible candidate execution and
    /// none of them was unserializable.
    ExhaustedCandidates,
}

/// Result of [`Predictor::predict`].
#[derive(Debug)]
pub enum PredictionOutcome {
    /// A feasible, weak-isolation-valid, unserializable execution was found.
    Prediction(Box<Prediction>),
    /// No prediction exists (the analogue of the paper's "Unsat" column).
    NoPrediction {
        /// Why the search concluded that no prediction exists.
        reason: NoPredictionReason,
    },
    /// The solver budget was exhausted (the analogue of the paper's
    /// "T/O"/"Unk" column).
    Unknown {
        /// The solver's flight-recorder post-mortem — final per-family
        /// conflict attribution plus the retained heartbeat ring — when one
        /// was captured. Non-deterministic-half data only: it explains where
        /// the budget went, never what the verdict would have been.
        postmortem: Option<Box<SolverPostmortem>>,
    },
}

impl PredictionOutcome {
    /// The prediction, if one was found.
    #[must_use]
    pub fn prediction(&self) -> Option<&Prediction> {
        match self {
            PredictionOutcome::Prediction(p) => Some(p),
            _ => None,
        }
    }

    /// Whether the outcome is a successful prediction.
    #[must_use]
    pub fn is_prediction(&self) -> bool {
        matches!(self, PredictionOutcome::Prediction(_))
    }

    /// Whether the outcome is a definitive "no prediction exists".
    #[must_use]
    pub fn is_no_prediction(&self) -> bool {
        matches!(self, PredictionOutcome::NoPrediction { .. })
    }

    /// Whether the solver gave up before reaching a decision.
    #[must_use]
    pub fn is_unknown(&self) -> bool {
        matches!(self, PredictionOutcome::Unknown { .. })
    }

    /// The flight-recorder post-mortem attached to an `Unknown` outcome.
    #[must_use]
    pub fn postmortem(&self) -> Option<&SolverPostmortem> {
        match self {
            PredictionOutcome::Unknown { postmortem } => postmortem.as_deref(),
            _ => None,
        }
    }
}

/// IsoPredict's predictive analysis.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Predictor {
    config: PredictorConfig,
}

impl Predictor {
    /// Creates a predictor with the given configuration.
    #[must_use]
    pub fn new(config: PredictorConfig) -> Self {
        Predictor { config }
    }

    /// The predictor's configuration.
    #[must_use]
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }

    /// Predicts an unserializable execution from an observed history.
    #[must_use]
    pub fn predict(&self, observed: &History) -> PredictionOutcome {
        self.predict_obs(observed, &Obs::off())
    }

    /// Like [`Predictor::predict`], reporting telemetry through `obs`:
    /// an `encode` span with `feasibility`/`isolation`/`unserializability`
    /// children, one `solve` span per solver call (labelled with its result),
    /// `encode.*` size counters, and `solver.*` work counters diffed around
    /// each call. With [`Obs::off`] the cost is a handful of branch checks.
    #[must_use]
    pub fn predict_obs(&self, observed: &History, obs: &Obs) -> PredictionOutcome {
        match self.config.strategy {
            Strategy::ExactStrict => self.predict_exact(observed, obs),
            Strategy::ApproxStrict | Strategy::ApproxRelaxed => self.predict_approx(observed, obs),
        }
    }

    /// Predicts over the restriction of `observed` to the transactions in
    /// `keep` (plus `t0`): the component-restricted analysis behind
    /// `isopredict-orchestrator`'s history sharding.
    ///
    /// The resulting prediction's transaction identifiers, session
    /// identifiers and event positions all refer to the *original* observed
    /// history, so component predictions can be merged back losslessly.
    ///
    /// Soundness requires `keep` to be closed under communication: no kept
    /// transaction may share a key or a session with a dropped one (as
    /// guaranteed by [`isopredict_history::connectivity::KeyComponents`]).
    /// Reads whose writer is dropped would otherwise be dropped with it,
    /// changing the analyzed application behavior.
    #[must_use]
    pub fn predict_restricted(&self, observed: &History, keep: &[TxnId]) -> PredictionOutcome {
        self.predict_restricted_obs(observed, keep, &Obs::off())
    }

    /// Like [`Predictor::predict_restricted`], reporting telemetry through
    /// `obs` (see [`Predictor::predict_obs`]).
    #[must_use]
    pub fn predict_restricted_obs(
        &self,
        observed: &History,
        keep: &[TxnId],
        obs: &Obs,
    ) -> PredictionOutcome {
        self.predict_obs(&observed.restrict(keep, false), obs)
    }

    /// The approximate strategies: one solver call over the full encoding.
    fn predict_approx(&self, observed: &History, obs: &Obs) -> PredictionOutcome {
        // detlint: allow(wall-clock) — timings feed the non-deterministic
        // report half (Prediction::constraint_gen_time), never the verdicts.
        let gen_start = Instant::now();
        let encode_span = obs.span("encode");
        let encode_obs = encode_span.obs();
        let mut encoder = Encoder::new(observed, self.config.strategy.boundary());
        encoder.smt.set_preprocessing(self.config.preprocess);
        let families = self.intern_families(&mut encoder.smt);
        {
            let _feasibility = encode_obs.span("feasibility");
            encoder.smt.set_clause_family(families.feasibility);
            encoder.encode_feasibility();
            if self.config.require_change {
                encoder.encode_require_change();
            }
        }
        {
            let _isolation = encode_obs.span("isolation");
            encoder.smt.set_clause_family(families.isolation);
            encoder.encode_isolation(self.config.isolation);
        }
        let symbols = {
            let _unser = encode_obs.span("unserializability");
            encoder.smt.set_clause_family(families.unserializability);
            encoder.encode_approx_unserializability()
        };
        count_encoding_size(obs, &encoder.smt.solver_stats());
        encode_span.finish();
        let constraint_gen_time = gen_start.elapsed();
        encoder.smt.set_conflict_budget(self.config.conflict_budget);
        install_heartbeat_bridge(&mut encoder.smt, obs, self.config.heartbeat_every);

        let before = encoder.smt.solver_stats();
        // detlint: allow(wall-clock) — solving_time is non-deterministic-half data.
        let solve_start = Instant::now();
        let solve_span = obs.span("solve");
        if self.config.preprocess {
            let pp_span = solve_span.obs().span("preprocess");
            encoder.smt.preprocess();
            pp_span.finish();
        }
        let result = encoder.smt.check();
        solve_span.label("result", smt_result_label(result));
        solve_span.finish();
        let solving_time = solve_start.elapsed();
        count_solver_work(obs, &encoder.smt.solver_stats().diff(&before));

        match result {
            SmtResult::Unsat => PredictionOutcome::NoPrediction {
                reason: NoPredictionReason::Unsatisfiable,
            },
            SmtResult::Unknown => PredictionOutcome::Unknown {
                postmortem: Some(Box::new(encoder.smt.solver_postmortem())),
            },
            SmtResult::Sat => {
                let (predicted, boundaries, changed_reads) = extract(&encoder, observed);
                // Recover the pco cycle that witnesses unserializability.
                let mut pco_graph = isopredict_history::graph::DiGraph::new(observed.len());
                for (&(t1, t2), &term) in &symbols.pco {
                    if encoder.smt.model_bool(term) == Some(true) {
                        pco_graph.add_edge(t1, t2);
                    }
                }
                let pco_cycle = pco_graph.find_cycle();
                PredictionOutcome::Prediction(Box::new(Prediction {
                    predicted,
                    boundaries,
                    changed_reads,
                    isolation: self.config.isolation,
                    strategy: self.config.strategy,
                    stats: encoder.smt.stats(),
                    constraint_gen_time,
                    solving_time,
                    pco_cycle,
                }))
            }
        }
    }

    /// The exact strategy (Section 4.2.1). Z3's universally quantified
    /// encoding is replaced by a counterexample-guided loop: enumerate
    /// feasible, isolation-valid candidate executions and accept the first
    /// whose prefix history admits no commit order. Each rejected candidate is
    /// blocked by a clause over its writer choices and boundaries.
    fn predict_exact(&self, observed: &History, obs: &Obs) -> PredictionOutcome {
        // detlint: allow(wall-clock) — timings feed the non-deterministic
        // report half (Prediction::constraint_gen_time), never the verdicts.
        let gen_start = Instant::now();
        let encode_span = obs.span("encode");
        let encode_obs = encode_span.obs();
        let mut encoder = Encoder::new(observed, self.config.strategy.boundary());
        encoder.smt.set_preprocessing(self.config.preprocess);
        let families = self.intern_families(&mut encoder.smt);
        {
            let _feasibility = encode_obs.span("feasibility");
            encoder.smt.set_clause_family(families.feasibility);
            encoder.encode_feasibility();
            if self.config.require_change {
                encoder.encode_require_change();
            }
        }
        {
            let _isolation = encode_obs.span("isolation");
            encoder.smt.set_clause_family(families.isolation);
            encoder.encode_isolation(self.config.isolation);
        }
        count_encoding_size(obs, &encoder.smt.solver_stats());
        encode_span.finish();
        let constraint_gen_time = gen_start.elapsed();
        encoder.smt.set_conflict_budget(self.config.conflict_budget);
        install_heartbeat_bridge(&mut encoder.smt, obs, self.config.heartbeat_every);

        let mut solving_time = Duration::ZERO;
        let mut candidates_examined = 0usize;

        loop {
            if candidates_examined >= self.config.max_exact_candidates {
                return PredictionOutcome::Unknown {
                    postmortem: Some(Box::new(encoder.smt.solver_postmortem())),
                };
            }
            let before = encoder.smt.solver_stats();
            // detlint: allow(wall-clock) — solving_time is non-deterministic-half data.
            let solve_start = Instant::now();
            let solve_span = obs.span("solve");
            if self.config.preprocess {
                // Re-preprocessing after each blocking clause is a no-op
                // unless the clause actually changed the formula.
                let pp_span = solve_span.obs().span("preprocess");
                encoder.smt.preprocess();
                pp_span.finish();
            }
            let result = encoder.smt.check();
            solve_span.label("result", smt_result_label(result));
            solve_span.finish();
            solving_time += solve_start.elapsed();
            count_solver_work(obs, &encoder.smt.solver_stats().diff(&before));

            match result {
                SmtResult::Unknown => {
                    return PredictionOutcome::Unknown {
                        postmortem: Some(Box::new(encoder.smt.solver_postmortem())),
                    }
                }
                SmtResult::Unsat => {
                    let reason = if candidates_examined == 0 {
                        NoPredictionReason::Unsatisfiable
                    } else {
                        NoPredictionReason::ExhaustedCandidates
                    };
                    return PredictionOutcome::NoPrediction { reason };
                }
                SmtResult::Sat => {
                    candidates_examined += 1;
                    obs.count("exact.candidates", 1);
                    let (predicted, boundaries, changed_reads) = extract(&encoder, observed);
                    // detlint: allow(wall-clock) — non-deterministic-half timing.
                    let check_start = Instant::now();
                    let serializable = serializability::check(&predicted).is_serializable();
                    solving_time += check_start.elapsed();
                    if !serializable {
                        return PredictionOutcome::Prediction(Box::new(Prediction {
                            predicted,
                            boundaries,
                            changed_reads,
                            isolation: self.config.isolation,
                            strategy: self.config.strategy,
                            stats: encoder.smt.stats(),
                            constraint_gen_time,
                            solving_time,
                            pco_cycle: None,
                        }));
                    }
                    // Block this candidate and continue searching. The
                    // blocking clauses are the exact strategy's
                    // unserializability condition, so tag them as such.
                    let blocking = self.blocking_clause(&mut encoder);
                    encoder.smt.set_clause_family(families.unserializability);
                    encoder.smt.assert_term(blocking);
                }
            }
        }
    }

    /// Interns the predictor's axiom families in the solver so every clause
    /// each encode phase emits carries its provenance through conflict
    /// analysis (the flight recorder's "which axioms are we fighting" data).
    fn intern_families(&self, smt: &mut SmtSolver) -> AxiomFamilies {
        AxiomFamilies {
            feasibility: smt.intern_clause_family("feasibility"),
            isolation: smt.intern_clause_family(&format!("isolation:{}", self.config.isolation)),
            unserializability: smt.intern_clause_family("unserializability"),
        }
    }

    /// A clause that excludes the current model's combination of writer
    /// choices and boundary placements.
    fn blocking_clause(&self, encoder: &mut Encoder<'_>) -> TermId {
        let mut literals = Vec::new();
        let choices: Vec<(isopredict_history::SessionId, usize)> =
            encoder.choice.keys().copied().collect();
        for (session, pos) in choices {
            if let Some(writer) = encoder.model_choice(session, pos) {
                let eq = encoder.choice_eq(session, pos, writer);
                literals.push(encoder.smt.not(eq));
            }
        }
        let sessions: Vec<isopredict_history::SessionId> =
            encoder.boundary.keys().copied().collect();
        for session in sessions {
            let boundary = encoder.boundary[&session].clone();
            if let Some(index) = encoder.smt.model_fd(boundary.var) {
                let eq = encoder.smt.fd_eq(boundary.var, index);
                literals.push(encoder.smt.not(eq));
            }
        }
        encoder.smt.or(literals)
    }
}

/// The clause-family ids of one prediction's axiom groups.
#[derive(Debug, Clone, Copy)]
struct AxiomFamilies {
    feasibility: u16,
    isolation: u16,
    unserializability: u16,
}

/// Configures the solver's heartbeat interval and, when telemetry is on,
/// installs the hook that turns the solver's count-only heartbeats into
/// schema-v2 obs events. The bridge — not the solver — owns the wall clock,
/// so the SAT core stays deterministic and obs-free: it reports counts, and
/// the rate is computed here from the time between samples.
fn install_heartbeat_bridge(smt: &mut SmtSolver, obs: &Obs, every: u64) {
    smt.set_heartbeat_every(every);
    if every == 0 || !obs.is_enabled() {
        smt.set_heartbeat_hook(None);
        return;
    }
    let obs = obs.clone();
    let families: Vec<String> = smt.clause_families().to_vec();
    let mut last: Option<(Instant, u64)> = None;
    smt.set_heartbeat_hook(Some(Box::new(move |hb: &Heartbeat| {
        // detlint: allow(wall-clock) — heartbeat rates are stream-only
        // telemetry (the non-deterministic half); verdicts never read them.
        let now = Instant::now();
        let conflicts_per_sec = match last {
            Some((at, conflicts)) => {
                let dt = now.duration_since(at).as_secs_f64();
                let dc = hb.conflicts.saturating_sub(conflicts) as f64;
                if dt > 0.0 {
                    dc / dt
                } else {
                    0.0
                }
            }
            None => 0.0,
        };
        last = Some((now, hb.conflicts));
        obs.heartbeat(HeartbeatSample {
            hb_seq: hb.seq,
            conflicts: hb.conflicts,
            conflicts_per_sec,
            restarts: hb.restarts,
            trail_depth: hb.trail_depth,
            learnt_clauses: hb.learnt_clauses,
            vars_assigned_at_root: hb.vars_assigned_at_root,
            total_vars: hb.total_vars,
            families: families.clone(),
            conflicts_by_family: hb.conflicts_by_family.clone(),
        });
    })));
}

/// The deterministic `result` label attached to each `solve` span.
fn smt_result_label(result: SmtResult) -> &'static str {
    match result {
        SmtResult::Sat => "sat",
        SmtResult::Unsat => "unsat",
        SmtResult::Unknown => "unknown",
    }
}

/// Records the size of a freshly built encoding (`encode.*` counters).
fn count_encoding_size(obs: &Obs, stats: &SolverStats) {
    obs.count("encode.variables", stats.variables);
    obs.count("encode.clauses", stats.clauses);
    obs.count("encode.literals", stats.literals);
}

/// Records the solver work performed by one `check` call (`solver.*`
/// counters), from a [`SolverStats::diff`] around the call.
fn count_solver_work(obs: &Obs, delta: &SolverStats) {
    obs.count("solver.decisions", delta.decisions);
    obs.count("solver.propagations", delta.propagations);
    obs.count("solver.conflicts", delta.conflicts);
    obs.count("solver.theory_conflicts", delta.theory_conflicts);
    obs.count("solver.restarts", delta.restarts);
    obs.count("solver.deleted_clauses", delta.deleted_clauses);
    obs.count("pp.rounds", delta.pp_rounds);
    obs.count("pp.fixed", delta.pp_fixed);
    obs.count("pp.equivalences", delta.pp_equivalences);
    obs.count("pp.subsumed", delta.pp_subsumed);
    obs.count("pp.strengthened", delta.pp_strengthened);
    obs.count("pp.eliminated", delta.pp_eliminated);
    obs.count("pp.resolvents", delta.pp_resolvents);
    obs.count("pp.probes", delta.pp_probes);
    obs.count("pp.restored", delta.pp_restored);
}

/// Convenience: `TxnId` list rendering for diagnostics.
#[must_use]
pub(crate) fn format_cycle(cycle: &[TxnId]) -> String {
    let mut parts: Vec<String> = cycle.iter().map(ToString::to_string).collect();
    if let Some(first) = parts.first().cloned() {
        parts.push(first);
    }
    parts.join(" → ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PredictorConfig;
    use crate::encode::test_support::*;
    use isopredict_store::IsolationLevel;

    fn predictor(strategy: Strategy, isolation: IsolationLevel) -> Predictor {
        Predictor::new(PredictorConfig {
            strategy,
            isolation,
            ..PredictorConfig::default()
        })
    }

    #[test]
    fn approx_relaxed_predicts_the_motivating_example() {
        let observed = chained_deposits();
        let outcome = predictor(Strategy::ApproxRelaxed, IsolationLevel::Causal).predict(&observed);
        let prediction = outcome.prediction().expect("prediction exists");
        assert!(!serializability::check(&prediction.predicted).is_serializable());
        assert!(isopredict_history::causal::is_causal(&prediction.predicted));
        assert_eq!(prediction.changed_reads.len(), 1);
        assert!(prediction.pco_cycle.is_some());
        let cycle = prediction.pco_cycle.as_ref().unwrap();
        assert!(cycle.len() >= 2);
        assert!(format_cycle(cycle).contains("→"));
    }

    #[test]
    fn strict_boundary_finds_nothing_for_the_two_transaction_example() {
        // With only one read per transaction, excluding everything after the
        // changed read also excludes the transaction's own write, and the
        // remaining prefix is serializable.
        let observed = chained_deposits();
        for strategy in [Strategy::ApproxStrict, Strategy::ExactStrict] {
            let outcome = predictor(strategy, IsolationLevel::Causal).predict(&observed);
            assert!(outcome.is_no_prediction(), "{strategy}: {outcome:?}");
        }
    }

    #[test]
    fn exact_and_approx_agree_on_the_deposit_withdraw_history() {
        // Figure 9: a larger history where the relaxed boundary admits a
        // prediction; the exact strategy (strict boundary) must agree with
        // Approx-Strict.
        let observed = deposit_withdraw_deposit();
        let relaxed = predictor(Strategy::ApproxRelaxed, IsolationLevel::Causal).predict(&observed);
        assert!(relaxed.is_prediction(), "{relaxed:?}");

        let approx_strict =
            predictor(Strategy::ApproxStrict, IsolationLevel::Causal).predict(&observed);
        let exact_strict =
            predictor(Strategy::ExactStrict, IsolationLevel::Causal).predict(&observed);
        assert_eq!(
            approx_strict.is_prediction(),
            exact_strict.is_prediction(),
            "approximate and exact strategies disagree"
        );
    }

    #[test]
    fn voter_like_histories_have_rc_predictions_but_no_causal_ones() {
        let observed = single_writer_history();
        let causal = predictor(Strategy::ApproxRelaxed, IsolationLevel::Causal).predict(&observed);
        assert!(causal.is_no_prediction());
        // A single read per reader is not enough for an rc anomaly either; the
        // paper's Voter transactions read several keys, which the workload
        // crate models. Here we simply check rc is at least as permissive.
        let rc =
            predictor(Strategy::ApproxRelaxed, IsolationLevel::ReadCommitted).predict(&observed);
        assert!(rc.is_no_prediction() || rc.is_prediction());
    }

    #[test]
    fn predictions_conform_to_the_requested_isolation_level() {
        let observed = deposit_withdraw_deposit();
        for isolation in IsolationLevel::ALL {
            let outcome = predictor(Strategy::ApproxRelaxed, isolation).predict(&observed);
            if let Some(prediction) = outcome.prediction() {
                assert!(
                    isolation.is_conformant(&prediction.predicted),
                    "{isolation}: prediction must conform to its level"
                );
                assert!(
                    !serializability::check(&prediction.predicted).is_serializable(),
                    "{isolation}: prediction must be unserializable"
                );
            }
        }
    }

    #[test]
    fn snapshot_finds_nothing_in_single_key_rmw_histories() {
        // Every anomaly reachable from a single-key read-modify-write chain is
        // a lost update, which first-committer-wins forbids — while causal
        // still predicts one (the racing deposits).
        let observed = chained_deposits();
        let causal = predictor(Strategy::ApproxRelaxed, IsolationLevel::Causal).predict(&observed);
        assert!(causal.is_prediction());
        let si = predictor(Strategy::ApproxRelaxed, IsolationLevel::Snapshot).predict(&observed);
        assert!(si.is_no_prediction(), "{si:?}");
        let longer = deposit_withdraw_deposit();
        let si = predictor(Strategy::ApproxRelaxed, IsolationLevel::Snapshot).predict(&longer);
        assert!(si.is_no_prediction(), "{si:?}");
    }

    #[test]
    fn snapshot_predicts_write_skew() {
        // Two sessions guarding a two-key invariant: the predictor must find
        // the write-skew execution (stale crossed reads, disjoint writes) —
        // SI-legal by the independent checker, yet unserializable.
        let mut b = isopredict_history::HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.read(t1, "x", TxnId::INITIAL);
        b.read(t1, "y", TxnId::INITIAL);
        b.write(t1, "y");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "y", t1);
        b.read(t2, "x", TxnId::INITIAL);
        b.write(t2, "x");
        b.commit(t2);
        let observed = b.finish();

        let outcome =
            predictor(Strategy::ApproxRelaxed, IsolationLevel::Snapshot).predict(&observed);
        let prediction = outcome.prediction().expect("write skew must be predicted");
        assert!(isopredict_history::si::is_si(&prediction.predicted));
        assert!(!serializability::check(&prediction.predicted).is_serializable());
        assert!(!prediction.changed_reads.is_empty());
    }

    #[test]
    fn restricted_prediction_matches_whole_history_on_a_closed_component() {
        // `chained_deposits` is a single communication component, so
        // restricting to all of its transactions must not change the verdict.
        let observed = chained_deposits();
        let keep: Vec<TxnId> = observed.committed_transactions().map(|t| t.id).collect();
        let predictor = predictor(Strategy::ApproxRelaxed, IsolationLevel::Causal);
        let whole = predictor.predict(&observed);
        let restricted = predictor.predict_restricted(&observed, &keep);
        assert_eq!(whole.is_prediction(), restricted.is_prediction());
        if let (Some(a), Some(b)) = (whole.prediction(), restricted.prediction()) {
            assert_eq!(a.changed_reads, b.changed_reads);
        }
    }

    #[test]
    fn predict_obs_records_encode_solve_spans_and_solver_counters() {
        use isopredict_obs::{span_forest, MetricsSection, Registry};

        let observed = chained_deposits();
        let registry = Registry::new();
        let obs = registry.obs();
        let root = obs.span("predict");
        let outcome = predictor(Strategy::ApproxRelaxed, IsolationLevel::Causal)
            .predict_obs(&observed, root.obs());
        assert!(outcome.is_prediction());
        let root_id = root.id().expect("enabled");
        root.finish();

        let snapshot = registry.snapshot();
        let forest = span_forest(&snapshot.spans);
        assert_eq!(forest[0].name, "predict");
        let rendered = forest[0].render();
        for needle in ["encode", "feasibility", "isolation", "unserializability"] {
            assert!(rendered.contains(needle), "missing {needle} in\n{rendered}");
        }
        assert!(rendered.contains("solve[result=sat]"), "{rendered}");

        let metrics = MetricsSection::for_span(&snapshot, root_id);
        assert!(metrics.span("predict/encode/feasibility").is_some());
        assert_eq!(metrics.span("predict/solve").unwrap().count, 1);
        assert_eq!(metrics.span("predict/solve/preprocess").unwrap().count, 1);
        assert!(metrics.counter("encode.variables") > 0);
        assert!(metrics.counter("encode.clauses") > 0);
        assert!(metrics.counter("solver.propagations") > 0);
        assert!(metrics.counter("pp.rounds") > 0);
    }

    #[test]
    fn preprocessing_does_not_change_outcomes_or_predictions() {
        for observed in [chained_deposits(), deposit_withdraw_deposit()] {
            for isolation in IsolationLevel::ALL {
                let on = predictor(Strategy::ApproxRelaxed, isolation).predict(&observed);
                let off = Predictor::new(PredictorConfig {
                    strategy: Strategy::ApproxRelaxed,
                    isolation,
                    preprocess: false,
                    ..PredictorConfig::default()
                })
                .predict(&observed);
                assert_eq!(
                    on.is_prediction(),
                    off.is_prediction(),
                    "{isolation}: preprocessing changed the verdict"
                );
                if let (Some(a), Some(b)) = (on.prediction(), off.prediction()) {
                    // Both predictions must independently satisfy the spec;
                    // models may differ, so only verdict-level facts compare.
                    for p in [a, b] {
                        assert!(isolation.is_conformant(&p.predicted));
                        assert!(!serializability::check(&p.predicted).is_serializable());
                    }
                }
            }
        }
    }

    #[test]
    fn exact_strategy_counts_examined_candidates() {
        use isopredict_obs::Registry;

        let observed = deposit_withdraw_deposit();
        let registry = Registry::new();
        let obs = registry.obs();
        let _ =
            predictor(Strategy::ExactStrict, IsolationLevel::Causal).predict_obs(&observed, &obs);
        let snapshot = registry.snapshot();
        // Every sat solver answer examined one candidate.
        let sat_solves = snapshot
            .spans
            .iter()
            .filter(|s| {
                s.name == "solve" && s.labels.iter().any(|(k, v)| k == "result" && v == "sat")
            })
            .count() as u64;
        assert_eq!(snapshot.counter("exact.candidates"), sat_solves);
        assert!(snapshot.spans.iter().any(|s| s.name == "encode"));
    }

    #[test]
    fn tiny_conflict_budget_reports_unknown() {
        let observed = deposit_withdraw_deposit();
        let predictor = Predictor::new(PredictorConfig {
            strategy: Strategy::ApproxRelaxed,
            isolation: IsolationLevel::Causal,
            conflict_budget: Some(1),
            ..PredictorConfig::default()
        });
        let outcome = predictor.predict(&observed);
        assert!(outcome.is_unknown() || outcome.is_prediction());
        if outcome.is_unknown() {
            let pm = outcome.postmortem().expect("unknown carries a post-mortem");
            assert_eq!(pm.budget, Some(1));
        }
    }

    #[test]
    fn exhausted_exact_search_attaches_a_postmortem() {
        let observed = deposit_withdraw_deposit();
        let exact = Predictor::new(PredictorConfig {
            strategy: Strategy::ExactStrict,
            isolation: IsolationLevel::Causal,
            max_exact_candidates: 0,
            ..PredictorConfig::default()
        });
        let outcome = exact.predict(&observed);
        assert!(outcome.is_unknown());
        let pm = outcome.postmortem().expect("unknown carries a post-mortem");
        assert_eq!(pm.attribution.total_conflicts(), pm.stats.conflicts);
        for family in ["feasibility", "isolation:causal", "unserializability"] {
            assert!(
                pm.attribution.families.iter().any(|f| f == family),
                "family {family} must be interned, got {:?}",
                pm.attribution.families
            );
        }
        // A non-unknown outcome exposes no post-mortem.
        let sat = predictor(Strategy::ApproxRelaxed, IsolationLevel::Causal).predict(&observed);
        assert!(sat.postmortem().is_none());
    }

    #[test]
    fn heartbeats_stream_as_schema_v2_events() {
        use isopredict_obs::{validate_stream, BufferSink, Registry};

        let observed = deposit_withdraw_deposit();
        let sink = BufferSink::new();
        let registry = Registry::with_sink(Box::new(sink.clone()));
        let predictor = Predictor::new(PredictorConfig {
            strategy: Strategy::ApproxRelaxed,
            isolation: IsolationLevel::Causal,
            heartbeat_every: 1,
            preprocess: false,
            ..PredictorConfig::default()
        });
        let outcome = predictor.predict_obs(&observed, &registry.obs());
        assert!(!outcome.is_unknown());
        registry.flush();
        let summary = validate_stream(&sink.contents()).expect("stream validates");
        assert_eq!(summary.schema, 2);
        // Any conflict the solve needed produced a heartbeat; the validator
        // has already checked each one's family partition sums to its
        // conflict counter.
        let conflicts = registry.snapshot().counter("solver.conflicts");
        assert!(
            summary.heartbeats as u64 <= conflicts || conflicts == 0,
            "{} heartbeats from {conflicts} conflicts",
            summary.heartbeats
        );
    }
}
