//! Predictor configuration.

use isopredict_store::IsolationLevel;

/// The prediction boundary variants of Section 4.5 (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundaryKind {
    /// Exclude events that happen-after any read event with a different
    /// writer. Divergent behaviour can cause false predictions only through
    /// aborts.
    Strict,
    /// Exclude events that happen-after any *transaction* containing a read
    /// with a different writer. Risks more false predictions but finds more
    /// unserializable executions.
    Relaxed,
}

/// The prediction strategies evaluated in the paper (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Exact unserializability condition (Section 4.2.1) with the strict
    /// boundary. Implemented as a counterexample-guided loop: enumerate
    /// feasible weak-isolation-conforming candidates and keep only those whose
    /// prefix history admits no commit order.
    ExactStrict,
    /// Approximate (sufficient) unserializability condition via a cyclic `pco`
    /// with rank constraints (Section 4.2.2), strict boundary.
    ApproxStrict,
    /// Approximate condition with the relaxed boundary.
    ApproxRelaxed,
}

impl Strategy {
    /// All strategies, in the order the paper's tables list them.
    #[must_use]
    pub fn all() -> [Strategy; 3] {
        [
            Strategy::ExactStrict,
            Strategy::ApproxStrict,
            Strategy::ApproxRelaxed,
        ]
    }

    /// The boundary kind this strategy uses.
    #[must_use]
    pub fn boundary(self) -> BoundaryKind {
        match self {
            Strategy::ExactStrict | Strategy::ApproxStrict => BoundaryKind::Strict,
            Strategy::ApproxRelaxed => BoundaryKind::Relaxed,
        }
    }

    /// Whether this strategy uses the exact (CEGAR) unserializability check.
    #[must_use]
    pub fn is_exact(self) -> bool {
        matches!(self, Strategy::ExactStrict)
    }

    /// The name used in the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Strategy::ExactStrict => "Exact-Strict",
            Strategy::ApproxStrict => "Approx-Strict",
            Strategy::ApproxRelaxed => "Approx-Relaxed",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Configuration of a [`crate::Predictor`].
#[derive(Debug, Clone)]
pub struct PredictorConfig {
    /// Which prediction strategy to use.
    pub strategy: Strategy,
    /// The target weak isolation level the predicted execution must satisfy.
    pub isolation: IsolationLevel,
    /// Optional conflict budget for each underlying solver call; exceeding it
    /// makes the predictor report [`crate::PredictionOutcome::Unknown`]
    /// (the analogue of the paper's solver timeouts).
    pub conflict_budget: Option<u64>,
    /// Maximum number of candidate executions the exact strategy's
    /// counterexample-guided loop examines before giving up.
    pub max_exact_candidates: usize,
    /// Require at least one read to change its writer. Always on in practice —
    /// the observed execution is serializable, so an unserializable prediction
    /// must change something — but exposed for experimentation.
    pub require_change: bool,
    /// Run the SAT core's static preprocessing pipeline (subsumption, failed
    /// literals, bounded variable elimination) before solving. On by default;
    /// disable to measure raw search or to rule preprocessing out when
    /// debugging a prediction.
    pub preprocess: bool,
    /// Emit a solver progress heartbeat every this many conflicts (0
    /// disables). Heartbeats flow through the obs event stream (schema v2)
    /// and feed the bounded ring retained for `unknown` post-mortems; they
    /// are stream-only telemetry and never touch the deterministic report
    /// half.
    pub heartbeat_every: u64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            strategy: Strategy::ApproxRelaxed,
            isolation: IsolationLevel::Causal,
            conflict_budget: Some(2_000_000),
            max_exact_candidates: 256,
            require_change: true,
            preprocess: true,
            heartbeat_every: 10_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_properties_match_table_2() {
        assert_eq!(Strategy::ExactStrict.boundary(), BoundaryKind::Strict);
        assert_eq!(Strategy::ApproxStrict.boundary(), BoundaryKind::Strict);
        assert_eq!(Strategy::ApproxRelaxed.boundary(), BoundaryKind::Relaxed);
        assert!(Strategy::ExactStrict.is_exact());
        assert!(!Strategy::ApproxRelaxed.is_exact());
        assert_eq!(Strategy::all().len(), 3);
        assert_eq!(Strategy::ApproxStrict.to_string(), "Approx-Strict");
    }

    #[test]
    fn default_config_is_sensible() {
        let config = PredictorConfig::default();
        assert_eq!(config.strategy, Strategy::ApproxRelaxed);
        assert!(config.require_change);
        assert!(config.preprocess);
        assert!(config.max_exact_candidates > 0);
        assert_eq!(config.heartbeat_every, 10_000);
    }
}
