//! The approximate unserializability encoding (Section 4.2.2, Appendix B.2.2).
//!
//! A partial order `pco` is built that must be contained in *every* commit
//! order of the predicted execution: it includes session order, the chosen
//! write–read relation, the arbitration order `ww`, the anti-dependency order
//! `rw`, and is transitively closed. If `pco` can be made cyclic, no commit
//! order exists and the predicted execution is unserializable.
//!
//! Because `ww`, `rw` and `pco` are mutually recursive, a naive encoding would
//! let the solver invent "self-justifying" edges (Figure 6). The paper's fix —
//! reproduced here — attaches a `rank` to every edge and requires each edge's
//! justification to use only strictly lower-ranked edges; the strict-order
//! theory keeps the rank comparisons acyclic, which rules out circular
//! justifications.

use std::collections::BTreeMap;

use isopredict_history::TxnId;
use isopredict_smt::{OrderNode, TermId};

use super::Encoder;

/// The per-pair symbols of the approximate encoding, exposed so that the
/// predictor can extract the `pco` cycle that witnesses unserializability.
#[derive(Debug, Default, Clone)]
pub(crate) struct ApproxSymbols {
    /// `φ_ww(t1, t2)` variables.
    pub(crate) ww: BTreeMap<(TxnId, TxnId), TermId>,
    /// `φ_rw(t1, t2)` variables.
    pub(crate) rw: BTreeMap<(TxnId, TxnId), TermId>,
    /// `φ_pco(t1, t2)` variables.
    pub(crate) pco: BTreeMap<(TxnId, TxnId), TermId>,
}

impl Encoder<'_> {
    /// Generates the approximate unserializability constraints and returns
    /// the created symbols.
    pub(crate) fn encode_approx_unserializability(&mut self) -> ApproxSymbols {
        let txns: Vec<TxnId> = crate::encode::active_txns(self.history);

        // Allocate the per-pair boolean variables and rank nodes.
        let mut symbols = ApproxSymbols::default();
        let mut rank: BTreeMap<(TxnId, TxnId), OrderNode> = BTreeMap::new();
        for &t1 in &txns {
            for &t2 in &txns {
                if t1 == t2 {
                    continue;
                }
                symbols
                    .ww
                    .insert((t1, t2), self.smt.bool_var(format!("ww({t1},{t2})")));
                symbols
                    .rw
                    .insert((t1, t2), self.smt.bool_var(format!("rw({t1},{t2})")));
                symbols
                    .pco
                    .insert((t1, t2), self.smt.bool_var(format!("pco({t1},{t2})")));
                rank.insert((t1, t2), self.smt.order_node());
            }
        }

        let keys: Vec<_> = self.history.keys().collect();

        // ww(t1, t2) ⇒ ⋁_{k, t3} wr_k(t2, t3) ∧ pco(t1, t3) ∧ rank(t1,t2) > rank(t1,t3)
        //                         ∧ wrpos_k(t1) < boundary(s1)
        for &t1 in &txns {
            for &t2 in &txns {
                if t1 == t2 {
                    continue;
                }
                let mut justifications = Vec::new();
                for &key in &keys {
                    let writers = self.history.writers_of(key);
                    if !writers.contains(&t1) || !writers.contains(&t2) {
                        continue;
                    }
                    for &t3 in &self.history.readers_of(key) {
                        if t3 == t1 || t3 == t2 {
                            continue;
                        }
                        let wr = self.wr_k(t2, t3, key);
                        let pco = symbols.pco[&(t1, t3)];
                        let rank_gt = self.smt.less(rank[&(t1, t3)], rank[&(t1, t2)]);
                        let within = self.write_included(t1, key);
                        justifications.push(self.smt.and([wr, pco, rank_gt, within]));
                    }
                }
                let any = self.smt.or(justifications);
                let constraint = self.smt.implies(symbols.ww[&(t1, t2)], any);
                self.smt.assert_term(constraint);
            }
        }

        // rw(t1, t2) ⇒ ⋁_{k, t3} wr_k(t3, t1) ∧ pco(t3, t2) ∧ rank(t1,t2) > rank(t3,t2)
        //                         ∧ wrpos_k(t2) < boundary(s2)
        for &t1 in &txns {
            for &t2 in &txns {
                if t1 == t2 {
                    continue;
                }
                let mut justifications = Vec::new();
                for &key in &keys {
                    let writers = self.history.writers_of(key);
                    if !writers.contains(&t2) {
                        continue;
                    }
                    let readers = self.history.readers_of(key);
                    if !readers.contains(&t1) {
                        continue;
                    }
                    for &t3 in &writers {
                        if t3 == t1 || t3 == t2 {
                            continue;
                        }
                        let wr = self.wr_k(t3, t1, key);
                        let pco = symbols.pco[&(t3, t2)];
                        let rank_gt = self.smt.less(rank[&(t3, t2)], rank[&(t1, t2)]);
                        let within = self.write_included(t2, key);
                        justifications.push(self.smt.and([wr, pco, rank_gt, within]));
                    }
                }
                let any = self.smt.or(justifications);
                let constraint = self.smt.implies(symbols.rw[&(t1, t2)], any);
                self.smt.assert_term(constraint);
            }
        }

        // pco(t1, t2) ⇒ so(t1,t2) ∨ wr(t1,t2) ∨ ww(t1,t2) ∨ rw(t1,t2)
        //               ∨ ⋁_t pco(t1,t) ∧ pco(t,t2) ∧ rank(t1,t2) > rank(t1,t)
        //                                         ∧ rank(t1,t2) > rank(t,t2)
        for &t1 in &txns {
            for &t2 in &txns {
                if t1 == t2 {
                    continue;
                }
                let mut justifications = Vec::new();
                if self.so(t1, t2) {
                    justifications.push(self.smt.true_term());
                }
                justifications.push(self.wr(t1, t2));
                justifications.push(symbols.ww[&(t1, t2)]);
                justifications.push(symbols.rw[&(t1, t2)]);
                for &mid in &txns {
                    if mid == t1 || mid == t2 {
                        continue;
                    }
                    let first = symbols.pco[&(t1, mid)];
                    let second = symbols.pco[&(mid, t2)];
                    let rank_first = self.smt.less(rank[&(t1, mid)], rank[&(t1, t2)]);
                    let rank_second = self.smt.less(rank[&(mid, t2)], rank[&(t1, t2)]);
                    justifications.push(self.smt.and([first, second, rank_first, rank_second]));
                }
                let any = self.smt.or(justifications);
                let constraint = self.smt.implies(symbols.pco[&(t1, t2)], any);
                self.smt.assert_term(constraint);
            }
        }

        // The cycle requirement: some pair is pco-ordered both ways.
        let mut cycle = Vec::new();
        for &t1 in &txns {
            for &t2 in &txns {
                if t1 >= t2 {
                    continue;
                }
                let forward = symbols.pco[&(t1, t2)];
                let backward = symbols.pco[&(t2, t1)];
                cycle.push(self.smt.and([forward, backward]));
            }
        }
        let cyclic = self.smt.or(cycle);
        self.smt.assert_term(cyclic);

        symbols
    }
}

#[cfg(test)]
mod tests {
    use crate::config::BoundaryKind;
    use crate::encode::test_support::*;
    use crate::encode::Encoder;
    use isopredict_history::{SessionId, TxnId};
    use isopredict_smt::SmtResult;
    use isopredict_store::IsolationLevel;

    /// Figures 1–3: from the chained-deposits observation, the analysis finds
    /// the racing-deposits execution (both read the initial state), which is
    /// causal but unserializable. The relaxed boundary is needed so that the
    /// changed read's own write stays part of the prediction.
    #[test]
    fn finds_the_racing_deposit_prediction() {
        let history = chained_deposits();
        let mut encoder = Encoder::new(&history, BoundaryKind::Relaxed);
        encoder.encode_all(IsolationLevel::Causal, true, true);
        assert_eq!(encoder.smt.check(), SmtResult::Sat);
        // The only way to make the prediction unserializable is for t2's read
        // to move to the initial state.
        let choice = encoder.choice[&(SessionId(1), 0)].clone();
        let value = encoder.smt.model_fd(choice.var).expect("model value");
        assert_eq!(choice.candidates[value], TxnId::INITIAL);
    }

    /// Figure 5/6 regression: without anti-dependency (`rw`) edges — or if
    /// rank constraints were dropped — the racing-deposits history would be
    /// mis-classified. Here we check the full encoder agrees with the
    /// dedicated serializability checker on the *observed* assignment: pinning
    /// every read to its observed writer leaves no unserializable prediction.
    #[test]
    fn observed_assignment_admits_no_cycle() {
        let history = chained_deposits();
        let mut encoder = Encoder::new(&history, BoundaryKind::Strict);
        encoder.encode_all(IsolationLevel::Causal, true, false);
        let pins: Vec<(SessionId, usize, TxnId)> = encoder
            .choice
            .iter()
            .map(|(&(s, p), c)| (s, p, c.observed))
            .collect();
        for (session, pos, observed) in pins {
            let eq = encoder.choice_eq(session, pos, observed);
            encoder.smt.assert_term(eq);
        }
        assert_eq!(encoder.smt.check(), SmtResult::Unsat);
    }

    /// A single writing transaction cannot yield an unserializable prediction
    /// under causal (the paper's explanation for Voter's zero predictions).
    #[test]
    fn single_writer_histories_have_no_causal_prediction() {
        let history = single_writer_history();
        let mut encoder = Encoder::new(&history, BoundaryKind::Relaxed);
        encoder.encode_all(IsolationLevel::Causal, true, true);
        assert_eq!(encoder.smt.check(), SmtResult::Unsat);
    }

    /// Under read committed the same single-writer history *does* admit an
    /// unserializable prediction (one reader observes the write, another the
    /// initial state — or the same reader a mix), matching Table 5's Voter row.
    #[test]
    fn single_writer_histories_do_have_rc_predictions_when_reads_repeat() {
        // Extend the single-writer history so a reader reads the key twice;
        // under rc the two reads may observe different writers, which is
        // unserializable.
        let mut b = isopredict_history::HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let tw = b.begin(s1);
        b.read(tw, "votes", TxnId::INITIAL);
        b.write(tw, "votes");
        b.commit(tw);
        let tr = b.begin(s2);
        b.read(tr, "votes", tw);
        b.read(tr, "votes", tw);
        b.commit(tr);
        let history = b.finish();

        let mut encoder = Encoder::new(&history, BoundaryKind::Relaxed);
        encoder.encode_all(IsolationLevel::ReadCommitted, true, true);
        assert_eq!(encoder.smt.check(), SmtResult::Sat);

        let mut causal_encoder = Encoder::new(&history, BoundaryKind::Relaxed);
        causal_encoder.encode_all(IsolationLevel::Causal, true, true);
        assert_eq!(causal_encoder.smt.check(), SmtResult::Unsat);
    }
}
