//! Weak-isolation constraints (Section 4.3 and Appendix B.3).
//!
//! The predicted execution must be valid under the target isolation level:
//! there must exist a commit order consistent with happens-before and the
//! level's arbitration order. Commit-order positions are strict-order nodes
//! (`φ_co(t)`), so the constraints are implications whose consequents are
//! `co(t1) < co(t2)` atoms; the strict-order theory guarantees an acyclic —
//! hence realizable — set of comparisons.

use isopredict_history::TxnId;
use isopredict_store::IsolationLevel;

use super::Encoder;

impl Encoder<'_> {
    /// Generates the constraints for the chosen isolation level.
    pub(crate) fn encode_isolation(&mut self, level: IsolationLevel) {
        match level {
            IsolationLevel::Causal => self.encode_causal(),
            IsolationLevel::ReadCommitted => self.encode_read_committed(),
        }
    }

    /// `hb(t1, t2) ⇒ co(t1) < co(t2)` for every ordered pair.
    fn encode_hb_in_commit_order(&mut self) {
        let txns: Vec<TxnId> = crate::encode::active_txns(self.history);
        for &t1 in &txns {
            for &t2 in &txns {
                if t1 == t2 {
                    continue;
                }
                let hb = self.hb(t1, t2);
                let co1 = self.co(t1);
                let co2 = self.co(t2);
                let less = self.smt.less(co1, co2);
                let constraint = self.smt.implies(hb, less);
                self.smt.assert_term(constraint);
            }
        }
    }

    /// Causal consistency (Section 4.3.1, Appendix B.3.1):
    /// `wr_k(t2, t3) ∧ hb(t1, t3) ∧ wrpos_k(t1) < boundary(s1) ⇒ co(t1) < co(t2)`.
    fn encode_causal(&mut self) {
        self.encode_hb_in_commit_order();
        let txns: Vec<TxnId> = crate::encode::active_txns(self.history);
        let keys: Vec<_> = self.history.keys().collect();
        for key in keys {
            let writers = self.history.writers_of(key);
            let readers = self.history.readers_of(key);
            for &t1 in &writers {
                for &t2 in &writers {
                    if t1 == t2 {
                        continue;
                    }
                    for &t3 in &readers {
                        if t3 == t1 || t3 == t2 {
                            continue;
                        }
                        let wr = self.wr_k(t2, t3, key);
                        let hb = self.hb(t1, t3);
                        let within = self.write_included(t1, key);
                        let antecedent = self.smt.and([wr, hb, within]);
                        let co1 = self.co(t1);
                        let co2 = self.co(t2);
                        let less = self.smt.less(co1, co2);
                        let constraint = self.smt.implies(antecedent, less);
                        self.smt.assert_term(constraint);
                    }
                }
            }
        }
        let _ = txns;
    }

    /// Read committed (Section 4.3.2, Appendix B.3.2):
    /// `choice(s3, i) = t1 ∧ choice(s3, j) = t2 ∧ j ≤ boundary(s3) ⇒ co(t1) < co(t2)`
    /// for reads `i < j` of transaction `t3` where `j` reads key `k`, and `t1`
    /// and `t2` both write `k`.
    fn encode_read_committed(&mut self) {
        self.encode_hb_in_commit_order();
        let keys: Vec<_> = self.history.keys().collect();
        for key in keys {
            let writers = self.history.writers_of(key);
            let readers = self.history.readers_of(key);
            for &t3 in &readers {
                if t3.is_initial() {
                    continue;
                }
                let txn = self.history.txn(t3);
                let Some(session) = txn.session else { continue };
                let all_read_positions = txn.read_positions();
                let key_read_positions = txn.read_positions_of_key(key);
                for &t1 in &writers {
                    for &t2 in &writers {
                        if t1 == t2 || t1 == t3 || t2 == t3 {
                            continue;
                        }
                        for &j in &key_read_positions {
                            for &i in &all_read_positions {
                                if i >= j {
                                    continue;
                                }
                                let beta = self.choice_eq(session, i, t1);
                                if beta == self.smt.false_term() {
                                    continue;
                                }
                                let alpha = self.choice_eq(session, j, t2);
                                if alpha == self.smt.false_term() {
                                    continue;
                                }
                                let within = self.included(session, j);
                                let antecedent = self.smt.and([beta, alpha, within]);
                                let co1 = self.co(t1);
                                let co2 = self.co(t2);
                                let less = self.smt.less(co1, co2);
                                let constraint = self.smt.implies(antecedent, less);
                                self.smt.assert_term(constraint);
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::BoundaryKind;
    use crate::encode::test_support::*;
    use crate::encode::Encoder;
    use isopredict_history::{HistoryBuilder, SessionId, TxnId};
    use isopredict_smt::SmtResult;
    use isopredict_store::IsolationLevel;

    /// The Figure 7c/7d situation: forcing a same-session later read back to
    /// the initial state is not causal, so the constraints must reject it.
    #[test]
    fn causal_constraints_reject_non_causal_choices() {
        let mut b = HistoryBuilder::new();
        let sa = b.session("A");
        let sb = b.session("B");
        let t1 = b.begin(sa);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(sb);
        b.read(t2, "x", t1);
        b.write(t2, "x");
        b.commit(t2);
        let t3 = b.begin(sa);
        b.read(t3, "x", t2);
        b.commit(t3);
        let history = b.finish();

        let mut encoder = Encoder::new(&history, BoundaryKind::Strict);
        encoder.encode_feasibility();
        encoder.encode_isolation(IsolationLevel::Causal);

        // Force t3 (session A, read at its recorded position) to read from t0.
        let pos = history.txn(TxnId(3)).read_positions()[0];
        let from_initial = encoder.choice_eq(SessionId(0), pos, TxnId::INITIAL);
        encoder.smt.assert_term(from_initial);
        assert_eq!(encoder.smt.check(), SmtResult::Unsat);
    }

    /// The same choice is allowed under read committed (Figure 7's discussion:
    /// rc admits strictly more predictions than causal).
    #[test]
    fn read_committed_accepts_what_causal_rejects() {
        let mut b = HistoryBuilder::new();
        let sa = b.session("A");
        let sb = b.session("B");
        let t1 = b.begin(sa);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(sb);
        b.read(t2, "x", t1);
        b.write(t2, "x");
        b.commit(t2);
        let t3 = b.begin(sa);
        b.read(t3, "x", t2);
        b.commit(t3);
        let history = b.finish();

        let mut encoder = Encoder::new(&history, BoundaryKind::Strict);
        encoder.encode_feasibility();
        encoder.encode_isolation(IsolationLevel::ReadCommitted);
        let pos = history.txn(TxnId(3)).read_positions()[0];
        let from_initial = encoder.choice_eq(SessionId(0), pos, TxnId::INITIAL);
        encoder.smt.assert_term(from_initial);
        assert_eq!(encoder.smt.check(), SmtResult::Sat);
    }

    /// Reading an older value after a newer one inside one transaction
    /// violates read committed.
    #[test]
    fn read_committed_rejects_intra_transaction_time_travel() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(s1);
        b.read(t2, "x", t1);
        b.write(t2, "x");
        b.commit(t2);
        let t3 = b.begin(s2);
        b.read(t3, "x", t2);
        b.read(t3, "x", t2);
        b.commit(t3);
        let history = b.finish();

        let mut encoder = Encoder::new(&history, BoundaryKind::Strict);
        encoder.encode_feasibility();
        encoder.encode_isolation(IsolationLevel::ReadCommitted);
        // Force the second read of t3 to go back to t1 after the first read
        // observed t2, and keep both reads inside the prediction boundary.
        let positions = history.txn(TxnId(3)).read_positions();
        let first = encoder.choice_eq(SessionId(1), positions[0], TxnId(2));
        let second = encoder.choice_eq(SessionId(1), positions[1], TxnId(1));
        encoder.smt.assert_term(first);
        encoder.smt.assert_term(second);
        let boundary = encoder.boundary[&SessionId(1)].clone();
        let second_read_index = boundary
            .domain
            .iter()
            .position(|&p| {
                p == crate::encode::BoundaryPoint::At {
                    match_before: positions[1],
                    include_through: positions[1],
                }
            })
            .expect("the second read is a boundary candidate");
        let pin = encoder.smt.fd_eq(boundary.var, second_read_index);
        encoder.smt.assert_term(pin);
        assert_eq!(encoder.smt.check(), SmtResult::Unsat);
    }

    /// Both deposits reading the initial state is causal (Figure 1b / 3a), so
    /// feasibility + causal constraints accept it.
    #[test]
    fn causal_constraints_accept_the_racing_deposits() {
        let history = chained_deposits();
        let mut encoder = Encoder::new(&history, BoundaryKind::Strict);
        encoder.encode_feasibility();
        encoder.encode_isolation(IsolationLevel::Causal);
        let from_initial = encoder.choice_eq(SessionId(1), 0, TxnId::INITIAL);
        encoder.smt.assert_term(from_initial);
        assert_eq!(encoder.smt.check(), SmtResult::Sat);
    }
}
