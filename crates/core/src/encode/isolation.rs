//! Weak-isolation constraints (Section 4.3 and Appendix B.3) — the encoder
//! half of the isolation seam.
//!
//! The predicted execution must be valid under the target isolation level:
//! there must exist a commit order consistent with happens-before and the
//! level's arbitration order. Commit-order positions are strict-order nodes
//! (`φ_co(t)`), so the constraints are implications whose consequents are
//! `co(t1) < co(t2)` atoms; the strict-order theory guarantees an acyclic —
//! hence realizable — set of comparisons.
//!
//! Per-level axiom emitters are rows of the [`AXIOMS`] table, keyed by the
//! same [`IsolationLevel`] whose checker/chooser semantics live in
//! [`isopredict_history::isolation`]. Together the two tables are the only
//! level-dispatch sites in the workspace: a new level adds one row here (its
//! SMT axioms) and one row there (its concrete-history checker).

use std::collections::BTreeMap;

use isopredict_history::{KeyId, TxnId};
use isopredict_store::IsolationLevel;

use super::Encoder;

/// The encoder-side seam row: how to emit one level's SMT axioms.
pub(crate) struct IsolationAxioms {
    /// The level this row encodes.
    pub(crate) level: IsolationLevel,
    /// Emits the level's constraints into the encoder's solver.
    pub(crate) emit: fn(&mut Encoder<'_>),
}

/// One axiom emitter per supported level, in [`IsolationLevel::ALL`] order.
pub(crate) const AXIOMS: [IsolationAxioms; 3] = [
    IsolationAxioms {
        level: IsolationLevel::Causal,
        emit: |encoder| encoder.encode_causal(),
    },
    IsolationAxioms {
        level: IsolationLevel::ReadCommitted,
        emit: |encoder| encoder.encode_read_committed(),
    },
    IsolationAxioms {
        level: IsolationLevel::Snapshot,
        emit: |encoder| encoder.encode_snapshot(),
    },
];

impl Encoder<'_> {
    /// Generates the constraints for the chosen isolation level.
    ///
    /// # Panics
    ///
    /// Panics if the level has no [`AXIOMS`] row, which would be a bug: the
    /// table is required to cover every variant.
    pub(crate) fn encode_isolation(&mut self, level: IsolationLevel) {
        let axioms = AXIOMS
            .iter()
            .find(|axioms| axioms.level == level)
            .expect("every isolation level has an axiom emitter");
        (axioms.emit)(self);
    }

    /// `hb(t1, t2) ⇒ co(t1) < co(t2)` for every ordered pair.
    fn encode_hb_in_commit_order(&mut self) {
        let txns: Vec<TxnId> = crate::encode::active_txns(self.history);
        for &t1 in &txns {
            for &t2 in &txns {
                if t1 == t2 {
                    continue;
                }
                let hb = self.hb(t1, t2);
                let co1 = self.co(t1);
                let co2 = self.co(t2);
                let less = self.smt.less(co1, co2);
                let constraint = self.smt.implies(hb, less);
                self.smt.assert_term(constraint);
            }
        }
    }

    /// Causal consistency (Section 4.3.1, Appendix B.3.1):
    /// `wr_k(t2, t3) ∧ hb(t1, t3) ∧ wrpos_k(t1) < boundary(s1) ⇒ co(t1) < co(t2)`.
    fn encode_causal(&mut self) {
        self.encode_hb_in_commit_order();
        let keys: Vec<_> = self.history.keys().collect();
        for key in keys {
            let writers = self.history.writers_of(key);
            let readers = self.history.readers_of(key);
            for &t1 in &writers {
                for &t2 in &writers {
                    if t1 == t2 {
                        continue;
                    }
                    for &t3 in &readers {
                        if t3 == t1 || t3 == t2 {
                            continue;
                        }
                        let wr = self.wr_k(t2, t3, key);
                        let hb = self.hb(t1, t3);
                        let within = self.write_included(t1, key);
                        let antecedent = self.smt.and([wr, hb, within]);
                        let co1 = self.co(t1);
                        let co2 = self.co(t2);
                        let less = self.smt.less(co1, co2);
                        let constraint = self.smt.implies(antecedent, less);
                        self.smt.assert_term(constraint);
                    }
                }
            }
        }
    }

    /// Read committed (Section 4.3.2, Appendix B.3.2):
    /// `choice(s3, i) = t1 ∧ choice(s3, j) = t2 ∧ j ≤ boundary(s3) ⇒ co(t1) < co(t2)`
    /// for reads `i < j` of transaction `t3` where `j` reads key `k`, and `t1`
    /// and `t2` both write `k`.
    fn encode_read_committed(&mut self) {
        self.encode_hb_in_commit_order();
        let keys: Vec<_> = self.history.keys().collect();
        for key in keys {
            let writers = self.history.writers_of(key);
            let readers = self.history.readers_of(key);
            for &t3 in &readers {
                if t3.is_initial() {
                    continue;
                }
                let txn = self.history.txn(t3);
                let Some(session) = txn.session else { continue };
                let all_read_positions = txn.read_positions();
                let key_read_positions = txn.read_positions_of_key(key);
                for &t1 in &writers {
                    for &t2 in &writers {
                        if t1 == t2 || t1 == t3 || t2 == t3 {
                            continue;
                        }
                        for &j in &key_read_positions {
                            for &i in &all_read_positions {
                                if i >= j {
                                    continue;
                                }
                                let beta = self.choice_eq(session, i, t1);
                                if beta == self.smt.false_term() {
                                    continue;
                                }
                                let alpha = self.choice_eq(session, j, t2);
                                if alpha == self.smt.false_term() {
                                    continue;
                                }
                                let within = self.included(session, j);
                                let antecedent = self.smt.and([beta, alpha, within]);
                                let co1 = self.co(t1);
                                let co2 = self.co(t2);
                                let less = self.smt.less(co1, co2);
                                let constraint = self.smt.implies(antecedent, less);
                                self.smt.assert_term(constraint);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Snapshot isolation with first-committer-wins write conflicts (the
    /// level the paper names as the natural next step; the axioms of
    /// [`isopredict_history::si`] over *symbolic* `wr`, boundaries and commit
    /// order).
    ///
    /// Two constraint groups, both sound consequences of the exact SI
    /// axioms:
    ///
    /// 1. **The causal axioms** — in this framework `bs ⊇ hb` makes SI
    ///    strictly stronger than causal consistency, so every causal
    ///    constraint is an SI constraint (and torn snapshots are already
    ///    causal violations).
    /// 2. **Pairwise first-committer-wins**: two transactions whose writes of
    ///    a common key are both inside the prediction boundary can never
    ///    overlap, so one commits entirely before the other's snapshot —
    ///    `conflict(t1, t2) ⇒ D(t1 → t2) ∨ D(t2 → t1)`, where `D(t1 → t2)`
    ///    says `co(t1) < co(t2)` and every included read of `t2` on a key
    ///    that `t1` (visibly) writes observes `t1` or a co-later writer.
    ///    This is what rejects lost updates (both readers would have to
    ///    observe the other's predecessor) while admitting write skew
    ///    (disjoint write sets never conflict).
    ///
    /// Commit-order atoms appear only positively (in conclusions and
    /// disjunctions), as the strict-order theory requires — which is also why
    /// the *transitive* snapshot-prefix closure is not encoded: chasing `co`
    /// chains needs `co` in premises, i.e. per-pair order booleans, and the
    /// resulting search space makes the solver's no-prediction proofs blow
    /// up. Like the paper's approximate unserializability condition, the
    /// encoding instead stays slightly under-constrained (a prediction may
    /// very occasionally overshoot SI; replay validation and the exact
    /// [`isopredict_history::si`] checker are the backstop).
    fn encode_snapshot(&mut self) {
        self.encode_causal();
        // t0 commits first by construction, so only committed transactions
        // can genuinely conflict.
        let txns: Vec<TxnId> = crate::encode::active_txns(self.history)
            .into_iter()
            .filter(|t| !t.is_initial())
            .collect();
        let written: BTreeMap<TxnId, Vec<KeyId>> = txns
            .iter()
            .map(|&t| (t, self.history.txn(t).written_keys()))
            .collect();

        for (i, &t1) in txns.iter().enumerate() {
            for &t2 in txns.iter().skip(i + 1) {
                let common: Vec<KeyId> = written[&t1]
                    .iter()
                    .copied()
                    .filter(|k| written[&t2].contains(k))
                    .collect();
                if common.is_empty() {
                    continue;
                }
                let conflicts: Vec<_> = common
                    .into_iter()
                    .map(|k| {
                        let w1 = self.write_included(t1, k);
                        let w2 = self.write_included(t2, k);
                        self.smt.and([w1, w2])
                    })
                    .collect();
                let conflict = self.smt.or(conflicts);
                let forward = self.commits_before_snapshot(t1, t2);
                let backward = self.commits_before_snapshot(t2, t1);
                let ordered = self.smt.or([forward, backward]);
                let constraint = self.smt.implies(conflict, ordered);
                self.smt.assert_term(constraint);
            }
        }
    }

    /// `D(t1 → t2)`: `t1` commits entirely before `t2`'s snapshot —
    /// `co(t1) < co(t2)`, and every included read of `t2` on a key whose
    /// `t1`-write is inside the boundary observes `t1` itself or a writer
    /// co-after `t1`.
    fn commits_before_snapshot(&mut self, t1: TxnId, t2: TxnId) -> isopredict_smt::TermId {
        let co1 = self.co(t1);
        let co2 = self.co(t2);
        let mut conjuncts = vec![self.smt.less(co1, co2)];
        let reader = self.history.txn(t2);
        let Some(session) = reader.session else {
            return self.smt.and(conjuncts);
        };
        let reads: Vec<(usize, KeyId)> = reader
            .events
            .iter()
            .filter(|e| e.is_read())
            .map(|e| (e.pos, e.key))
            .collect();
        for (pos, key) in reads {
            if t1.is_initial() || self.history.txn(t1).write_position(key).is_none() {
                continue;
            }
            let candidates = self
                .choice
                .get(&(session, pos))
                .map(|choice| choice.candidates.clone())
                .unwrap_or_default();
            let mut sees_t1_or_later = Vec::new();
            for writer in candidates {
                let chosen = self.choice_eq(session, pos, writer);
                if writer == t1 {
                    sees_t1_or_later.push(chosen);
                } else {
                    let cow = self.co(writer);
                    let co1 = self.co(t1);
                    let later = self.smt.less(co1, cow);
                    sees_t1_or_later.push(self.smt.and([chosen, later]));
                }
            }
            let sees = self.smt.or(sees_t1_or_later);
            let visible = self.write_included(t1, key);
            let within = self.included(session, pos);
            let applicable = self.smt.and([visible, within]);
            conjuncts.push(self.smt.implies(applicable, sees));
        }
        self.smt.and(conjuncts)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::BoundaryKind;
    use crate::encode::test_support::*;
    use crate::encode::Encoder;
    use isopredict_history::{History, HistoryBuilder, SessionId, TxnId};
    use isopredict_smt::SmtResult;
    use isopredict_store::IsolationLevel;

    /// The Figure 7c/7d situation: forcing a same-session later read back to
    /// the initial state is not causal, so the constraints must reject it.
    #[test]
    fn causal_constraints_reject_non_causal_choices() {
        let mut b = HistoryBuilder::new();
        let sa = b.session("A");
        let sb = b.session("B");
        let t1 = b.begin(sa);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(sb);
        b.read(t2, "x", t1);
        b.write(t2, "x");
        b.commit(t2);
        let t3 = b.begin(sa);
        b.read(t3, "x", t2);
        b.commit(t3);
        let history = b.finish();

        let mut encoder = Encoder::new(&history, BoundaryKind::Strict);
        encoder.encode_feasibility();
        encoder.encode_isolation(IsolationLevel::Causal);

        // Force t3 (session A, read at its recorded position) to read from t0.
        let pos = history.txn(TxnId(3)).read_positions()[0];
        let from_initial = encoder.choice_eq(SessionId(0), pos, TxnId::INITIAL);
        encoder.smt.assert_term(from_initial);
        assert_eq!(encoder.smt.check(), SmtResult::Unsat);
    }

    /// The same choice is allowed under read committed (Figure 7's discussion:
    /// rc admits strictly more predictions than causal).
    #[test]
    fn read_committed_accepts_what_causal_rejects() {
        let mut b = HistoryBuilder::new();
        let sa = b.session("A");
        let sb = b.session("B");
        let t1 = b.begin(sa);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(sb);
        b.read(t2, "x", t1);
        b.write(t2, "x");
        b.commit(t2);
        let t3 = b.begin(sa);
        b.read(t3, "x", t2);
        b.commit(t3);
        let history = b.finish();

        let mut encoder = Encoder::new(&history, BoundaryKind::Strict);
        encoder.encode_feasibility();
        encoder.encode_isolation(IsolationLevel::ReadCommitted);
        let pos = history.txn(TxnId(3)).read_positions()[0];
        let from_initial = encoder.choice_eq(SessionId(0), pos, TxnId::INITIAL);
        encoder.smt.assert_term(from_initial);
        assert_eq!(encoder.smt.check(), SmtResult::Sat);
    }

    /// Reading an older value after a newer one inside one transaction
    /// violates read committed.
    #[test]
    fn read_committed_rejects_intra_transaction_time_travel() {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.write(t1, "x");
        b.commit(t1);
        let t2 = b.begin(s1);
        b.read(t2, "x", t1);
        b.write(t2, "x");
        b.commit(t2);
        let t3 = b.begin(s2);
        b.read(t3, "x", t2);
        b.read(t3, "x", t2);
        b.commit(t3);
        let history = b.finish();

        let mut encoder = Encoder::new(&history, BoundaryKind::Strict);
        encoder.encode_feasibility();
        encoder.encode_isolation(IsolationLevel::ReadCommitted);
        // Force the second read of t3 to go back to t1 after the first read
        // observed t2, and keep both reads inside the prediction boundary.
        let positions = history.txn(TxnId(3)).read_positions();
        let first = encoder.choice_eq(SessionId(1), positions[0], TxnId(2));
        let second = encoder.choice_eq(SessionId(1), positions[1], TxnId(1));
        encoder.smt.assert_term(first);
        encoder.smt.assert_term(second);
        let boundary = encoder.boundary[&SessionId(1)].clone();
        let second_read_index = boundary
            .domain
            .iter()
            .position(|&p| {
                p == crate::encode::BoundaryPoint::At {
                    match_before: positions[1],
                    include_through: positions[1],
                }
            })
            .expect("the second read is a boundary candidate");
        let pin = encoder.smt.fd_eq(boundary.var, second_read_index);
        encoder.smt.assert_term(pin);
        assert_eq!(encoder.smt.check(), SmtResult::Unsat);
    }

    /// Both deposits reading the initial state is causal (Figure 1b / 3a), so
    /// feasibility + causal constraints accept it.
    #[test]
    fn causal_constraints_accept_the_racing_deposits() {
        let history = chained_deposits();
        let mut encoder = Encoder::new(&history, BoundaryKind::Strict);
        encoder.encode_feasibility();
        encoder.encode_isolation(IsolationLevel::Causal);
        let from_initial = encoder.choice_eq(SessionId(1), 0, TxnId::INITIAL);
        encoder.smt.assert_term(from_initial);
        assert_eq!(encoder.smt.check(), SmtResult::Sat);
    }

    /// The racing-deposit choice is a lost update: first-committer-wins
    /// rejects what causal accepts. (With the relaxed boundary the second
    /// deposit's own write stays included, so the write–write conflict is
    /// real.)
    #[test]
    fn snapshot_constraints_reject_the_forced_lost_update() {
        let history = chained_deposits();
        for (level, expected) in [
            (IsolationLevel::Causal, SmtResult::Sat),
            (IsolationLevel::Snapshot, SmtResult::Unsat),
        ] {
            let mut encoder = Encoder::new(&history, BoundaryKind::Relaxed);
            encoder.encode_feasibility();
            encoder.encode_isolation(level);
            let from_initial = encoder.choice_eq(SessionId(1), 0, TxnId::INITIAL);
            encoder.smt.assert_term(from_initial);
            // Pin the first deposit's read to its observed writer too, so the
            // predicted execution really is both deposits reading t0.
            let first_read = encoder.choice_eq(SessionId(0), 0, TxnId::INITIAL);
            encoder.smt.assert_term(first_read);
            let not_infinity = {
                let boundary = encoder.boundary[&SessionId(1)].clone();
                let infinity_index = boundary.domain.len() - 1;
                let infinity = encoder.smt.fd_eq(boundary.var, infinity_index);
                encoder.smt.not(infinity)
            };
            encoder.smt.assert_term(not_infinity);
            assert_eq!(encoder.smt.check(), expected, "{level}");
        }
    }

    /// An observed two-key history whose stale-read variant is the classic
    /// write skew: disjoint write sets, crossed reads.
    fn write_skew_observed() -> History {
        let mut b = HistoryBuilder::new();
        let s1 = b.session("s1");
        let s2 = b.session("s2");
        let t1 = b.begin(s1);
        b.read(t1, "x", TxnId::INITIAL);
        b.read(t1, "y", TxnId::INITIAL);
        b.write(t1, "y");
        b.commit(t1);
        let t2 = b.begin(s2);
        b.read(t2, "y", t1);
        b.read(t2, "x", TxnId::INITIAL);
        b.write(t2, "x");
        b.commit(t2);
        b.finish()
    }

    /// Forcing t2's read of y back to the initial state creates write skew —
    /// no write–write conflict, so the snapshot constraints accept it.
    #[test]
    fn snapshot_constraints_accept_the_forced_write_skew() {
        let history = write_skew_observed();
        let mut encoder = Encoder::new(&history, BoundaryKind::Relaxed);
        encoder.encode_feasibility();
        encoder.encode_isolation(IsolationLevel::Snapshot);
        let y_read = history
            .txn(TxnId(2))
            .read_positions_of_key(history.key_id("y").expect("history interns y"))[0];
        let from_initial = encoder.choice_eq(SessionId(1), y_read, TxnId::INITIAL);
        encoder.smt.assert_term(from_initial);
        assert_eq!(encoder.smt.check(), SmtResult::Sat);
    }

    /// The axiom table covers every level: encoding each level on a small
    /// history with no forced choices stays satisfiable (the observed
    /// execution itself is a model).
    #[test]
    fn every_level_encodes_and_accepts_the_observed_execution() {
        let history = chained_deposits();
        for level in IsolationLevel::ALL {
            let mut encoder = Encoder::new(&history, BoundaryKind::Relaxed);
            encoder.encode_feasibility();
            encoder.encode_isolation(level);
            assert_eq!(encoder.smt.check(), SmtResult::Sat, "{level}");
        }
    }
}
